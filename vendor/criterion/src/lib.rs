//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, providing the surface this workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`), [`Bencher::iter`], [`BenchmarkId`], and
//! [`Throughput`].
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warm-up followed by `sample_size` timed iterations and prints
//! the mean wall-clock time per iteration (plus throughput when
//! declared). Good enough to compare runs by eye and to keep every
//! bench target compiling and runnable offline; see `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

const WARM_UP_ITERS: u64 = 3;

/// The benchmark harness handle passed to every target function.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().render();
        let filter = self.filter.clone();
        run_one(&label, filter.as_deref(), 10, None, f);
    }
}

/// A set of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares the amount of work one iteration performs, enabling a
    /// rate column in the output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(
            &label,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows its input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(
            &label,
            self.criterion.filter.as_deref(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark's identifier: a function name, a parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished by parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// The amount of work one benchmark iteration performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`, preventing the result from
    /// being optimized away.
    // A benchmark harness is the definitional wall-clock consumer; the
    // workspace ban (clippy.toml, hh_lint `wall-clock`) targets engine
    // code, not the timer itself.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARM_UP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(
    label: &str,
    filter: Option<&str>,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !label.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<56} {mean:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<56} {mean:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{label:<56} {mean:>12.2?}/iter"),
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` function running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self_test");
        group.sample_size(4);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(7u64).pow(3))
        });
        group.finish();
    }

    criterion_group!(shim_benches, sample_bench);

    #[test]
    fn group_runner_runs() {
        shim_benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("k2").render(), "k2");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
