//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.9-era API), providing exactly the surface this workspace uses:
//!
//! * [`Rng`] — the core word source (`next_u64`);
//! * [`RngExt`] — convenience sampling (`random_range`, `random_bool`),
//!   blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — deterministic construction from a `u64` seed;
//! * [`rngs::SmallRng`] — xoshiro256++, seeded exactly like real rand's
//!   `seed_from_u64` (SplitMix64 seed expansion, the rand_xoshiro
//!   override), so seeded raw word streams match the real crate;
//! * [`rngs::CounterRng`] — a counter-based (Philox-/SplitMix-style)
//!   generator whose every output word is the **pure keyed hash**
//!   [`CounterRng::hash`](rngs::CounterRng::hash)` (key, counter)`: no
//!   sequential state, so batched consumers can evaluate draws for many
//!   rows/counters in any order (or all at once, vectorized) and still
//!   agree bit-for-bit with a one-at-a-time oracle. This one is ours —
//!   real rand ships no counter-based generator; see `vendor/README.md`
//!   for the pinned-output contract;
//! * [`seq::SliceRandom`] — Fisher–Yates [`shuffle`](seq::SliceRandom::shuffle).
//!
//! See `vendor/README.md` for the compatibility contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random 64-bit words.
///
/// The shim's equivalent of `rand_core::RngCore`, reduced to the one
/// method everything else derives from.
pub trait Rng {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
///
/// Mirrors the distribution-sampling methods the real crate exposes on
/// its `Rng` trait; split out so both names can be imported side by side.
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// Integer ranges use unbiased Lemire rejection sampling; float
    /// ranges map a 53-bit mantissa into `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        distr::unit_f64(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, expanding it the same way
    /// the real crate's implementation for that generator does (SplitMix64
    /// for [`rngs::SmallRng`]), so equal seeds yield equal streams across
    /// the shim and the real crate.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from range types (the shim's `rand::distr`).
pub mod distr {
    use super::Rng;

    /// A range that supports uniform sampling of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub(crate) fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire rejection.
    fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = u128::from(rng.next_u64()) * u128::from(bound);
            }
        }
        (m >> 64) as u64
    }

    macro_rules! int_range_impls {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every word is valid.
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }
        )*};
    }

    int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng) * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            start + unit_f64(rng) * (end - start)
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (unit_f64(rng) as f32) * (self.end - self.start)
        }
    }
}

/// The generators the shim ships: the sequential [`SmallRng`](rngs::SmallRng)
/// and the counter-based [`CounterRng`](rngs::CounterRng).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the same algorithm real rand 0.9 uses for
    /// `SmallRng` on 64-bit targets.
    ///
    /// Seeding via [`SeedableRng::seed_from_u64`] reproduces the real
    /// crate's construction (rand_xoshiro overrides the rand_core
    /// default with SplitMix64 expansion of the seed into the 256-bit
    /// state), so `SmallRng::seed_from_u64(s).next_u64()` matches real
    /// rand for every `s`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_xoshiro's `seed_from_u64`: one SplitMix64 step per
            // state word (it overrides rand_core's PCG-based default).
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut next_u64 = move || {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = next_u64();
            }
            if s == [0; 4] {
                // xoshiro's one forbidden state; unreachable from the
                // expansion above, but guard anyway.
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }
    }

    /// A counter-based generator: every output word is the pure keyed
    /// hash [`CounterRng::hash`]`(key, counter)`.
    ///
    /// Unlike [`SmallRng`], there is no sequential state to advance —
    /// `(key, counter)` fully determines each word, so draws commute:
    /// a batched consumer may evaluate the words for a whole column of
    /// keys (or a whole range of counters) in any order, in parallel, or
    /// vectorized, and agree bit-for-bit with a one-at-a-time oracle.
    /// That order-independence is the property the workspace's
    /// round-level draw planes are built on.
    ///
    /// The hash is SplitMix64's finalizer over a golden-ratio Weyl
    /// sequence (the construction the SplitMix64 paper calls a
    /// *splittable* generator), followed by a second strengthening round
    /// (MurmurHash3's `fmix64`) so that structured key/counter grids —
    /// exactly what per-ant keys × round counters produce — still yield
    /// statistically independent words. Both rounds are pure
    /// multiply/xor/shift, so a dense loop over rows auto-vectorizes.
    ///
    /// The struct form carries a `(key, counter)` cursor and implements
    /// [`Rng`] by hashing and incrementing, so it drops into any
    /// `Rng`-consuming sampler; the associated [`hash`](Self::hash)
    /// function is the primitive batched callers use directly.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct CounterRng {
        key: u64,
        counter: u64,
    }

    impl CounterRng {
        /// The pure keyed hash behind every output word: uniform in
        /// `counter` for any fixed `key`, and decorrelated across keys
        /// (including adjacent ones).
        ///
        /// This function is a **compatibility surface**: seeded draws
        /// all over the workspace reproduce from it, so its outputs must
        /// never change (see the pinned-vector test and
        /// `vendor/README.md`).
        #[inline]
        #[must_use]
        pub fn hash(key: u64, counter: u64) -> u64 {
            const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;
            // Round 1: SplitMix64's output mix over the keyed Weyl point
            // `key + counter·γ` — the splittable-generator construction.
            let mut z = key
                .wrapping_add(counter.wrapping_mul(GOLDEN_GAMMA))
                .wrapping_add(GOLDEN_GAMMA);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Round 2: MurmurHash3 fmix64, for margin on the structured
            // (key, counter) grids batched draws feed in.
            z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
            z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            z ^ (z >> 33)
        }

        /// A generator positioned at `counter` 0 for `key`.
        #[must_use]
        pub fn from_key(key: u64) -> Self {
            Self { key, counter: 0 }
        }

        /// The key this generator hashes under.
        #[must_use]
        pub fn key(&self) -> u64 {
            self.key
        }

        /// The counter the next [`Rng::next_u64`] call will hash.
        #[must_use]
        pub fn counter(&self) -> u64 {
            self.counter
        }
    }

    impl Rng for CounterRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let word = Self::hash(self.key, self.counter);
            self.counter = self.counter.wrapping_add(1);
            word
        }
    }

    impl SeedableRng for CounterRng {
        /// The seed is the key, used as-is: `hash` already mixes it, so
        /// no expansion step is needed (sequential seeds are fine).
        fn seed_from_u64(state: u64) -> Self {
            Self::from_key(state)
        }
    }
}

/// Sequence-related helpers (the shim's `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random, in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates with multiply-shift index sampling: one word
            // draw and one widening multiply per index, no division and
            // no rejection loop. Shuffling is the single hottest RNG
            // consumer in the workspace (the recruitment pairing shuffles
            // every round), and hardware division is the expensive part
            // of exact bounded sampling. The multiply-shift residual bias
            // is at most `bound / 2^64 < 2^-32` per index — far below the
            // statistical resolution of any experiment here.
            for i in (1..self.len()).rev() {
                let bound = (i + 1) as u64;
                let j = ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{CounterRng, SmallRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..64).all(|_| !rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }

    /// The keyed hash is a compatibility surface: seeded simulations all
    /// over the workspace reproduce from these exact words, so any edit
    /// to the mixing rounds must fail here first and be re-baselined
    /// deliberately (vendor/README.md records the contract).
    #[test]
    fn counter_hash_vectors_are_pinned() {
        let vectors: [(u64, u64, u64); 6] = [
            (0, 0, 0x9474_f0eb_06d7_9fd8),
            (0, 1, 0x8902_23d5_397e_1514),
            (1, 0, 0x1f72_6377_5681_9f47),
            (42, 7, 0x0971_b3a9_35ae_638d),
            (0x9e37_79b9_7f4a_7c15, 123_456_789, 0x7cc4_ec17_6f7b_0076),
            (u64::MAX, u64::MAX, 0x2738_fccc_6b2a_42b8),
        ];
        for (key, counter, expected) in vectors {
            assert_eq!(
                CounterRng::hash(key, counter),
                expected,
                "hash({key:#x}, {counter}) changed — the keyed draw contract is broken"
            );
        }
    }

    #[test]
    fn counter_rng_streams_the_hash_in_counter_order() {
        let mut rng = CounterRng::seed_from_u64(99);
        assert_eq!(rng.key(), 99);
        for counter in 0..16 {
            assert_eq!(rng.counter(), counter);
            assert_eq!(rng.next_u64(), CounterRng::hash(99, counter));
        }
        // Clones are pure value copies: same cursor, same words.
        let mut a = CounterRng::from_key(7);
        let mut b = a.clone();
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }

    /// Chi-square-style uniformity: bucket counts over the top byte must
    /// stay near the expected count, along the counter axis for a fixed
    /// key *and* along the key axis for a fixed counter (the batched
    /// draw planes consume the hash along both).
    #[test]
    fn counter_hash_buckets_are_uniform() {
        const BUCKETS: usize = 64;
        const DRAWS: usize = 64 * 1024;
        let expected = (DRAWS / BUCKETS) as f64;
        let check = |label: &str, word: &mut dyn FnMut(u64) -> u64| {
            let mut counts = [0usize; BUCKETS];
            for i in 0..DRAWS as u64 {
                counts[(word(i) >> (64 - 6)) as usize] += 1;
            }
            // Chi-square statistic; 63 degrees of freedom put the 99.9th
            // percentile near 104, so 150 is a loose, deterministic gate
            // that still catches any real bucket skew.
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            assert!(chi2 < 150.0, "{label}: chi-square {chi2} over {counts:?}");
        };
        check("counter axis", &mut |i| CounterRng::hash(12345, i));
        check("key axis", &mut |i| CounterRng::hash(i, 12345));
        // Sequential un-mixed keys at a shared counter — the exact shape
        // per-row keys take if a caller skips seed mixing.
        check("key axis at counter 7", &mut |i| CounterRng::hash(i, 7));
    }

    /// Lag-1 correlation along both axes: successive words, mapped to
    /// unit floats, must be uncorrelated (|r| well under the sampling
    /// noise floor for 32k pairs, ≈ 0.006).
    #[test]
    fn counter_hash_has_no_lag_correlation() {
        const PAIRS: usize = 32 * 1024;
        let unit = |w: u64| (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let check = |label: &str, word: &mut dyn FnMut(u64) -> u64| {
            let xs: Vec<f64> = (0..=PAIRS as u64).map(|i| unit(word(i))).collect();
            let n = PAIRS as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for w in xs.windows(2) {
                let (x, y) = (w[0], w[1]);
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            let cov = sxy / n - (sx / n) * (sy / n);
            let var_x = sxx / n - (sx / n) * (sx / n);
            let var_y = syy / n - (sy / n) * (sy / n);
            let r = cov / (var_x * var_y).sqrt();
            assert!(r.abs() < 0.03, "{label}: lag-1 correlation {r}");
        };
        check("counter axis", &mut |i| CounterRng::hash(777, i));
        check("key axis", &mut |i| CounterRng::hash(i, 2));
    }

    /// Avalanche across adjacent keys: flipping the key by 1 must flip
    /// about half the output bits — the property that makes per-row keys
    /// derived from *sequential* ids safe to draw from side by side.
    #[test]
    fn counter_hash_decorrelates_adjacent_keys() {
        let mut total_bits = 0u32;
        const KEYS: u64 = 4096;
        for key in 0..KEYS {
            total_bits += (CounterRng::hash(key, 5) ^ CounterRng::hash(key + 1, 5)).count_ones();
        }
        let mean = f64::from(total_bits) / KEYS as f64;
        assert!(
            (30.0..=34.0).contains(&mean),
            "mean flipped bits {mean}, expected ≈ 32"
        );
    }

    /// `CounterRng` drops into the shim's samplers like any other `Rng`.
    #[test]
    fn counter_rng_feeds_the_samplers() {
        let mut rng = CounterRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
        }
        let heads = (0..4_096).filter(|_| rng.random_bool(0.25)).count();
        assert!(
            (850..=1_200).contains(&heads),
            "p=0.25 coin came up {heads}/4096"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes every point"
        );
    }
}
