//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.9-era API), providing exactly the surface this workspace uses:
//!
//! * [`Rng`] — the core word source (`next_u64`);
//! * [`RngExt`] — convenience sampling (`random_range`, `random_bool`),
//!   blanket-implemented for every [`Rng`];
//! * [`SeedableRng`] — deterministic construction from a `u64` seed;
//! * [`rngs::SmallRng`] — xoshiro256++, seeded exactly like real rand's
//!   `seed_from_u64` (SplitMix64 seed expansion, the rand_xoshiro
//!   override), so seeded raw word streams match the real crate;
//! * [`seq::SliceRandom`] — Fisher–Yates [`shuffle`](seq::SliceRandom::shuffle).
//!
//! See `vendor/README.md` for the compatibility contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random 64-bit words.
///
/// The shim's equivalent of `rand_core::RngCore`, reduced to the one
/// method everything else derives from.
pub trait Rng {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
///
/// Mirrors the distribution-sampling methods the real crate exposes on
/// its `Rng` trait; split out so both names can be imported side by side.
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// Integer ranges use unbiased Lemire rejection sampling; float
    /// ranges map a 53-bit mantissa into `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        distr::unit_f64(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, expanding it the same way
    /// the real crate's implementation for that generator does (SplitMix64
    /// for [`rngs::SmallRng`]), so equal seeds yield equal streams across
    /// the shim and the real crate.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from range types (the shim's `rand::distr`).
pub mod distr {
    use super::Rng;

    /// A range that supports uniform sampling of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub(crate) fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, bound)` via Lemire rejection.
    fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = u128::from(rng.next_u64()) * u128::from(bound);
            }
        }
        (m >> 64) as u64
    }

    macro_rules! int_range_impls {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }
            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every word is valid.
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(uniform_below(rng, span) as $ty)
                }
            }
        )*};
    }

    int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng) * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "cannot sample empty range");
            start + unit_f64(rng) * (end - start)
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (unit_f64(rng) as f32) * (self.end - self.start)
        }
    }
}

/// The generators the shim ships (just [`SmallRng`](rngs::SmallRng)).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the same algorithm real rand 0.9 uses for
    /// `SmallRng` on 64-bit targets.
    ///
    /// Seeding via [`SeedableRng::seed_from_u64`] reproduces the real
    /// crate's construction (rand_xoshiro overrides the rand_core
    /// default with SplitMix64 expansion of the seed into the 256-bit
    /// state), so `SmallRng::seed_from_u64(s).next_u64()` matches real
    /// rand for every `s`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_xoshiro's `seed_from_u64`: one SplitMix64 step per
            // state word (it overrides rand_core's PCG-based default).
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut next_u64 = move || {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = next_u64();
            }
            if s == [0; 4] {
                // xoshiro's one forbidden state; unreachable from the
                // expansion above, but guard anyway.
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers (the shim's `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random, in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates with multiply-shift index sampling: one word
            // draw and one widening multiply per index, no division and
            // no rejection loop. Shuffling is the single hottest RNG
            // consumer in the workspace (the recruitment pairing shuffles
            // every round), and hardware division is the expensive part
            // of exact bounded sampling. The multiply-shift residual bias
            // is at most `bound / 2^64 < 2^-32` per index — far below the
            // statistical resolution of any experiment here.
            for i in (1..self.len()).rev() {
                let bound = (i + 1) as u64;
                let j = ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_edges() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..64).all(|_| !rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes every point"
        );
    }
}
