//! Deterministic entropy and failure reporting for the proptest shim.

/// SplitMix64 seeded from `(test path, case index)`.
///
/// Every value a case sees derives from this stream, so "case `k` of
/// test `t`" fully identifies the failing input on any machine.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one case of one test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Unbiased uniform integer in `[0, bound)` (`bound = 0` means the
    /// full `u64` domain).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints the failing case's identity if a test body panics.
///
/// Armed on construction; [`disarm`](CaseGuard::disarm) after the body
/// runs. If the body panics instead, `Drop` fires while panicking and
/// reports which deterministic case failed.
#[derive(Debug)]
pub struct CaseGuard {
    test_path: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for one case.
    pub fn new(test_path: &'static str, case: u32) -> Self {
        CaseGuard {
            test_path,
            case,
            armed: true,
        }
    }

    /// Marks the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: test {} failed at case {} \
                 (cases are deterministic; rerunning reproduces it)",
                self.test_path, self.case
            );
        }
    }
}
