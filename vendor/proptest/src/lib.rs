//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`any::<T>()`](any), integer and float range strategies,
//! * [`collection::vec`].
//!
//! Unlike the real crate this shim does **not shrink** failing inputs.
//! Every case is generated deterministically from the test's module path
//! and the case index, so a failure report ("case k of test t") is a
//! complete reproduction recipe. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// A source of random values of one type.
///
/// The shim's reduction of proptest's `Strategy`: generation only, no
/// value tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value from deterministic entropy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Run-loop configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test in the block runs. The shim's default
    /// is 64 (the real crate's is 256), chosen because several suites
    /// here run whole-colony simulations per case.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
///
/// The real crate's `prop_assert!` returns this through the test body;
/// the shim's `prop_assert!` panics instead, but the type is still
/// needed so helper functions declared as
/// `fn helper(..) -> Result<(), TestCaseError>` and `?`-style bodies
/// compile unchanged.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A case failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy generating arbitrary values of `T` (uniform over the
/// whole domain, like the real crate's `any` for primitives).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        S::sample(self, rng)
    }
}

/// Strategies for collections (just [`vec()`](collection::vec())).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`](vec()).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy generating `Vec`s whose length is drawn uniformly from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, re-exported flat.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test.
///
/// The shim maps this to [`assert!`]: a failure panics (failing the
/// case) instead of returning `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Defines a block of property tests.
///
/// Supports the subset of the real macro's grammar this workspace uses:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `fn name(arg in strategy, ..) { body }` items carrying outer
/// attributes (doc comments, `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __test = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let __guard = $crate::test_runner::CaseGuard::new(__test, __case);
                let mut __rng = $crate::test_runner::TestRng::for_case(__test, __case);
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                // Mirror the real crate: the body runs inside a
                // `Result`-returning scope so helpers can use `?`.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!("{}", __err);
                }
                __guard.disarm();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3usize..10, y in -2.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Vec strategies respect their size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u64>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }
}
