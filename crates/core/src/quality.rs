//! The non-binary-quality variant — Section 6's "non-binary nest
//! qualities" extension.
//!
//! With real-valued qualities in `[0, 1]` there is no crisp "good"/"bad"
//! split, so the binary algorithm's active/passive dichotomy disappears.
//! Following the paper's sketch — *"it should be possible to incorporate
//! the quality of the nest into the recruitment probability in order [to]
//! make the algorithm converge to a high-quality nest"* — [`QualityAnt`]
//! recruits with probability
//!
//! ```text
//! p  =  (count / n) · quality^γ
//! ```
//!
//! where `γ ≥ 0` tunes selectivity: `γ = 0` ignores quality entirely
//! (pure population feedback, the speed end of the speed/accuracy
//! trade-off), large `γ` makes low-quality nests recruit so rarely that
//! the best nest almost always wins (the accuracy end). A nest of quality
//! zero never recruits, recovering the binary algorithm's passive
//! behaviour as a special case.
//!
//! Because an ant recruited to an unfamiliar nest must learn that nest's
//! quality to keep recruiting sensibly, this agent is designed for
//! environments with the "assessing go" extension
//! ([`ColonyConfig::reveal_quality_on_go`]); without it the ant keeps its
//! previous quality estimate — a documented degraded mode.
//!
//! The optional *downgrade rejection* hardening models real Temnothorax
//! choosiness: an ant carried from a clearly better nest to a clearly
//! worse one (quality gap above a tolerance) walks back to its previous
//! nest instead of amplifying the worse one.
//!
//! [`ColonyConfig::reveal_quality_on_go`]: hh_model::ColonyConfig::reveal_quality_on_go

use hh_model::seeding::DrawKey;
use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole};

/// An ant running the quality-weighted urn rule for non-binary qualities.
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, QualityAnt};
/// use hh_model::Action;
///
/// // Colony of 200; quality exponent 2 (moderately selective).
/// let mut ant = QualityAnt::new(200, 9, 2.0);
/// assert_eq!(ant.choose(1), Action::Search);
/// assert_eq!(ant.label(), "quality");
/// ```
#[derive(Debug, Clone)]
pub struct QualityAnt {
    n: usize,
    key: DrawKey,
    gamma: f64,
    /// Reject recruitments that downgrade quality by more than this.
    rejection_tolerance: Option<f64>,
    nest: Option<NestId>,
    /// Last observed population of the committed nest, in the outcome
    /// field width.
    count: u32,
    /// Last observed quality of the committed nest.
    quality: f64,
    /// Previous commitment, kept for downgrade rejection.
    previous: Option<(NestId, f64, u32)>,
    /// Assess the new nest at the next `go` observation.
    pending_assessment: bool,
}

impl QualityAnt {
    /// Creates a quality-weighted ant with exponent `gamma` and no
    /// downgrade rejection.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative or NaN.
    #[must_use]
    pub fn new(n: usize, seed: u64, gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma >= 0.0,
            "quality exponent must be a non-negative finite number, got {gamma}"
        );
        Self {
            n,
            key: DrawKey::from_seed(seed),
            gamma,
            rejection_tolerance: None,
            nest: None,
            count: 0,
            quality: 0.0,
            previous: None,
            pending_assessment: false,
        }
    }

    /// Enables downgrade rejection: a recruitment that drops the observed
    /// quality by more than `tolerance` is undone by walking back to the
    /// previous nest.
    #[must_use]
    pub fn with_rejection(mut self, tolerance: f64) -> Self {
        self.rejection_tolerance = Some(tolerance.max(0.0));
        self
    }

    /// Returns the quality exponent `γ`.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Returns the last observed quality of the committed nest.
    #[must_use]
    pub fn observed_quality(&self) -> f64 {
        self.quality
    }

    fn recruit_probability(&self) -> f64 {
        let base = self.count as f64 / self.n as f64;
        (base * self.quality.powf(self.gamma)).clamp(0.0, 1.0)
    }
}

impl Agent for QualityAnt {
    fn choose(&mut self, round: u64) -> Action {
        if round <= 1 {
            return Action::Search;
        }
        let Some(nest) = self.nest else {
            return Action::Search;
        };
        if round.is_multiple_of(2) {
            let p = self.recruit_probability();
            let active = p > 0.0 && self.key.coin(round, p);
            Action::Recruit { active, nest }
        } else {
            Action::Go(nest)
        }
    }

    fn observe(&mut self, _round: u64, outcome: &Outcome) {
        match outcome {
            Outcome::Search {
                nest,
                quality,
                count,
            } => {
                self.nest = Some(*nest);
                self.count = *count;
                self.quality = quality.value();
            }
            Outcome::Recruit { nest, .. } => {
                if Some(*nest) != self.nest {
                    self.previous = self.nest.map(|old| (old, self.quality, self.count));
                    self.nest = Some(*nest);
                    self.pending_assessment = true;
                    // Quality of the new nest is unknown until assessed;
                    // keep the previous estimate meanwhile (degraded mode
                    // when the environment does not reveal quality on go).
                }
            }
            Outcome::Go { count, quality } => {
                self.count = *count;
                if let Some(q) = quality {
                    let value = q.value();
                    if self.pending_assessment {
                        self.pending_assessment = false;
                        if let (Some(tolerance), Some((old_nest, old_quality, old_count))) =
                            (self.rejection_tolerance, self.previous)
                        {
                            if value + tolerance < old_quality {
                                // Carried somewhere clearly worse: go back.
                                self.nest = Some(old_nest);
                                self.quality = old_quality;
                                self.count = old_count;
                                self.previous = None;
                                return;
                            }
                        }
                    }
                    self.quality = value;
                } else {
                    self.pending_assessment = false;
                }
            }
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        self.nest
    }

    fn label(&self) -> &'static str {
        "quality"
    }

    fn role(&self) -> AgentRole {
        match self.nest {
            None => AgentRole::Searching,
            // Quality weighting has no passive state: a zero-quality nest
            // simply recruits with probability zero.
            Some(_) => AgentRole::Active,
        }
    }
}

#[cfg(test)]
impl QualityAnt {
    /// Test-only accessor for the last observed count.
    pub(crate) fn last_observed_count_for_tests(&self) -> usize {
        self.count as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boxed_colony, drive_to_consensus, make_env_revealing, step_once};
    use hh_model::{ColonyConfig, Environment, Quality, QualitySpec};

    fn graded_env(n: usize, qualities: &[f64], seed: u64) -> Environment {
        let spec = QualitySpec::Explicit(
            qualities
                .iter()
                .map(|&q| Quality::new(q).unwrap())
                .collect(),
        );
        Environment::new(&ColonyConfig::new(n, spec).seed(seed).reveal_quality_on_go()).unwrap()
    }

    #[test]
    fn searches_first_and_reports_role() {
        let mut ant = QualityAnt::new(10, 0, 1.0);
        assert_eq!(ant.choose(1), Action::Search);
        assert_eq!(ant.role(), AgentRole::Searching);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::new(0.7).unwrap(),
                count: 4,
            },
        );
        assert_eq!(ant.role(), AgentRole::Active);
        // Quality stores f32; 0.7 lands within one f32 ULP of the input.
        assert!((ant.observed_quality() - 0.7).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "quality exponent")]
    fn negative_gamma_panics() {
        let _ = QualityAnt::new(10, 0, -1.0);
    }

    #[test]
    fn zero_quality_never_recruits() {
        let mut ant = QualityAnt::new(10, 1, 1.0);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 10,
            },
        );
        for t in 0..50u64 {
            match ant.choose(2 + 2 * t) {
                Action::Recruit { active, .. } => assert!(!active),
                other => panic!("expected recruit, got {other}"),
            }
        }
    }

    #[test]
    fn gamma_zero_ignores_quality() {
        let mut ant = QualityAnt::new(10, 2, 0.0);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::new(0.01).unwrap(),
                count: 10,
            },
        );
        // count = n and γ = 0 → p = 1 · 0.01⁰ = 1: always recruits.
        match ant.choose(2) {
            Action::Recruit { active, .. } => assert!(active),
            other => panic!("expected recruit, got {other}"),
        }
    }

    #[test]
    fn higher_gamma_is_more_selective() {
        // Empirical recruit rates for a mid-quality nest must decrease
        // with γ.
        let mut rates = Vec::new();
        for gamma in [0.0, 1.0, 4.0] {
            let mut ant = QualityAnt::new(10, 3, gamma);
            ant.observe(
                1,
                &Outcome::Search {
                    nest: NestId::candidate(1),
                    quality: Quality::new(0.5).unwrap(),
                    count: 10,
                },
            );
            let trials = 4_000;
            let mut active = 0u32;
            for t in 0..trials {
                if let Action::Recruit { active: a, .. } = ant.choose(2 + 2 * t) {
                    active += u32::from(a);
                }
            }
            rates.push(f64::from(active) / f64::from(trials as u32));
        }
        assert!(
            rates[0] > rates[1] && rates[1] > rates[2],
            "rates {rates:?}"
        );
    }

    #[test]
    fn recruited_ant_assesses_new_nest() {
        let mut ant = QualityAnt::new(10, 4, 1.0);
        let first = NestId::candidate(1);
        let second = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: first,
                quality: Quality::new(0.4).unwrap(),
                count: 2,
            },
        );
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: second,
                home_count: 5,
            },
        );
        assert_eq!(ant.committed_nest(), Some(second));
        // Quality estimate updates at the assessing go.
        ant.observe(
            3,
            &Outcome::Go {
                count: 6,
                quality: Some(Quality::new(0.9).unwrap()),
            },
        );
        assert!((ant.observed_quality() - 0.9).abs() < 1e-7);
        assert_eq!(ant.last_observed_count_for_tests(), 6);
    }

    #[test]
    fn downgrade_rejection_walks_back() {
        let mut ant = QualityAnt::new(10, 5, 1.0).with_rejection(0.2);
        let good = NestId::candidate(1);
        let worse = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: good,
                quality: Quality::new(0.9).unwrap(),
                count: 3,
            },
        );
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: worse,
                home_count: 4,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 5,
                quality: Some(Quality::new(0.3).unwrap()),
            },
        );
        // 0.3 + 0.2 < 0.9: rejected, back to the original commitment.
        assert_eq!(ant.committed_nest(), Some(good));
        assert!((ant.observed_quality() - 0.9).abs() < 1e-7);
    }

    #[test]
    fn small_downgrades_are_tolerated() {
        let mut ant = QualityAnt::new(10, 6, 1.0).with_rejection(0.3);
        let a = NestId::candidate(1);
        let b = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: a,
                quality: Quality::new(0.8).unwrap(),
                count: 3,
            },
        );
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: b,
                home_count: 4,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 5,
                quality: Some(Quality::new(0.7).unwrap()),
            },
        );
        assert_eq!(ant.committed_nest(), Some(b), "0.1 drop within tolerance");
    }

    #[test]
    fn colony_prefers_higher_quality() {
        // Two nests, quality 0.9 vs 0.3, selective γ: the better nest
        // should win most seeds.
        let mut wins = 0;
        let trials = 12;
        for seed in 0..trials {
            let env = graded_env(64, &[0.9, 0.3], seed);
            let agents = boxed_colony(64, |i| QualityAnt::new(64, seed * 313 + i as u64, 3.0));
            let (solved, _) = drive_to_consensus_quality(env, agents, 4_000);
            if solved == Some(NestId::candidate(1)) {
                wins += 1;
            }
        }
        assert!(
            wins * 3 >= trials * 2,
            "best nest won only {wins}/{trials} runs"
        );
    }

    /// Commitment consensus for quality colonies: no binary "good"
    /// requirement — any nest everyone commits to counts.
    fn drive_to_consensus_quality(
        mut env: Environment,
        mut agents: Vec<crate::BoxedAgent>,
        max_rounds: u64,
    ) -> (Option<NestId>, Environment) {
        for _ in 0..max_rounds {
            step_once(&mut env, &mut agents);
            let first = agents[0].committed_nest();
            if first.is_some() && agents.iter().all(|a| a.committed_nest() == first) {
                return (first, env);
            }
        }
        (None, env)
    }

    #[test]
    fn binary_environment_recovers_simple_behaviour() {
        // With γ = 1 on a {0,1} environment, quality-weighting reduces to
        // Algorithm 3 (bad nests never recruit) — the colony still solves
        // the binary instance.
        let env = make_env_revealing(64, QualitySpec::good_prefix(4, 2), 31);
        let agents = boxed_colony(64, |i| QualityAnt::new(64, 900 + i as u64, 1.0));
        let (solved, env) = drive_to_consensus(env, agents, 4_000);
        let (_, winner) = solved.expect("must converge on binary instance");
        assert!(env.quality_of(winner).unwrap().is_good());
    }
}
