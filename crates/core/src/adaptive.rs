//! The adaptive-rate variant — Section 6's "Improved running time"
//! extension.
//!
//! Algorithm 3 needs `O(k log n)` rounds because the initial nest
//! populations are `≈ n/k`, so ants recruit with probability only `≈ 1/k`
//! and `O(k)` rounds pass per constant-factor gap amplification. Section 6
//! sketches the fix: *"If ants keep track of the round number, they can map
//! this to an estimate `k̃(r)` of how many competing nests remain, allowing
//! them to recruit at rate `O(c(i, r)/n · k̃(r))`"*.
//!
//! [`AdaptivePolicy`] is one concrete instantiation of that sketch (the
//! paper gives none):
//!
//! ```text
//! p    =  max( c/n,  min( 1,  θ · (c/n) · k̃(r) ) )
//! k̃(r) =  clamp( √n · 2^(−r / (τ·log₂ n)),  2,  √n )
//! ```
//!
//! The estimate *decays from `√n` toward 2*, tracking the shrinking
//! survivor count from above (Theorem 5.11 already assumes
//! `k = O(√n / log n)`, so `√n` upper-bounds any admissible `k`). The
//! design rationale, distilled from failure modes found while
//! validating:
//!
//! * **Amplified linear core** `θ·(c/n)·k̃` — preserves the exact
//!   proportionality between population and recruitment rate that the
//!   Polya-urn drift analysis of Section 5.2 rests on. (A smooth
//!   saturating form `θ·c/(c+pivot)` was tried first and is measurably
//!   *worse* than the simple rule: concavity in `c` boosts the smaller
//!   nest's relative rate, weakening the rich-get-richer feedback. A
//!   *growing* `k̃` schedule was tried second: once every survivor hits a
//!   common cap, their rates equalize and the gap dynamics degenerate
//!   into a driftless random walk.)
//! * **Decay from above** — while `k̃` still exceeds the true survivor
//!   count the rule saturates (`p = 1`): a burst of symmetric, harmless
//!   churn that lasts only `O(log n · log(√n/k))` rounds. Once `k̃`
//!   crosses below the survivor count, rates fall to `≈ θ` and the full
//!   rich-get-richer drift switches on at constant rate — independent of
//!   `k`.
//! * **Linear floor `c/n` and floor `k̃ ≥ 2`** — after the schedule
//!   bottoms out the rule equals Algorithm 3's `c/n` exactly, so the
//!   variant inherits the simple algorithm's convergence guarantee
//!   unconditionally; the adaptive schedule can only change *when* it
//!   converges, not *whether*.
//!
//! Experiment F13 measures the payoff: across a `k` sweep at fixed `n`,
//! the simple agent's convergence time grows linearly in `k` while the
//! adaptive agent's growth is markedly flatter (the prologue's fixed
//! polylog cost makes it slower at small `k`; it wins as `k` grows).

use crate::simple::{RecruitPolicy, UrnAnt, UrnOptions};

/// Section 6's round-indexed recruitment-rate schedule (one concrete
/// instantiation; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Halving period of `k̃(r)` in units of `log₂ n` rounds. Larger is
    /// more conservative (slower decay). Default 1.
    pub tau: f64,
    /// Target recruit rate for surviving nests once the schedule tracks
    /// them, `θ ∈ (0, 1)`. Default 0.4.
    pub theta: f64,
}

impl AdaptivePolicy {
    /// The defaults used in the paper reproduction (τ = 1, θ = 0.4).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            tau: 1.0,
            theta: 0.4,
        }
    }

    /// The round-indexed estimate `k̃(r)` of surviving nests: decays from
    /// `√n` toward its floor of 2.
    #[must_use]
    pub fn k_estimate(&self, round: u64, n: usize) -> f64 {
        let nf = n.max(4) as f64;
        let log2n = nf.log2().max(1.0);
        let period = (self.tau * log2n).max(1.0);
        let halvings = (round as f64 / period).min(64.0);
        (nf.sqrt() * 2f64.powf(-halvings)).clamp(2.0, nf.sqrt())
    }
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self::standard()
    }
}

impl RecruitPolicy for AdaptivePolicy {
    fn recruit_probability(&self, count: usize, n: usize, round: u64) -> f64 {
        if count == 0 || n == 0 {
            return 0.0;
        }
        let share = count as f64 / n as f64;
        let boosted = (self.theta * share * self.k_estimate(round, n)).min(1.0);
        share.max(boosted).min(1.0)
    }

    fn label(&self) -> &'static str {
        "adaptive"
    }
}

/// An urn agent running the adaptive-rate schedule: Section 6's
/// "improved running time" ant.
///
/// # Examples
///
/// ```
/// use hh_core::{AdaptiveAnt, Agent};
/// use hh_model::Action;
///
/// let mut ant = AdaptiveAnt::new(1024, 7);
/// assert_eq!(ant.choose(1), Action::Search);
/// assert_eq!(ant.label(), "adaptive");
/// ```
pub type AdaptiveAnt = UrnAnt<AdaptivePolicy>;

impl AdaptiveAnt {
    /// Creates an adaptive ant with the standard schedule.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_policy(n, seed, AdaptivePolicy::standard(), UrnOptions::paper())
    }

    /// Creates an adaptive ant with an explicit schedule and options.
    #[must_use]
    pub fn with_schedule(n: usize, seed: u64, policy: AdaptivePolicy, options: UrnOptions) -> Self {
        Self::with_policy(n, seed, policy, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Agent;
    use crate::simple::LinearPolicy;
    use crate::testutil::{boxed_colony, drive_to_consensus, make_env};
    use hh_model::QualitySpec;

    #[test]
    fn estimate_decays_on_schedule_and_floors() {
        let policy = AdaptivePolicy {
            tau: 2.0,
            theta: 0.4,
        };
        let n = 1024; // log2 = 10, period = 20 rounds, start √n = 32
        assert!((policy.k_estimate(0, n) - 32.0).abs() < 1e-9);
        assert!((policy.k_estimate(20, n) - 16.0).abs() < 1e-9);
        assert!((policy.k_estimate(40, n) - 8.0).abs() < 1e-9);
        // Floor at 2.
        assert_eq!(policy.k_estimate(10_000, n), 2.0);
        // And no overflow at absurd rounds.
        assert!(policy.k_estimate(u64::MAX, n).is_finite());
    }

    #[test]
    fn never_below_the_simple_rule() {
        let adaptive = AdaptivePolicy::standard();
        let simple = LinearPolicy;
        for n in [64usize, 512, 4096] {
            for count in [0usize, 1, n / 64, n / 8, n / 2, n] {
                for round in [0u64, 10, 100, 10_000] {
                    let a = adaptive.recruit_probability(count, n, round);
                    let s = simple.recruit_probability(count, n, round);
                    assert!(
                        a + 1e-12 >= s,
                        "adaptive {a} below simple {s} at n={n}, c={count}, r={round}"
                    );
                    assert!(a <= 1.0 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn late_schedule_degenerates_to_the_simple_rule() {
        // Once k̃ bottoms out at 2, θ·(c/n)·2 = 0.8·(c/n) < c/n, so the
        // linear floor takes over and the rule equals Algorithm 3's.
        let policy = AdaptivePolicy::standard();
        let n = 4096;
        for count in [1usize, 100, 2_048, 4_096] {
            let p = policy.recruit_probability(count, n, 1_000_000);
            let simple = count as f64 / n as f64;
            assert!((p - simple).abs() < 1e-12, "c={count}: {p} vs {simple}");
        }
    }

    #[test]
    fn early_schedule_saturates_fair_shares() {
        // At round 0 with k̃ = √n, a fair-share nest (c = n/k, k ≤ √n)
        // recruits at the full rate: the harmless symmetric-churn
        // prologue.
        let policy = AdaptivePolicy::standard();
        let n = 1024;
        let p = policy.recruit_probability(n / 8, n, 0);
        assert!((p - 1.0).abs() < 1e-12, "expected saturation, got {p}");
    }

    #[test]
    fn probability_is_monotone_in_count() {
        let policy = AdaptivePolicy::standard();
        let n = 4096;
        for round in [0u64, 50, 200, 1_000] {
            let mut last = -1.0;
            for count in [0usize, 1, 10, 100, 1_000, 4_096] {
                let p = policy.recruit_probability(count, n, round);
                assert!((0.0..=1.0).contains(&p), "p = {p}");
                assert!(p >= last, "monotonicity violated at count {count}");
                last = p;
            }
        }
    }

    #[test]
    fn zero_count_is_zero_probability() {
        let policy = AdaptivePolicy::standard();
        assert_eq!(policy.recruit_probability(0, 100, 10), 0.0);
    }

    #[test]
    fn colony_converges() {
        for seed in 0..5 {
            let env = make_env(128, QualitySpec::good_prefix(8, 4), seed);
            let agents = boxed_colony(128, |i| AdaptiveAnt::new(128, seed * 777 + i as u64));
            let (solved, env) = drive_to_consensus(env, agents, 6_000);
            let (_, winner) = solved.unwrap_or_else(|| panic!("seed {seed}: no consensus"));
            assert!(env.quality_of(winner).unwrap().is_good());
        }
    }

    #[test]
    fn label_and_role() {
        let ant = AdaptiveAnt::new(64, 0);
        assert_eq!(ant.label(), "adaptive");
        assert_eq!(ant.committed_nest(), None);
    }
}
