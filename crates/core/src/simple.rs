//! The simple `O(k log n)` house-hunting algorithm — the paper's
//! "Algorithm 3" (Section 5) — and the recruit-probability abstraction
//! shared with its Section 6 variants.
//!
//! The algorithm is a single positive-feedback rule: after one initial
//! search, every ant alternates between a *recruitment round* at home
//! (even rounds) and an *assessment round* at its committed nest (odd
//! rounds). At each recruitment round an ant committed to a good nest
//! recruits actively with probability proportional to the population it
//! last counted there — `count / n` in the paper. Larger nests therefore
//! recruit more, swamp smaller nests Polya-urn style, and within
//! `O(k log n)` rounds a single nest holds the whole colony with high
//! probability (Theorem 5.11).
//!
//! [`UrnAnt`] implements the shared skeleton; the probability rule is a
//! pluggable [`RecruitPolicy`] so that Section 6's "improved running time"
//! variant (`hh-core::adaptive`) reuses the identical state machine with a
//! different rule. [`SimpleAnt`] is the paper's `count / n` instantiation.
//!
//! ## Optional hardenings (off by default, see [`UrnOptions`])
//!
//! * **Arrival re-assessment** — the paper's pseudocode never re-checks
//!   quality after a recruitment, which is safe in the honest setting
//!   (only good nests recruit) but exploitable by Byzantine recruiters.
//!   When the environment runs the "assessing go" extension, this option
//!   makes a recruited ant verify its new nest's quality on arrival and
//!   turn passive if bad.
//! * **Settlement** — the paper's algorithm never terminates (committed
//!   ants keep bouncing between nest and home). With settlement, an ant
//!   that counts the full colony at its nest parks there forever, which
//!   literally satisfies the problem statement's `ℓ(a, r) = i` for all
//!   `r ≥ T`.

use hh_model::seeding::DrawKey;
use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole};

/// The recruit-probability rule of an urn-style agent: given the last
/// assessed population of the ant's nest, the colony size, and the round
/// number, return the probability of calling `recruit(1, ·)` this round.
///
/// Implementations must return values in `[0, 1]`; the agent clamps
/// defensively.
pub trait RecruitPolicy: Send {
    /// Probability of active recruitment for this round.
    fn recruit_probability(&self, count: usize, n: usize, round: u64) -> f64;

    /// A short static name for reporting.
    fn label(&self) -> &'static str;
}

/// The paper's Algorithm 3 rule: recruit with probability `count / n`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearPolicy;

impl RecruitPolicy for LinearPolicy {
    /// `count / n`, sanitized at the rule boundary (mirroring the quorum
    /// rule's sanitization in `hh-sim`): a degenerate `n = 0` colony
    /// yields probability `0.0` — not the NaN a raw division would
    /// produce — and `count > n` (expressible through the trait, even
    /// though the environment never reports it) clamps to `1.0` instead
    /// of leaking `p > 1` and relying on the call site to launder it.
    fn recruit_probability(&self, count: usize, n: usize, _round: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (count as f64 / n as f64).min(1.0)
    }

    fn label(&self) -> &'static str {
        "simple"
    }
}

/// Behavioural options for [`UrnAnt`]; the default is paper-faithful
/// (no re-assessment, no settlement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UrnOptions {
    /// Re-check quality on arrival after being recruited (requires the
    /// environment's "assessing go" extension; inert otherwise).
    pub reassess_on_arrival: bool,
    /// Park at the nest forever once the whole colony is counted there.
    pub settle_at_full_count: bool,
}

impl UrnOptions {
    /// Paper-faithful behaviour (same as `Default`).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// Both hardenings enabled.
    #[must_use]
    pub fn hardened() -> Self {
        Self {
            reassess_on_arrival: true,
            settle_at_full_count: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum State {
    /// Pre-search.
    Searching,
    /// Committed to a (believed) good nest; recruiting at even rounds.
    Active,
    /// Committed to a bad nest; waiting to be recruited.
    Passive,
    /// Parked at the winning nest (settlement option).
    Settled,
}

/// Maps an urn state to its harness-observable [`AgentRole`].
pub(crate) fn urn_role(state: State) -> AgentRole {
    match state {
        State::Searching => AgentRole::Searching,
        State::Active => AgentRole::Active,
        State::Passive => AgentRole::Passive,
        State::Settled => AgentRole::Final,
    }
}

/// The urn agents' commitment convention: [`NestId::HOME`] stands in for
/// "no commitment" (ants never commit to the home nest).
pub(crate) fn urn_committed(nest: NestId) -> Option<NestId> {
    if nest.is_home() {
        None
    } else {
        Some(nest)
    }
}

/// A by-reference view of one urn ant's mutable state — the **single**
/// implementation of the Algorithm 3 state machine, shared by the
/// array-of-structs agent ([`UrnAnt`], whose [`Agent`] impl borrows its
/// own fields into this view) and the struct-of-arrays agent-state table
/// (`crate::table`, which borrows one row of its parallel columns).
/// Bit-identity between the two layouts holds by construction: both call
/// exactly this code over the same field values, including the same
/// per-ant draw key.
pub(crate) struct UrnRefMut<'a, P> {
    pub key: DrawKey,
    pub count: &'a mut u32,
    pub nest: &'a mut NestId,
    pub state: &'a mut State,
    pub pending_assessment: &'a mut bool,
    pub n: u32,
    pub policy: &'a P,
    pub options: UrnOptions,
}

impl<P: RecruitPolicy> UrnRefMut<'_, P> {
    /// The **single** coin-draw site of the urn state machine: decides
    /// whether a committed row recruits actively this round. The draw is
    /// a pure keyed function of `(key, round)` — no stream state advances
    /// — so callers that pre-fill draw planes (`crate::table`) may
    /// evaluate it for any subset of rows in any order and still agree
    /// bit for bit with the scalar path.
    pub(crate) fn recruit_draw(&self, round: u64) -> bool {
        *self.state == State::Active && {
            let p = self
                .policy
                .recruit_probability(*self.count as usize, self.n as usize, round)
                .clamp(0.0, 1.0);
            p > 0.0 && self.key.coin(round, p)
        }
    }

    pub(crate) fn choose(&mut self, round: u64) -> Action {
        self.choose_with(round, None)
    }

    /// [`choose`](Self::choose) with an optional pre-computed recruit
    /// draw. `None` draws inline (the scalar path); `Some(d)` consumes a
    /// value produced earlier by [`recruit_draw`](Self::recruit_draw) on
    /// this same row (the draw-plane path). Because the draw is a pure
    /// function of `(key, round)`, both forms return the same action.
    pub(crate) fn choose_with(&mut self, round: u64, draw: Option<bool>) -> Action {
        if round <= 1 {
            return Action::Search;
        }
        let Some(nest) = urn_committed(*self.nest) else {
            // Only reachable if the round-1 observation was lost to a
            // perturbation: search again, the one always-legal call.
            return Action::Search;
        };
        match *self.state {
            State::Searching => Action::Search,
            State::Settled => Action::Go(nest),
            State::Active | State::Passive => {
                if round.is_multiple_of(2) {
                    // Recruitment round at home.
                    let active = match draw {
                        Some(d) => d,
                        None => self.recruit_draw(round),
                    };
                    Action::Recruit { active, nest }
                } else {
                    // Assessment round at the nest.
                    Action::Go(nest)
                }
            }
        }
    }

    pub(crate) fn observe(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Search {
                nest,
                quality,
                count,
            } => {
                *self.nest = *nest;
                *self.count = *count;
                *self.state = if quality.is_good() {
                    State::Active
                } else {
                    State::Passive
                };
            }
            Outcome::Recruit { nest, .. } => {
                if *nest != *self.nest {
                    // Recruited to a different nest: commit and (re)activate
                    // (Algorithm 3 lines 7 and 11–13).
                    *self.nest = *nest;
                    *self.state = State::Active;
                    *self.pending_assessment = self.options.reassess_on_arrival;
                }
            }
            Outcome::Go { count, quality } => {
                *self.count = *count;
                if *self.pending_assessment {
                    *self.pending_assessment = false;
                    if let Some(q) = quality {
                        if !q.is_good() {
                            // Hardening: carried to a bad nest — refuse to
                            // amplify it.
                            *self.state = State::Passive;
                        }
                    }
                }
                if self.options.settle_at_full_count
                    && *self.state == State::Active
                    && *count >= self.n
                {
                    *self.state = State::Settled;
                }
            }
        }
    }
}

/// The urn-style agent skeleton shared by the simple algorithm and its
/// Section 6 variants; generic over the [`RecruitPolicy`].
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, SimpleAnt};
/// use hh_model::Action;
///
/// let mut ant = SimpleAnt::new(100, 42);
/// assert_eq!(ant.choose(1), Action::Search);
/// assert_eq!(ant.label(), "simple");
/// ```
#[derive(Debug, Clone)]
pub struct UrnAnt<P> {
    // Field widths are deliberately compact: colonies stream every agent
    // through choose/observe every round, so agent size is engine memory
    // bandwidth. `NestId::HOME` stands in for "no commitment" (ants never
    // commit to the home nest). Fields are pub(crate) so `crate::table`
    // can gather them into (and scatter them back out of) parallel
    // columns without widening the public API.
    pub(crate) key: DrawKey,
    pub(crate) n: u32,
    pub(crate) count: u32,
    pub(crate) nest: NestId,
    pub(crate) policy: P,
    pub(crate) options: UrnOptions,
    pub(crate) state: State,
    /// Verify the new nest's quality at the next assessment round.
    pub(crate) pending_assessment: bool,
}

impl<P: RecruitPolicy> UrnAnt<P> {
    /// Creates an agent for a colony of `n` ants with the given policy and
    /// options; `seed` drives the agent's private coin flips.
    #[must_use]
    pub fn with_policy(n: usize, seed: u64, policy: P, options: UrnOptions) -> Self {
        Self {
            key: DrawKey::from_seed(seed),
            n: n.try_into().expect("colony size fits u32"),
            count: 0,
            nest: NestId::HOME,
            policy,
            options,
            state: State::Searching,
            pending_assessment: false,
        }
    }

    /// Returns the last population this ant counted at its nest.
    #[must_use]
    pub fn last_count(&self) -> usize {
        self.count as usize
    }

    /// Returns the behavioural options.
    #[must_use]
    pub fn options(&self) -> UrnOptions {
        self.options
    }

    fn committed(&self) -> Option<NestId> {
        urn_committed(self.nest)
    }

    /// Borrows every mutable field into the shared [`UrnRefMut`] state
    /// machine; the [`Agent`] impl is a thin shim over this view.
    pub(crate) fn as_ref_mut(&mut self) -> UrnRefMut<'_, P> {
        UrnRefMut {
            key: self.key,
            count: &mut self.count,
            nest: &mut self.nest,
            state: &mut self.state,
            pending_assessment: &mut self.pending_assessment,
            n: self.n,
            policy: &self.policy,
            options: self.options,
        }
    }
}

/// The paper's Algorithm 3: [`UrnAnt`] with the `count / n` rule.
pub type SimpleAnt = UrnAnt<LinearPolicy>;

impl SimpleAnt {
    /// Creates a paper-faithful simple ant.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_policy(n, seed, LinearPolicy, UrnOptions::paper())
    }

    /// Creates a simple ant with explicit options.
    #[must_use]
    pub fn with_options(n: usize, seed: u64, options: UrnOptions) -> Self {
        Self::with_policy(n, seed, LinearPolicy, options)
    }
}

impl<P: RecruitPolicy> Agent for UrnAnt<P> {
    fn choose(&mut self, round: u64) -> Action {
        self.as_ref_mut().choose(round)
    }

    fn observe(&mut self, round: u64, outcome: &Outcome) {
        let _ = round;
        self.as_ref_mut().observe(outcome);
    }

    fn committed_nest(&self) -> Option<NestId> {
        self.committed()
    }

    fn is_final(&self) -> bool {
        self.state == State::Settled
    }

    fn label(&self) -> &'static str {
        self.policy.label()
    }

    fn role(&self) -> AgentRole {
        urn_role(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        boxed_colony, drive_to_consensus, make_env, make_env_revealing, step_once,
    };
    use hh_model::{Quality, QualitySpec};

    /// S1 regression (pre-fix: `0 / 0` returned NaN, which the call-site
    /// `clamp` passed straight through).
    #[test]
    fn linear_policy_zero_n_yields_zero_not_nan() {
        let p = LinearPolicy.recruit_probability(0, 0, 2);
        assert_eq!(p, 0.0, "n = 0 must sanitize to 0.0, got {p}");
        let p = LinearPolicy.recruit_probability(7, 0, 2);
        assert_eq!(p, 0.0, "count > 0 with n = 0 must still be 0.0, got {p}");
    }

    /// S1 regression (pre-fix: `15 / 10` returned 1.5 and relied on the
    /// call site to launder it back into `[0, 1]`).
    #[test]
    fn linear_policy_count_above_n_clamps_to_one() {
        let p = LinearPolicy.recruit_probability(15, 10, 2);
        assert_eq!(p, 1.0, "count > n must clamp to 1.0 at the rule, got {p}");
    }

    #[test]
    fn searches_first() {
        let mut ant = SimpleAnt::new(10, 0);
        assert_eq!(ant.choose(1), Action::Search);
        assert_eq!(ant.role(), AgentRole::Searching);
    }

    #[test]
    fn good_nest_activates_bad_nest_pacifies() {
        let mut good = SimpleAnt::new(10, 0);
        good.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::GOOD,
                count: 5,
            },
        );
        assert_eq!(good.role(), AgentRole::Active);

        let mut bad = SimpleAnt::new(10, 0);
        bad.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(2),
                quality: Quality::BAD,
                count: 5,
            },
        );
        assert_eq!(bad.role(), AgentRole::Passive);
        // Passive ants always wait.
        assert_eq!(bad.choose(2), Action::recruit_passive(NestId::candidate(2)));
        assert_eq!(bad.choose(3), Action::Go(NestId::candidate(2)));
    }

    #[test]
    fn alternates_recruitment_and_assessment() {
        let mut ant = SimpleAnt::new(10, 1);
        let nest = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: Quality::GOOD,
                count: 10,
            },
        );
        // count = n: recruit probability 1 — always active.
        match ant.choose(2) {
            Action::Recruit { active, nest: n2 } => {
                assert!(active, "count = n must recruit with probability 1");
                assert_eq!(n2, nest);
            }
            other => panic!("expected recruit, got {other}"),
        }
        assert_eq!(ant.choose(3), Action::Go(nest));
    }

    #[test]
    fn zero_count_never_recruits_actively() {
        let mut ant = SimpleAnt::new(10, 2);
        let nest = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: Quality::GOOD,
                count: 10,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 0,
                quality: None,
            },
        );
        for trial in 0..50u64 {
            match ant.choose(4 + trial * 2) {
                Action::Recruit { active, .. } => assert!(!active),
                other => panic!("expected recruit, got {other}"),
            }
        }
    }

    #[test]
    fn recruit_probability_tracks_count() {
        // Statistical check of the count/n rule.
        let mut ant = SimpleAnt::new(100, 3);
        let nest = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: Quality::GOOD,
                count: 25,
            },
        );
        let trials = 8_000;
        let mut active = 0;
        for t in 0..trials {
            if let Action::Recruit { active: a, .. } = ant.choose(2 + 2 * t) {
                active += u32::from(a);
            }
        }
        let rate = f64::from(active) / f64::from(trials as u32);
        assert!(
            (0.2..=0.3).contains(&rate),
            "recruit rate {rate}, expected ≈ 0.25"
        );
    }

    #[test]
    fn recruited_ant_switches_commitment() {
        let mut ant = SimpleAnt::new(10, 4);
        let bad = NestId::candidate(1);
        let good = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: bad,
                quality: Quality::BAD,
                count: 1,
            },
        );
        assert_eq!(ant.role(), AgentRole::Passive);
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: good,
                home_count: 5,
            },
        );
        assert_eq!(ant.committed_nest(), Some(good));
        assert_eq!(ant.role(), AgentRole::Active);
        assert_eq!(ant.choose(3), Action::Go(good));
    }

    #[test]
    fn unrecruited_passive_stays_passive() {
        let mut ant = SimpleAnt::new(10, 5);
        let bad = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest: bad,
                quality: Quality::BAD,
                count: 1,
            },
        );
        // recruit() returned its own input: not recruited.
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: bad,
                home_count: 5,
            },
        );
        assert_eq!(ant.role(), AgentRole::Passive);
    }

    #[test]
    fn settlement_parks_at_full_count() {
        let mut ant = SimpleAnt::with_options(
            10,
            6,
            UrnOptions {
                settle_at_full_count: true,
                ..UrnOptions::default()
            },
        );
        let nest = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: Quality::GOOD,
                count: 10,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 10,
                quality: None,
            },
        );
        assert!(ant.is_final());
        for round in 4..8 {
            assert_eq!(ant.choose(round), Action::Go(nest));
        }
    }

    #[test]
    fn paper_options_never_settle() {
        let mut ant = SimpleAnt::new(10, 7);
        let nest = NestId::candidate(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: Quality::GOOD,
                count: 10,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 10,
                quality: None,
            },
        );
        assert!(!ant.is_final());
    }

    #[test]
    fn reassessment_rejects_bad_nest() {
        let mut ant = SimpleAnt::with_options(
            10,
            8,
            UrnOptions {
                reassess_on_arrival: true,
                ..UrnOptions::default()
            },
        );
        let good = NestId::candidate(1);
        let bad = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: good,
                quality: Quality::GOOD,
                count: 3,
            },
        );
        // Byzantine recruiter drags the ant to a bad nest...
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: bad,
                home_count: 5,
            },
        );
        assert_eq!(
            ant.role(),
            AgentRole::Active,
            "trusts the tandem run initially"
        );
        // ...but the assessing go reveals the truth.
        ant.observe(
            3,
            &Outcome::Go {
                count: 2,
                quality: Some(Quality::BAD),
            },
        );
        assert_eq!(ant.role(), AgentRole::Passive);
    }

    #[test]
    fn without_reassessment_bad_recruitment_sticks() {
        let mut ant = SimpleAnt::new(10, 9);
        let good = NestId::candidate(1);
        let bad = NestId::candidate(2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: good,
                quality: Quality::GOOD,
                count: 3,
            },
        );
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: bad,
                home_count: 5,
            },
        );
        ant.observe(
            3,
            &Outcome::Go {
                count: 2,
                quality: Some(Quality::BAD),
            },
        );
        // Paper-faithful: quality is never re-checked.
        assert_eq!(ant.role(), AgentRole::Active);
    }

    #[test]
    fn colony_converges_on_single_good_nest() {
        for seed in 0..8 {
            let env = make_env(64, QualitySpec::good_prefix(4, 2), seed);
            let agents = boxed_colony(64, |i| SimpleAnt::new(64, seed * 1000 + i as u64));
            let (solved, env) = drive_to_consensus(env, agents, 3_000);
            let (_, winner) = solved.unwrap_or_else(|| panic!("seed {seed}: no consensus"));
            assert!(env.quality_of(winner).unwrap().is_good());
        }
    }

    /// With settlement enabled every ant eventually *stands* at the winner
    /// forever — the literal `ℓ(a, r) = i` for all `r ≥ T` of the problem
    /// statement.
    #[test]
    fn colony_with_settlement_physically_relocates() {
        let mut env = make_env(32, QualitySpec::all_good(2), 11);
        let mut agents = boxed_colony(32, |i| {
            SimpleAnt::with_options(
                32,
                i as u64,
                UrnOptions {
                    settle_at_full_count: true,
                    ..UrnOptions::default()
                },
            )
        });
        let mut settled_round = None;
        for round in 1..=4_000u64 {
            step_once(&mut env, &mut agents);
            if agents.iter().all(|a| a.is_final()) {
                settled_round = Some(round);
                break;
            }
        }
        let settled_round = settled_round.expect("all ants should settle");
        let winner = agents[0].committed_nest().unwrap();
        // After settlement, location is pinned at the winner in every
        // subsequent round.
        for _ in 0..10 {
            step_once(&mut env, &mut agents);
            assert_eq!(env.count(winner), 32, "settled at round {settled_round}");
        }
    }

    #[test]
    fn hardened_colony_converges_with_revealing_go() {
        let env = make_env_revealing(48, QualitySpec::good_prefix(3, 1), 13);
        let agents = boxed_colony(48, |i| {
            SimpleAnt::with_options(48, 5_000 + i as u64, UrnOptions::hardened())
        });
        let (solved, env) = drive_to_consensus(env, agents, 3_000);
        let (_, winner) = solved.expect("hardened colony must still converge");
        assert!(env.quality_of(winner).unwrap().is_good());
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = |env_seed: u64| {
            let env = make_env(40, QualitySpec::good_prefix(4, 2), env_seed);
            let agents = boxed_colony(40, |i| SimpleAnt::new(40, 99 + i as u64));
            let (solved, _) = drive_to_consensus(env, agents, 3_000);
            solved
        };
        assert_eq!(run(21), run(21));
    }

    /// All ants alternate home (even rounds) and candidate nests (odd
    /// rounds ≥ 3) — the R1 structure of Section 5.2.
    #[test]
    fn locations_alternate_by_parity() {
        let mut env = make_env(30, QualitySpec::good_prefix(3, 2), 15);
        let mut agents = boxed_colony(30, |i| SimpleAnt::new(30, i as u64));
        for round in 1..=40u64 {
            step_once(&mut env, &mut agents);
            let home = env.count(NestId::HOME);
            if round == 1 || round % 2 == 1 {
                assert_eq!(home, 0, "round {round}: all ants must be at nests");
            } else {
                assert_eq!(home, 30, "round {round}: all ants must be home");
            }
        }
    }
}
