//! Information-spreading agents for the lower-bound experiments
//! (Section 3).
//!
//! The paper's Ω(log n) lower bound (Theorem 3.2) abstracts house-hunting
//! as rumor spreading: with a single good nest `n_w`, the nest's identity
//! is the rumor, an ant is *informed* once it knows `w`, and an ignorant
//! ant stays ignorant through a round with probability ≥ 1/4 regardless of
//! the algorithm (Lemma 3.1). The bound therefore applies to every
//! conceivable algorithm in the model.
//!
//! [`SpreaderAnt`] makes the bound *measurable*: it implements best-case
//! information spreading — informed ants do nothing but recruit toward
//! `w`, and ignorant ants follow one of three maximally-cooperative
//! [`SpreadStrategy`]s. Even this idealized family needs `Ω(log n)` rounds
//! (experiment F1), and its measured curves bound from below what the real
//! algorithms of Sections 4–5 can achieve.
//!
//! As in the lower-bound setup, an ant recognizes the winning nest as soon
//! as it learns its id, either by searching into it (it observes quality 1)
//! or by being recruited (only informed ants recruit, so any recruitment
//! communicates `w`).

use hh_model::seeding::DrawKey;
use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole};

/// What an ignorant spreader does each round.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SpreadStrategy {
    /// Wait at home to be recruited. Information flows only through
    /// recruitment — the purest analogue of PUSH rumor spreading.
    WaitAtHome,
    /// Keep searching; information flows only through lucky searches
    /// (finding `n_w` directly, probability `1/k` per round). Recruitment
    /// never helps because searchers are absent from the pairing.
    SearchForever,
    /// Search with probability `p`, otherwise wait at home — the
    /// interpolation between the two pure strategies.
    Hybrid {
        /// Per-round search probability for ignorant ants.
        search_probability: f64,
    },
}

impl SpreadStrategy {
    /// A short static name for reporting.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SpreadStrategy::WaitAtHome => "spreader-wait",
            SpreadStrategy::SearchForever => "spreader-search",
            SpreadStrategy::Hybrid { .. } => "spreader-hybrid",
        }
    }
}

/// A best-case information-spreading ant for the single-good-nest setting.
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, SpreadStrategy, SpreaderAnt};
/// use hh_model::Action;
///
/// let mut ant = SpreaderAnt::new(SpreadStrategy::WaitAtHome, 3);
/// assert_eq!(ant.choose(1), Action::Search);
/// assert!(!ant.is_informed());
/// ```
#[derive(Debug, Clone)]
pub struct SpreaderAnt {
    strategy: SpreadStrategy,
    key: DrawKey,
    /// `Some(w)` once informed of the winning nest.
    informed: Option<NestId>,
    /// A known (bad) nest used as the argument of waiting `recruit(0, ·)`
    /// calls.
    anchor: Option<NestId>,
}

impl SpreaderAnt {
    /// Creates an ignorant spreader with the given strategy.
    #[must_use]
    pub fn new(strategy: SpreadStrategy, seed: u64) -> Self {
        Self {
            strategy,
            key: DrawKey::from_seed(seed),
            informed: None,
            anchor: None,
        }
    }

    /// Returns `true` once this ant knows the winning nest.
    #[must_use]
    pub fn is_informed(&self) -> bool {
        self.informed.is_some()
    }

    /// Returns the strategy.
    #[must_use]
    pub fn strategy(&self) -> SpreadStrategy {
        self.strategy
    }
}

impl Agent for SpreaderAnt {
    fn choose(&mut self, round: u64) -> Action {
        if round <= 1 {
            return Action::Search;
        }
        if let Some(winner) = self.informed {
            return Action::recruit_active(winner);
        }
        let wait = |anchor: Option<NestId>| match anchor {
            Some(nest) => Action::recruit_passive(nest),
            // No nest known (lost round-1 observation): search again.
            None => Action::Search,
        };
        match self.strategy {
            SpreadStrategy::WaitAtHome => wait(self.anchor),
            SpreadStrategy::SearchForever => Action::Search,
            SpreadStrategy::Hybrid { search_probability } => {
                let p = search_probability.clamp(0.0, 1.0);
                if p > 0.0 && self.key.coin(round, p) {
                    Action::Search
                } else {
                    wait(self.anchor)
                }
            }
        }
    }

    fn observe(&mut self, _round: u64, outcome: &Outcome) {
        match outcome {
            Outcome::Search { nest, quality, .. } => {
                if self.anchor.is_none() {
                    self.anchor = Some(*nest);
                }
                if quality.is_good() {
                    self.informed = Some(*nest);
                }
            }
            Outcome::Recruit { nest, .. } => {
                if self.informed.is_none() && Some(*nest) != self.anchor {
                    // Only informed ants recruit actively, so a changed
                    // nest id communicates the winner.
                    self.informed = Some(*nest);
                }
            }
            Outcome::Go { .. } => {}
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        self.informed
    }

    fn is_final(&self) -> bool {
        self.informed.is_some()
    }

    fn label(&self) -> &'static str {
        self.strategy.label()
    }

    fn role(&self) -> AgentRole {
        if self.informed.is_some() {
            AgentRole::Final
        } else {
            AgentRole::Searching
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boxed_colony, make_env, step_once};
    use hh_model::{Quality, QualitySpec};

    #[test]
    fn search_informs_on_good_nest() {
        let mut ant = SpreaderAnt::new(SpreadStrategy::WaitAtHome, 0);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(3),
                quality: Quality::GOOD,
                count: 1,
            },
        );
        assert!(ant.is_informed());
        assert_eq!(ant.committed_nest(), Some(NestId::candidate(3)));
        assert_eq!(ant.choose(2), Action::recruit_active(NestId::candidate(3)));
    }

    #[test]
    fn bad_search_sets_anchor_only() {
        let mut ant = SpreaderAnt::new(SpreadStrategy::WaitAtHome, 1);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(2),
                quality: Quality::BAD,
                count: 1,
            },
        );
        assert!(!ant.is_informed());
        assert_eq!(ant.choose(2), Action::recruit_passive(NestId::candidate(2)));
    }

    #[test]
    fn recruitment_to_new_nest_informs() {
        let mut ant = SpreaderAnt::new(SpreadStrategy::WaitAtHome, 2);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: NestId::candidate(4),
                home_count: 9,
            },
        );
        assert!(ant.is_informed());
        assert_eq!(ant.committed_nest(), Some(NestId::candidate(4)));
    }

    #[test]
    fn unrecruited_wait_stays_ignorant() {
        let mut ant = SpreaderAnt::new(SpreadStrategy::WaitAtHome, 3);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        // recruit() returned its own input.
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: NestId::candidate(1),
                home_count: 9,
            },
        );
        assert!(!ant.is_informed());
    }

    #[test]
    fn search_strategy_always_searches_when_ignorant() {
        let mut ant = SpreaderAnt::new(SpreadStrategy::SearchForever, 4);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        for round in 2..10 {
            assert_eq!(ant.choose(round), Action::Search);
        }
    }

    #[test]
    fn hybrid_mixes_both() {
        let mut ant = SpreaderAnt::new(
            SpreadStrategy::Hybrid {
                search_probability: 0.5,
            },
            5,
        );
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        let mut searches = 0;
        let mut waits = 0;
        for round in 2..202 {
            match ant.choose(round) {
                Action::Search => searches += 1,
                Action::Recruit { active: false, .. } => waits += 1,
                other => panic!("unexpected action {other}"),
            }
        }
        assert!(
            searches > 50 && waits > 50,
            "searches {searches}, waits {waits}"
        );
    }

    #[test]
    fn whole_colony_becomes_informed() {
        for strategy in [
            SpreadStrategy::WaitAtHome,
            SpreadStrategy::SearchForever,
            SpreadStrategy::Hybrid {
                search_probability: 0.3,
            },
        ] {
            let mut env = make_env(64, QualitySpec::single_good(2, 1), 17);
            let mut agents = boxed_colony(64, |i| SpreaderAnt::new(strategy, i as u64));
            let mut informed_at = None;
            for round in 1..=2_000u64 {
                step_once(&mut env, &mut agents);
                if agents.iter().all(|a| a.is_final()) {
                    informed_at = Some(round);
                    break;
                }
            }
            let round = informed_at
                .unwrap_or_else(|| panic!("{}: colony never informed", strategy.label()));
            assert!(
                round >= 2,
                "{}: 64 ants cannot all learn the nest in one round",
                strategy.label()
            );
        }
    }
}
