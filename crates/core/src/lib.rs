//! # hh-core — the house-hunting algorithms
//!
//! The algorithmic contributions of *Distributed House-Hunting in Ant
//! Colonies* (Ghaffari, Musco, Radeva, Lynch; PODC 2015), implemented as
//! [`Agent`] state machines over the formal model of the companion
//! `hh-model` crate:
//!
//! | Item | Paper | Type |
//! |------|-------|------|
//! | Optimal `O(log n)` algorithm ("Algorithm 2") | §4 | [`OptimalAnt`] |
//! | Simple `O(k log n)` algorithm ("Algorithm 3") | §5 | [`SimpleAnt`] |
//! | Lower-bound spreading processes | §3 | [`SpreaderAnt`] |
//! | Adaptive-rate variant (improved running time) | §6 | [`AdaptiveAnt`] |
//! | Non-binary-quality variant | §6 | [`QualityAnt`] |
//! | Byzantine adversaries (malicious faults) | §6 | [`byzantine`] |
//! | Idle colony members (Afek–Gordon–Sulamy) | related work | [`IdlerAnt`] |
//!
//! Colonies (one agent per ant) are built with the helpers in
//! [`colony`]; they return a [`Colony`] — a contiguous, statically
//! dispatched [`AnyAgent`] vector with incrementally cached role/honesty
//! tallies ([`RoleCensus`]). The formal problem statement and consensus
//! predicates live in [`problem`]. The synchronous executor that drives
//! agents against an environment — including crash/delay perturbations —
//! is in the `hh-sim` crate.
//!
//! ## Quick example
//!
//! ```
//! use hh_core::{colony, problem, Agent};
//! use hh_model::{ColonyConfig, Environment, QualitySpec};
//!
//! let n = 32;
//! let config = ColonyConfig::new(n, QualitySpec::good_prefix(4, 2)).seed(7);
//! let mut env = Environment::new(&config)?;
//! let mut ants = colony::simple(n, 7);
//!
//! // Drive the colony until every ant is committed to one good nest.
//! let mut consensus = None;
//! for _ in 0..5_000 {
//!     let round = env.round() + 1;
//!     let actions: Vec<_> = ants.iter_mut().map(|a| a.choose(round)).collect();
//!     let report = env.step(&actions)?;
//!     for (ant, outcome) in ants.iter_mut().zip(&report.outcomes) {
//!         ant.observe(round, outcome);
//!     }
//!     if let Some(nest) = problem::honest_consensus(ants.as_slice()) {
//!         if env.quality_of(nest).is_some_and(|q| q.is_good()) {
//!             consensus = Some((round, nest));
//!             break;
//!         }
//!     }
//! }
//! let (round, nest) = consensus.expect("the colony converges");
//! assert!(env.quality_of(nest).unwrap().is_good());
//! assert!(round >= 1);
//! # Ok::<(), hh_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod agent;
mod any;
mod idle;
mod optimal;
mod quality;
mod simple;
mod spreader;

pub mod byzantine;
pub mod colony;
pub mod columns;
pub mod problem;
pub mod table;

#[cfg(test)]
pub(crate) mod testutil;

pub use adaptive::{AdaptiveAnt, AdaptivePolicy};
pub use agent::{Agent, AgentRole, BoxedAgent, CyclePhase};
pub use any::AnyAgent;
pub use byzantine::{BadNestRecruiter, OscillatorAnt, SleeperAnt};
pub use colony::{AgentSnapshot, CensusDelta, Colony, RoleCensus};
pub use columns::{ColumnsMut, SnapshotColumns};
pub use idle::IdlerAnt;
pub use optimal::OptimalAnt;
pub use quality::QualityAnt;
pub use simple::{LinearPolicy, RecruitPolicy, SimpleAnt, UrnAnt, UrnOptions};
pub use spreader::{SpreadStrategy, SpreaderAnt};
pub use table::{
    AgentColumns, AgentColumnsMut, DenseRows, DenseRowsMut, UrnColumns, UrnColumnsMut,
};
