//! Adversarial agents for the fault-tolerance experiments — Section 6's
//! "malicious faults" extension.
//!
//! A Byzantine ant is still bound by the model: it makes exactly one legal
//! call per round and cannot forge recruitment (the pairing is run by the
//! environment). Its only attack surface is *what* it advocates and
//! *when*. The adversaries here exercise that surface:
//!
//! * [`BadNestRecruiter`] — hunts for a bad nest, then recruits honest
//!   ants to it forever. Against the paper-faithful simple algorithm
//!   (which never re-checks quality after a tandem run) this is the
//!   strongest practical attack: every hijacked ant starts amplifying the
//!   bad nest itself.
//! * [`OscillatorAnt`] — advocates a different known nest every round,
//!   injecting churn that slows convergence without a fixed target.
//! * [`SleeperAnt`] — runs the honest simple algorithm until a trigger
//!   round, then turns into a [`BadNestRecruiter`]: tests whether a
//!   near-converged colony can be destabilized.
//!
//! All adversaries report [`Agent::is_honest`] `false`, so the harness
//! evaluates consensus over the honest sub-colony only (experiment F12).

use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole};
use crate::simple::{SimpleAnt, UrnOptions};

/// An adversary that recruits honest ants to a bad nest forever.
///
/// Until it discovers a bad nest by searching it behaves like a harmless
/// searcher; if the environment has no bad nest it stays harmless.
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, BadNestRecruiter};
/// use hh_model::Action;
///
/// let mut ant = BadNestRecruiter::new();
/// assert_eq!(ant.choose(1), Action::Search);
/// assert!(!ant.is_honest());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BadNestRecruiter {
    target: Option<NestId>,
}

impl BadNestRecruiter {
    /// Creates an adversary with no target yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the bad nest being advocated, once found.
    #[must_use]
    pub fn target(&self) -> Option<NestId> {
        self.target
    }
}

impl Agent for BadNestRecruiter {
    fn choose(&mut self, _round: u64) -> Action {
        match self.target {
            Some(nest) => Action::recruit_active(nest),
            None => Action::Search,
        }
    }

    fn observe(&mut self, _round: u64, outcome: &Outcome) {
        if self.target.is_none() {
            if let Outcome::Search { nest, quality, .. } = outcome {
                if !quality.is_good() {
                    self.target = Some(*nest);
                }
            }
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        // Adversaries are excluded from consensus accounting; reporting
        // the target would only confuse metrics.
        None
    }

    fn is_honest(&self) -> bool {
        false
    }

    fn label(&self) -> &'static str {
        "byz-bad-recruiter"
    }
}

/// An adversary that advocates a different known nest every round,
/// maximizing churn.
#[derive(Debug, Clone, Default)]
pub struct OscillatorAnt {
    known: Vec<NestId>,
    cursor: usize,
}

impl OscillatorAnt {
    /// Creates an oscillator with no known nests yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many distinct nests the oscillator cycles between. It keeps
    /// searching until it knows this many.
    const TARGET_REPERTOIRE: usize = 2;
}

impl Agent for OscillatorAnt {
    fn choose(&mut self, _round: u64) -> Action {
        if self.known.len() < Self::TARGET_REPERTOIRE {
            return Action::Search;
        }
        self.cursor = (self.cursor + 1) % self.known.len();
        Action::recruit_active(self.known[self.cursor])
    }

    fn observe(&mut self, _round: u64, outcome: &Outcome) {
        if let Outcome::Search { nest, .. } = outcome {
            if !self.known.contains(nest) {
                self.known.push(*nest);
            }
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        None
    }

    fn is_honest(&self) -> bool {
        false
    }

    fn label(&self) -> &'static str {
        "byz-oscillator"
    }
}

/// An adversary that behaves honestly until `trigger_round`, then attacks
/// like a [`BadNestRecruiter`].
#[derive(Debug, Clone)]
pub struct SleeperAnt {
    inner: SimpleAnt,
    trigger_round: u64,
    bad_target: Option<NestId>,
}

impl SleeperAnt {
    /// Creates a sleeper that runs the honest simple algorithm (for a
    /// colony of `n`) until `trigger_round`.
    #[must_use]
    pub fn new(n: usize, seed: u64, trigger_round: u64) -> Self {
        Self {
            inner: SimpleAnt::with_options(n, seed, UrnOptions::paper()),
            trigger_round,
            bad_target: None,
        }
    }

    /// Returns `true` once the sleeper has turned.
    #[must_use]
    pub fn is_awake(&self, round: u64) -> bool {
        round >= self.trigger_round
    }
}

impl Agent for SleeperAnt {
    fn choose(&mut self, round: u64) -> Action {
        if round < self.trigger_round {
            return self.inner.choose(round);
        }
        match self.bad_target {
            Some(nest) => Action::recruit_active(nest),
            None => Action::Search,
        }
    }

    fn observe(&mut self, round: u64, outcome: &Outcome) {
        // Record bad nests whenever seen, pre- or post-trigger.
        if let Outcome::Search { nest, quality, .. } = outcome {
            if !quality.is_good() && self.bad_target.is_none() {
                self.bad_target = Some(*nest);
            }
        }
        if round < self.trigger_round {
            self.inner.observe(round, outcome);
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        None
    }

    fn is_honest(&self) -> bool {
        false
    }

    fn label(&self) -> &'static str {
        "byz-sleeper"
    }

    fn role(&self) -> AgentRole {
        AgentRole::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boxed_colony, drive_to_consensus, make_env};
    use hh_model::{Quality, QualitySpec};

    #[test]
    fn bad_recruiter_locks_onto_bad_nest() {
        let mut ant = BadNestRecruiter::new();
        assert_eq!(ant.choose(1), Action::Search);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(2),
                quality: Quality::GOOD,
                count: 1,
            },
        );
        assert_eq!(ant.target(), None, "good nests are not targets");
        assert_eq!(ant.choose(2), Action::Search);
        ant.observe(
            2,
            &Outcome::Search {
                nest: NestId::candidate(3),
                quality: Quality::BAD,
                count: 1,
            },
        );
        assert_eq!(ant.target(), Some(NestId::candidate(3)));
        for round in 3..8 {
            assert_eq!(
                ant.choose(round),
                Action::recruit_active(NestId::candidate(3))
            );
        }
        assert!(!ant.is_honest());
        assert_eq!(ant.committed_nest(), None);
    }

    #[test]
    fn oscillator_builds_repertoire_then_cycles() {
        let mut ant = OscillatorAnt::new();
        assert_eq!(ant.choose(1), Action::Search);
        for (round, idx) in [(1u64, 1usize), (2, 2)] {
            ant.observe(
                round,
                &Outcome::Search {
                    nest: NestId::candidate(idx),
                    quality: Quality::BAD,
                    count: 1,
                },
            );
        }
        let mut seen = std::collections::BTreeSet::new();
        for round in 3..7 {
            match ant.choose(round) {
                Action::Recruit { active: true, nest } => {
                    seen.insert(nest);
                }
                other => panic!("expected active recruit, got {other}"),
            }
        }
        assert_eq!(seen.len(), 2, "oscillator must alternate between nests");
    }

    #[test]
    fn oscillator_dedupes_known_nests() {
        let mut ant = OscillatorAnt::new();
        for round in 1..5 {
            ant.observe(
                round,
                &Outcome::Search {
                    nest: NestId::candidate(1),
                    quality: Quality::BAD,
                    count: 1,
                },
            );
        }
        // Only one distinct nest known: keeps searching.
        assert_eq!(ant.choose(9), Action::Search);
    }

    #[test]
    fn sleeper_behaves_honestly_then_turns() {
        let mut ant = SleeperAnt::new(10, 0, 6);
        assert!(!ant.is_awake(5));
        assert!(ant.is_awake(6));
        assert_eq!(ant.choose(1), Action::Search);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        // Pre-trigger: passive simple behaviour (bad nest → wait).
        assert_eq!(ant.choose(2), Action::recruit_passive(NestId::candidate(1)));
        // Post-trigger: attacks with the recorded bad nest.
        assert_eq!(ant.choose(6), Action::recruit_active(NestId::candidate(1)));
    }

    /// The paper-faithful simple colony still converges when a *small*
    /// number of adversaries attack: their recruitment rate is bounded by
    /// their head-count.
    #[test]
    fn small_adversary_fraction_is_survivable() {
        let n = 96;
        let byz = 4;
        let mut solved_count = 0;
        for seed in 0..6 {
            let env = make_env(n, QualitySpec::good_prefix(4, 2), 100 + seed);
            let mut agents = boxed_colony(n - byz, |i| SimpleAnt::new(n, seed * 97 + i as u64));
            for _ in 0..byz {
                agents.push(Box::new(BadNestRecruiter::new()));
            }
            let (solved, env) = drive_to_consensus(env, agents, 4_000);
            if let Some((_, winner)) = solved {
                assert!(env.quality_of(winner).unwrap().is_good());
                solved_count += 1;
            }
        }
        assert!(
            solved_count >= 4,
            "honest colony should usually survive 4% adversaries, solved {solved_count}/6"
        );
    }
}
