//! Minimal in-crate execution driver for unit tests.
//!
//! The full-featured executor lives in `hh-sim` (which depends on this
//! crate); unit tests here only need a bare loop that drives a colony of
//! agents against an environment and detects commitment consensus.

use hh_model::{ColonyConfig, Environment, NestId, QualitySpec};

use crate::agent::{Agent, BoxedAgent};

/// Builds an exact-observation environment for tests.
pub(crate) fn make_env(n: usize, spec: QualitySpec, seed: u64) -> Environment {
    Environment::new(&ColonyConfig::new(n, spec).seed(seed)).expect("valid test config")
}

/// Builds an environment with the "assessing go" extension enabled.
pub(crate) fn make_env_revealing(n: usize, spec: QualitySpec, seed: u64) -> Environment {
    Environment::new(&ColonyConfig::new(n, spec).seed(seed).reveal_quality_on_go())
        .expect("valid test config")
}

/// Runs one synchronous round: every agent chooses, the environment steps,
/// every agent observes. Panics on any model error — unit tests exercise
/// legal agents only.
pub(crate) fn step_once(env: &mut Environment, agents: &mut [BoxedAgent]) {
    let round = env.round() + 1;
    let actions: Vec<_> = agents.iter_mut().map(|a| a.choose(round)).collect();
    let report = env.step(&actions).expect("agents must act legally");
    for (agent, outcome) in agents.iter_mut().zip(&report.outcomes) {
        agent.observe(round, outcome);
    }
}

/// Returns the nest all honest agents are committed to, if they agree.
pub(crate) fn honest_commitment(agents: &[BoxedAgent]) -> Option<NestId> {
    let mut consensus: Option<NestId> = None;
    for agent in agents.iter().filter(|a| a.is_honest()) {
        let nest = agent.committed_nest()?;
        match consensus {
            None => consensus = Some(nest),
            Some(existing) if existing == nest => {}
            Some(_) => return None,
        }
    }
    consensus
}

/// Drives the colony until every honest agent is committed to the same
/// good nest, or `max_rounds` elapse. Returns the consensus round and
/// winning nest on success, plus the environment for post-mortem
/// inspection.
pub(crate) fn drive_to_consensus(
    mut env: Environment,
    mut agents: Vec<BoxedAgent>,
    max_rounds: u64,
) -> (Option<(u64, NestId)>, Environment) {
    for _ in 0..max_rounds {
        step_once(&mut env, &mut agents);
        if let Some(nest) = honest_commitment(&agents) {
            if env
                .quality_of(nest)
                .is_some_and(|quality| quality.is_good())
            {
                return (Some((env.round(), nest)), env);
            }
        }
    }
    (None, env)
}

/// Boxes a homogeneous colony built by `factory`.
pub(crate) fn boxed_colony<A, F>(n: usize, mut factory: F) -> Vec<BoxedAgent>
where
    A: Agent + Send + 'static,
    F: FnMut(usize) -> A,
{
    (0..n).map(|i| Box::new(factory(i)) as BoxedAgent).collect()
}
