//! Struct-of-arrays storage for the colony's cached agent state.
//!
//! [`Colony`](crate::Colony) caches each agent's harness-observable
//! state — honesty, [`AgentRole`], committed nest, finality. Storing
//! those caches as one `Vec<AgentSnapshot>` (array-of-structs) makes the
//! executor's round pass stream 16-byte records to read a 1-byte role;
//! this module stores the same information as four dense parallel
//! columns (honesty, role, commitment, finality), so each consumer
//! touches only the bytes it needs and a column scan is branch-light and
//! prefetcher-friendly.
//!
//! [`AgentSnapshot`] remains the scalar assemble/disassemble view: the
//! columns and the snapshot are two layouts of the same value, and
//! [`SnapshotColumns::get`]/[`SnapshotColumns::set`] convert exactly in
//! both directions (a round-trip is the identity — property-tested in
//! `tests/property_agents.rs`).
//!
//! # Commitment encoding
//!
//! The commitment column packs `Option<NestId>` into a single `u32`:
//! `0` encodes `None` and `raw + 1` encodes `Some(nest)`. The shift (as
//! opposed to using the home nest's raw `0` as the niche) keeps the
//! encoding total: even an agent that claims commitment to the home nest
//! — impossible for the paper's algorithms but expressible through the
//! [`Agent`](crate::Agent) trait — round-trips exactly.

use hh_model::NestId;

use crate::agent::AgentRole;
use crate::colony::AgentSnapshot;

/// Packs a committed-nest option into the commitment column's `u32`.
#[inline]
#[must_use]
pub fn encode_commitment(committed: Option<NestId>) -> u32 {
    match committed {
        None => 0,
        Some(nest) => nest.raw() as u32 + 1,
    }
}

/// Unpacks a commitment-column value back into `Option<NestId>`.
#[inline]
#[must_use]
pub fn decode_commitment(encoded: u32) -> Option<NestId> {
    if encoded == 0 {
        None
    } else {
        Some(NestId::from_raw(encoded as usize - 1))
    }
}

/// Dense parallel columns of per-agent observable state — the colony's
/// snapshot cache in struct-of-arrays layout.
///
/// All four columns always have identical length (one slot per ant,
/// indexed by ant id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotColumns {
    honest: Vec<bool>,
    roles: Vec<AgentRole>,
    committed: Vec<u32>,
    finals: Vec<bool>,
}

impl SnapshotColumns {
    /// Empty columns.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty columns with room for `n` agents.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            honest: Vec::with_capacity(n),
            roles: Vec::with_capacity(n),
            committed: Vec::with_capacity(n),
            finals: Vec::with_capacity(n),
        }
    }

    /// Number of agents covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// `true` if no agents are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Appends one agent's snapshot as a new row.
    pub fn push(&mut self, snapshot: AgentSnapshot) {
        self.honest.push(snapshot.honest);
        self.roles.push(snapshot.role);
        self.committed.push(encode_commitment(snapshot.committed));
        self.finals.push(snapshot.is_final);
    }

    /// Drops all rows, keeping capacity.
    pub fn clear(&mut self) {
        self.honest.clear();
        self.roles.clear();
        self.committed.clear();
        self.finals.clear();
    }

    /// Assembles agent `index`'s row into a scalar [`AgentSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> AgentSnapshot {
        AgentSnapshot {
            honest: self.honest[index],
            role: self.roles[index],
            committed: decode_commitment(self.committed[index]),
            is_final: self.finals[index],
        }
    }

    /// Disassembles a scalar snapshot into agent `index`'s row.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn set(&mut self, index: usize, snapshot: AgentSnapshot) {
        self.honest[index] = snapshot.honest;
        self.roles[index] = snapshot.role;
        self.committed[index] = encode_commitment(snapshot.committed);
        self.finals[index] = snapshot.is_final;
    }

    /// Agent `index`'s honesty (single-column read).
    #[inline]
    #[must_use]
    pub fn honest(&self, index: usize) -> bool {
        self.honest[index]
    }

    /// Agent `index`'s role (single-column read).
    #[inline]
    #[must_use]
    pub fn role(&self, index: usize) -> AgentRole {
        self.roles[index]
    }

    /// Agent `index`'s committed nest (single-column read).
    #[inline]
    #[must_use]
    pub fn committed(&self, index: usize) -> Option<NestId> {
        decode_commitment(self.committed[index])
    }

    /// Agent `index`'s finality (single-column read).
    #[inline]
    #[must_use]
    pub fn is_final(&self, index: usize) -> bool {
        self.finals[index]
    }

    /// Iterates all rows as assembled scalar snapshots.
    pub fn iter(&self) -> impl Iterator<Item = AgentSnapshot> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The whole table as one mutable band (for the executor's chunked
    /// round phases; split it with [`ColumnsMut::split_at_mut`]).
    pub fn as_band_mut(&mut self) -> ColumnsMut<'_> {
        ColumnsMut {
            honest: &mut self.honest,
            roles: &mut self.roles,
            committed: &mut self.committed,
            finals: &mut self.finals,
        }
    }
}

impl FromIterator<AgentSnapshot> for SnapshotColumns {
    fn from_iter<I: IntoIterator<Item = AgentSnapshot>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut columns = Self::with_capacity(iter.size_hint().0);
        for snapshot in iter {
            columns.push(snapshot);
        }
        columns
    }
}

/// A mutable band over a contiguous index range of [`SnapshotColumns`] —
/// the SoA counterpart of `&mut [AgentSnapshot]`, splittable into
/// disjoint chunks for the executor's worker pool.
///
/// Band indices are *local* (`0..len()`), exactly like slice indices
/// after `split_at_mut`.
#[derive(Debug)]
pub struct ColumnsMut<'a> {
    honest: &'a mut [bool],
    roles: &'a mut [AgentRole],
    committed: &'a mut [u32],
    finals: &'a mut [bool],
}

impl<'a> ColumnsMut<'a> {
    /// Number of agents in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (ColumnsMut<'a>, ColumnsMut<'a>) {
        let (honest_l, honest_r) = self.honest.split_at_mut(mid);
        let (roles_l, roles_r) = self.roles.split_at_mut(mid);
        let (committed_l, committed_r) = self.committed.split_at_mut(mid);
        let (finals_l, finals_r) = self.finals.split_at_mut(mid);
        (
            ColumnsMut {
                honest: honest_l,
                roles: roles_l,
                committed: committed_l,
                finals: finals_l,
            },
            ColumnsMut {
                honest: honest_r,
                roles: roles_r,
                committed: committed_r,
                finals: finals_r,
            },
        )
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> ColumnsMut<'_> {
        ColumnsMut {
            honest: self.honest,
            roles: self.roles,
            committed: self.committed,
            finals: self.finals,
        }
    }

    /// Assembles local row `index` into a scalar [`AgentSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> AgentSnapshot {
        AgentSnapshot {
            honest: self.honest[index],
            role: self.roles[index],
            committed: decode_commitment(self.committed[index]),
            is_final: self.finals[index],
        }
    }

    /// Disassembles a scalar snapshot into local row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn set(&mut self, index: usize, snapshot: AgentSnapshot) {
        self.honest[index] = snapshot.honest;
        self.roles[index] = snapshot.role;
        self.committed[index] = encode_commitment(snapshot.committed);
        self.finals[index] = snapshot.is_final;
    }

    /// Local row `index`'s honesty (single-column read).
    #[inline]
    #[must_use]
    pub fn honest(&self, index: usize) -> bool {
        self.honest[index]
    }

    /// Local row `index`'s role (single-column read).
    #[inline]
    #[must_use]
    pub fn role(&self, index: usize) -> AgentRole {
        self.roles[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshots() -> Vec<AgentSnapshot> {
        vec![
            AgentSnapshot {
                honest: true,
                role: AgentRole::Searching,
                committed: None,
                is_final: false,
            },
            AgentSnapshot {
                honest: true,
                role: AgentRole::Active,
                committed: Some(NestId::candidate(3)),
                is_final: false,
            },
            AgentSnapshot {
                honest: false,
                role: AgentRole::Other,
                committed: Some(NestId::HOME),
                is_final: false,
            },
            AgentSnapshot {
                honest: true,
                role: AgentRole::Final,
                committed: Some(NestId::candidate(1)),
                is_final: true,
            },
        ]
    }

    #[test]
    fn commitment_encoding_round_trips() {
        for committed in [
            None,
            Some(NestId::HOME),
            Some(NestId::candidate(1)),
            Some(NestId::candidate(250)),
        ] {
            assert_eq!(decode_commitment(encode_commitment(committed)), committed);
        }
        assert_eq!(encode_commitment(None), 0);
        assert_eq!(encode_commitment(Some(NestId::HOME)), 1);
    }

    #[test]
    fn get_set_round_trip_matches_snapshots() {
        let snapshots = sample_snapshots();
        let mut columns: SnapshotColumns = snapshots.iter().copied().collect();
        assert_eq!(columns.len(), snapshots.len());
        for (i, expected) in snapshots.iter().enumerate() {
            assert_eq!(&columns.get(i), expected);
        }
        // Overwrite through set and read back.
        columns.set(0, snapshots[3]);
        assert_eq!(columns.get(0), snapshots[3]);
        let collected: Vec<AgentSnapshot> = columns.iter().collect();
        assert_eq!(collected[1..], snapshots[1..]);
    }

    #[test]
    fn band_split_preserves_rows() {
        let snapshots = sample_snapshots();
        let mut columns: SnapshotColumns = snapshots.iter().copied().collect();
        let band = columns.as_band_mut();
        assert_eq!(band.len(), 4);
        let (left, mut right) = band.split_at_mut(1);
        assert_eq!(left.len(), 1);
        assert_eq!(right.len(), 3);
        assert_eq!(left.get(0), snapshots[0]);
        assert_eq!(right.get(2), snapshots[3]);
        right.set(0, snapshots[0]);
        assert_eq!(columns.get(1), snapshots[0]);
    }
}
