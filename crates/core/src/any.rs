//! Static dispatch over the built-in agents: the executor's hot path.
//!
//! Every round of every trial calls [`Agent::choose`] and
//! [`Agent::observe`] once per ant, so the dispatch mechanism for those
//! calls is the innermost loop of the whole experiment suite. Boxing each
//! ant behind a `dyn Agent` vtable (the pre-engine design, still available
//! as [`AnyAgent::Custom`]) costs an indirect call *and* a pointer chase
//! to a heap allocation per method — poison for cache locality when a
//! colony of 4096 ants is stepped in sequence.
//!
//! [`AnyAgent`] instead enumerates the built-in agents so a colony is one
//! contiguous `Vec<AnyAgent>` and every dispatch is a jump table the
//! optimizer can see through. The [`Custom`](AnyAgent::Custom) variant
//! keeps the open world: anything implementing [`Agent`] still runs, it
//! just pays the old indirection. The equivalence is behavioural, not
//! merely API-shaped — `tests/engine_equivalence.rs` proves that a colony
//! built from `AnyAgent` variants produces bit-identical trial outcomes
//! to the same colony boxed behind `Custom`.

use hh_model::{Action, NestId, Outcome};

use crate::adaptive::AdaptiveAnt;
use crate::agent::{Agent, AgentRole, BoxedAgent};
use crate::byzantine::{BadNestRecruiter, OscillatorAnt, SleeperAnt};
use crate::idle::IdlerAnt;
use crate::optimal::OptimalAnt;
use crate::quality::QualityAnt;
use crate::simple::SimpleAnt;
use crate::spreader::SpreaderAnt;

/// One ant of any built-in algorithm, dispatched statically.
///
/// Construct variants with the `From` impls (`SimpleAnt::new(..).into()`)
/// or wrap an arbitrary [`Agent`] with [`AnyAgent::custom`]. The
/// hardened-simple variant of the registry is a [`SimpleAnt`] with
/// different [`UrnOptions`](crate::UrnOptions) and therefore shares the
/// [`Simple`](AnyAgent::Simple) variant.
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, AnyAgent, SimpleAnt};
/// use hh_model::Action;
///
/// let mut ant: AnyAgent = SimpleAnt::new(100, 42).into();
/// assert_eq!(ant.choose(1), Action::Search);
/// assert_eq!(ant.label(), "simple");
/// ```
#[non_exhaustive]
pub enum AnyAgent {
    /// The simple `O(k log n)` algorithm (Section 5), including the
    /// hardened/settling option sets.
    Simple(SimpleAnt),
    /// The optimal `O(log n)` algorithm (Section 4).
    Optimal(OptimalAnt),
    /// The adaptive-recruitment-rate variant (Section 6).
    Adaptive(AdaptiveAnt),
    /// The non-binary quality-weighted variant (Section 6). Boxed: it is
    /// the largest agent by a factor of ~2, and leaving it inline would
    /// pad *every* colony's agent stride to its size — the enum stays a
    /// compact 88 bytes this way, and quality agents pay one extra
    /// pointer hop that their (rare) workloads never notice.
    Quality(Box<QualityAnt>),
    /// A lower-bound spreading process (Section 3).
    Spreader(SpreaderAnt),
    /// An idle colony member (Afek–Gordon–Sulamy).
    Idler(IdlerAnt),
    /// The bad-nest-recruiting Byzantine adversary.
    BadRecruiter(BadNestRecruiter),
    /// The churn-injecting Byzantine adversary.
    Oscillator(OscillatorAnt),
    /// The honest-until-triggered Byzantine adversary.
    Sleeper(SleeperAnt),
    /// The escape hatch: any other [`Agent`], dispatched dynamically.
    Custom(BoxedAgent),
}

use crate::colony::snapshot_of;

/// Forwards one method call to whichever variant is live.
macro_rules! dispatch {
    ($self:expr, $agent:ident => $body:expr) => {
        match $self {
            AnyAgent::Simple($agent) => $body,
            AnyAgent::Optimal($agent) => $body,
            AnyAgent::Adaptive($agent) => $body,
            AnyAgent::Quality($agent) => $body,
            AnyAgent::Spreader($agent) => $body,
            AnyAgent::Idler($agent) => $body,
            AnyAgent::BadRecruiter($agent) => $body,
            AnyAgent::Oscillator($agent) => $body,
            AnyAgent::Sleeper($agent) => $body,
            AnyAgent::Custom($agent) => $body,
        }
    };
}

impl AnyAgent {
    /// Wraps an arbitrary agent in the dynamic-dispatch escape hatch.
    #[must_use]
    pub fn custom<A: Agent + Send + 'static>(agent: A) -> Self {
        AnyAgent::Custom(Box::new(agent))
    }

    /// Reads the agent's harness-observable state in **one** dispatch —
    /// the executor refreshes every stepped agent every round, and four
    /// separate trait calls (honest/role/committed/final) would re-read
    /// the discriminant four times.
    #[inline]
    #[must_use]
    pub fn snapshot(&self) -> crate::colony::AgentSnapshot {
        dispatch!(self, agent => snapshot_of!(agent))
    }

    /// The executor's per-ant round transition in **one** dispatch:
    /// observe round `round`'s outcome (if the agent's own action ran),
    /// snapshot, then choose the action for `round + 1`.
    ///
    /// The snapshot is taken **between** observe and choose: it captures
    /// the state after `choose(round)` (from the previous transition)
    /// plus `observe(round)` — exactly what a detector inspecting the
    /// colony at the end of `round` is defined to see. The mutations of
    /// the pre-chosen `choose(round + 1)` land in the *next*
    /// transition's snapshot, just as they would if chosen at the start
    /// of round `round + 1`, so fusing never leaks lookahead state even
    /// for agents whose `choose` advances their state machine.
    #[inline]
    pub fn observe_choose(
        &mut self,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, crate::colony::AgentSnapshot) {
        dispatch!(self, agent => {
            if let Some(outcome) = outcome {
                agent.observe(round, outcome);
            }
            let snapshot = snapshot_of!(agent);
            let action = agent.choose(round + 1);
            (action, snapshot)
        })
    }

    /// Returns `true` for the [`Custom`](AnyAgent::Custom) escape hatch.
    #[must_use]
    pub fn is_custom(&self) -> bool {
        matches!(self, AnyAgent::Custom(_))
    }
}

impl Agent for AnyAgent {
    #[inline]
    fn choose(&mut self, round: u64) -> Action {
        dispatch!(self, agent => agent.choose(round))
    }

    #[inline]
    fn observe(&mut self, round: u64, outcome: &Outcome) {
        dispatch!(self, agent => agent.observe(round, outcome));
    }

    #[inline]
    fn committed_nest(&self) -> Option<NestId> {
        dispatch!(self, agent => agent.committed_nest())
    }

    #[inline]
    fn is_final(&self) -> bool {
        dispatch!(self, agent => agent.is_final())
    }

    #[inline]
    fn is_honest(&self) -> bool {
        dispatch!(self, agent => agent.is_honest())
    }

    #[inline]
    fn label(&self) -> &'static str {
        dispatch!(self, agent => agent.label())
    }

    #[inline]
    fn role(&self) -> AgentRole {
        dispatch!(self, agent => agent.role())
    }
}

impl std::fmt::Debug for AnyAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let variant = match self {
            AnyAgent::Simple(_) => "Simple",
            AnyAgent::Optimal(_) => "Optimal",
            AnyAgent::Adaptive(_) => "Adaptive",
            AnyAgent::Quality(_) => "Quality",
            AnyAgent::Spreader(_) => "Spreader",
            AnyAgent::Idler(_) => "Idler",
            AnyAgent::BadRecruiter(_) => "BadRecruiter",
            AnyAgent::Oscillator(_) => "Oscillator",
            AnyAgent::Sleeper(_) => "Sleeper",
            AnyAgent::Custom(_) => "Custom",
        };
        f.debug_struct("AnyAgent")
            .field("variant", &variant)
            .field("label", &self.label())
            .finish()
    }
}

impl From<SimpleAnt> for AnyAgent {
    fn from(agent: SimpleAnt) -> Self {
        AnyAgent::Simple(agent)
    }
}

impl From<OptimalAnt> for AnyAgent {
    fn from(agent: OptimalAnt) -> Self {
        AnyAgent::Optimal(agent)
    }
}

impl From<AdaptiveAnt> for AnyAgent {
    fn from(agent: AdaptiveAnt) -> Self {
        AnyAgent::Adaptive(agent)
    }
}

impl From<QualityAnt> for AnyAgent {
    fn from(agent: QualityAnt) -> Self {
        AnyAgent::Quality(Box::new(agent))
    }
}

impl From<SpreaderAnt> for AnyAgent {
    fn from(agent: SpreaderAnt) -> Self {
        AnyAgent::Spreader(agent)
    }
}

impl From<IdlerAnt> for AnyAgent {
    fn from(agent: IdlerAnt) -> Self {
        AnyAgent::Idler(agent)
    }
}

impl From<BadNestRecruiter> for AnyAgent {
    fn from(agent: BadNestRecruiter) -> Self {
        AnyAgent::BadRecruiter(agent)
    }
}

impl From<OscillatorAnt> for AnyAgent {
    fn from(agent: OscillatorAnt) -> Self {
        AnyAgent::Oscillator(agent)
    }
}

impl From<SleeperAnt> for AnyAgent {
    fn from(agent: SleeperAnt) -> Self {
        AnyAgent::Sleeper(agent)
    }
}

impl From<BoxedAgent> for AnyAgent {
    fn from(agent: BoxedAgent) -> Self {
        AnyAgent::Custom(agent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_model::Quality;

    #[test]
    fn variants_forward_every_method() {
        let mut ant: AnyAgent = SimpleAnt::new(8, 1).into();
        assert_eq!(ant.choose(1), Action::Search);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::GOOD,
                count: 3,
            },
        );
        assert_eq!(ant.committed_nest(), Some(NestId::candidate(1)));
        assert_eq!(ant.role(), AgentRole::Active);
        assert!(ant.is_honest());
        assert!(!ant.is_final());
        assert!(!ant.is_custom());
        assert_eq!(ant.label(), "simple");
    }

    #[test]
    fn adversary_variants_report_dishonest() {
        let bad: AnyAgent = BadNestRecruiter::new().into();
        let osc: AnyAgent = OscillatorAnt::new().into();
        let sleeper: AnyAgent = SleeperAnt::new(8, 0, 10).into();
        for agent in [&bad, &osc, &sleeper] {
            assert!(!agent.is_honest(), "{}", agent.label());
        }
    }

    #[test]
    fn custom_wraps_and_forwards() {
        struct Probe;
        impl Agent for Probe {
            fn choose(&mut self, _round: u64) -> Action {
                Action::Search
            }
            fn observe(&mut self, _round: u64, _outcome: &Outcome) {}
            fn committed_nest(&self) -> Option<NestId> {
                Some(NestId::candidate(2))
            }
            fn label(&self) -> &'static str {
                "probe"
            }
        }
        let mut any = AnyAgent::custom(Probe);
        assert!(any.is_custom());
        assert_eq!(any.choose(1), Action::Search);
        assert_eq!(any.committed_nest(), Some(NestId::candidate(2)));
        assert_eq!(any.label(), "probe");
        assert!(format!("{any:?}").contains("Custom"));
    }

    #[test]
    fn boxed_agents_convert_into_custom() {
        let boxed: BoxedAgent = Box::new(IdlerAnt::new());
        let any: AnyAgent = boxed.into();
        assert!(any.is_custom());
        assert_eq!(any.label(), "idler");
    }
}
