//! Per-algorithm agent-state tables: the colony's *own* state in
//! struct-of-arrays layout (SoA part 2).
//!
//! PR 7 columnized the colony's cached snapshots
//! ([`SnapshotColumns`](crate::SnapshotColumns)); the benchmarks showed
//! the remaining floor is the agent stream itself — every round loads the
//! full 88-byte [`AnyAgent`] enum per ant to touch a handful of urn
//! fields. This module stores those fields as dense parallel columns
//! instead, for the colonies where that is possible: a **homogeneous**
//! colony (every ant the same urn algorithm with identical policy,
//! options, and colony size) optionally interleaved with
//! [`IdlerAnt`](crate::IdlerAnt)s, which carry two words of state and do
//! not break the batch.
//!
//! The executor gathers an eligible colony's `Vec<AnyAgent>` into an
//! [`AgentColumns`] table once, runs unperturbed rounds as column loops
//! over [`AgentColumnsMut`] bands (chunk-splittable exactly like
//! [`ColumnsMut`](crate::ColumnsMut)), and scatters the table back into
//! the `Vec` whenever the scalar representation is needed again
//! (perturbed rounds, instrumented paths, user inspection).
//!
//! ## Bit-identity by construction
//!
//! The table executes **the same code** over the same values as the
//! array-of-structs path: urn rows borrow their column elements into the
//! shared `UrnRefMut` state machine (the one implementation behind
//! [`crate::Agent`] for [`UrnAnt`]), idler rows call the shared
//! `idler_choose`/`idler_observe` helpers, and each ant's
//! [`DrawKey`] lives in a column of its own. Because every coin is a
//! pure keyed function of `(key, round)` — no per-row stream state —
//! gather → rounds → scatter is bit-identical to running the rounds on
//! the `Vec<AnyAgent>` directly *regardless of row order*;
//! `tests/soa_equivalence.rs` holds the whole scenario catalog to that
//! contract against the `EngineKind::Scalar` oracle.

use hh_model::seeding::DrawKey;
use hh_model::{Action, NestId, Outcome};

use crate::adaptive::AdaptivePolicy;
use crate::agent::{Agent, AgentRole};
use crate::any::AnyAgent;
use crate::colony::{snapshot_of, AgentSnapshot};
use crate::columns::{decode_commitment, encode_commitment};
use crate::idle::{idler_choose, idler_observe};
use crate::optimal::OptimalAnt;
use crate::quality::QualityAnt;
use crate::simple::{
    urn_committed, urn_role, LinearPolicy, RecruitPolicy, State, UrnAnt, UrnOptions, UrnRefMut,
};
use crate::spreader::SpreaderAnt;

/// What one table row holds: a batched urn ant or an interleaved idler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Urn,
    Idler,
}

/// The batched layout one homogeneous colony compiles to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Plan {
    Simple {
        options: UrnOptions,
        n: u32,
    },
    Adaptive {
        policy: AdaptivePolicy,
        options: UrnOptions,
        n: u32,
    },
    /// Uniform [`OptimalAnt`] colony, stored as dense self-contained rows
    /// (the ants carry no shared parameters).
    Optimal,
    /// Uniform [`QualityAnt`] colony, dense rows (per-row parameters may
    /// differ; each row is self-contained).
    Quality,
    /// Uniform [`SpreaderAnt`] colony, dense rows.
    Spreader,
}

/// Classifies a colony: `Some(plan)` if every agent is one shared urn
/// algorithm (equal policy/options/`n`) or an idler, or a uniform
/// dense-row algorithm (optimal/quality/spreader, **no** idler
/// interleave), `None` otherwise.
fn plan(agents: &[AnyAgent]) -> Option<Plan> {
    let mut plan: Option<Plan> = None;
    let mut idler_seen = false;
    for agent in agents {
        match agent {
            AnyAgent::Idler(_) => {
                // Idlers interleave with urn plans only; the dense-row
                // plans keep one concrete agent type per row.
                idler_seen = true;
                if matches!(plan, Some(Plan::Optimal | Plan::Quality | Plan::Spreader)) {
                    return None;
                }
            }
            AnyAgent::Simple(ant) => match &plan {
                None => {
                    plan = Some(Plan::Simple {
                        options: ant.options,
                        n: ant.n,
                    });
                }
                Some(Plan::Simple { options, n }) if *options == ant.options && *n == ant.n => {}
                _ => return None,
            },
            AnyAgent::Adaptive(ant) => match &plan {
                None => {
                    plan = Some(Plan::Adaptive {
                        policy: ant.policy,
                        options: ant.options,
                        n: ant.n,
                    });
                }
                Some(Plan::Adaptive { policy, options, n })
                    if *policy == ant.policy && *options == ant.options && *n == ant.n => {}
                _ => return None,
            },
            AnyAgent::Optimal(_) => match &plan {
                None if !idler_seen => plan = Some(Plan::Optimal),
                Some(Plan::Optimal) => {}
                _ => return None,
            },
            AnyAgent::Quality(_) => match &plan {
                None if !idler_seen => plan = Some(Plan::Quality),
                Some(Plan::Quality) => {}
                _ => return None,
            },
            AnyAgent::Spreader(_) => match &plan {
                None if !idler_seen => plan = Some(Plan::Spreader),
                Some(Plan::Spreader) => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    // An all-idler colony batches trivially; the urn parameters are inert.
    Some(plan.unwrap_or(Plan::Simple {
        options: UrnOptions::default(),
        n: u32::try_from(agents.len()).ok()?,
    }))
}

/// Dense parallel columns over one homogeneous (modulo idlers) colony's
/// urn state, generic over the shared [`RecruitPolicy`].
///
/// Obtained through [`AgentColumns::gather`]; rows are indexed by ant id
/// exactly like the source `Vec<AnyAgent>`.
#[derive(Debug, Clone)]
pub struct UrnColumns<P> {
    n: u32,
    policy: P,
    options: UrnOptions,
    kind: Vec<RowKind>,
    key: Vec<DrawKey>,
    count: Vec<u32>,
    nest: Vec<NestId>,
    state: Vec<State>,
    pending: Vec<bool>,
    /// Idler rows only; urn rows hold the `None` encoding.
    advocated: Vec<u32>,
    /// Idler rows only; urn rows hold the `None` encoding.
    carried: Vec<u32>,
}

impl<P: RecruitPolicy + Copy> UrnColumns<P> {
    fn gather_with(
        agents: &[AnyAgent],
        n: u32,
        policy: P,
        options: UrnOptions,
        mut as_urn: impl for<'b> FnMut(&'b AnyAgent) -> Option<&'b UrnAnt<P>>,
    ) -> Self {
        let mut table = Self {
            n,
            policy,
            options,
            kind: Vec::with_capacity(agents.len()),
            key: Vec::with_capacity(agents.len()),
            count: Vec::with_capacity(agents.len()),
            nest: Vec::with_capacity(agents.len()),
            state: Vec::with_capacity(agents.len()),
            pending: Vec::with_capacity(agents.len()),
            advocated: Vec::with_capacity(agents.len()),
            carried: Vec::with_capacity(agents.len()),
        };
        for agent in agents {
            if let Some(ant) = as_urn(agent) {
                table.kind.push(RowKind::Urn);
                table.key.push(ant.key);
                table.count.push(ant.count);
                table.nest.push(ant.nest);
                table.state.push(ant.state);
                table.pending.push(ant.pending_assessment);
                table.advocated.push(encode_commitment(None));
                table.carried.push(encode_commitment(None));
            } else {
                let AnyAgent::Idler(ant) = agent else {
                    unreachable!("plan() admitted a non-urn, non-idler agent");
                };
                table.kind.push(RowKind::Idler);
                // Idlers are coin-free; the row still needs a key slot so
                // the columns stay parallel. The dummy key is never drawn
                // from (the `kind` mask excludes idler rows).
                table.key.push(DrawKey::from_seed(0));
                table.count.push(0);
                table.nest.push(NestId::HOME);
                table.state.push(State::Searching);
                table.pending.push(false);
                table.advocated.push(encode_commitment(ant.advocated));
                table.carried.push(encode_commitment(ant.carried_to));
            }
        }
        table
    }

    fn scatter_into_with(
        &self,
        agents: &mut [AnyAgent],
        mut as_urn: impl for<'b> FnMut(&'b mut AnyAgent) -> Option<&'b mut UrnAnt<P>>,
    ) {
        assert_eq!(
            agents.len(),
            self.kind.len(),
            "agent-state table and colony have diverged in length"
        );
        for (index, agent) in agents.iter_mut().enumerate() {
            match self.kind[index] {
                RowKind::Urn => {
                    let ant =
                        as_urn(agent).expect("agent-state table and colony have diverged in shape");
                    ant.key = self.key[index];
                    ant.count = self.count[index];
                    ant.nest = self.nest[index];
                    ant.state = self.state[index];
                    ant.pending_assessment = self.pending[index];
                }
                RowKind::Idler => {
                    let AnyAgent::Idler(ant) = agent else {
                        panic!("agent-state table and colony have diverged in shape");
                    };
                    ant.advocated = decode_commitment(self.advocated[index]);
                    ant.carried_to = decode_commitment(self.carried[index]);
                }
            }
        }
    }

    /// Number of rows (ants).
    #[must_use]
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// The whole table as one mutable band.
    pub fn as_band_mut(&mut self) -> UrnColumnsMut<'_, P> {
        UrnColumnsMut {
            n: self.n,
            policy: self.policy,
            options: self.options,
            kind: &self.kind,
            key: &self.key,
            count: &mut self.count,
            nest: &mut self.nest,
            state: &mut self.state,
            pending: &mut self.pending,
            advocated: &mut self.advocated,
            carried: &mut self.carried,
        }
    }
}

/// A mutable band over a contiguous row range of [`UrnColumns`] — the
/// state-table counterpart of `&mut [AnyAgent]`, splittable into disjoint
/// chunks for the executor's worker pool. Band indices are *local*
/// (`0..len()`), exactly like [`ColumnsMut`](crate::ColumnsMut).
#[derive(Debug)]
pub struct UrnColumnsMut<'a, P> {
    n: u32,
    policy: P,
    options: UrnOptions,
    kind: &'a [RowKind],
    key: &'a [DrawKey],
    count: &'a mut [u32],
    nest: &'a mut [NestId],
    state: &'a mut [State],
    pending: &'a mut [bool],
    advocated: &'a mut [u32],
    carried: &'a mut [u32],
}

impl<'a, P: RecruitPolicy + Copy> UrnColumnsMut<'a, P> {
    /// Number of rows in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (UrnColumnsMut<'a, P>, UrnColumnsMut<'a, P>) {
        let (kind_l, kind_r) = self.kind.split_at(mid);
        let (key_l, key_r) = self.key.split_at(mid);
        let (count_l, count_r) = self.count.split_at_mut(mid);
        let (nest_l, nest_r) = self.nest.split_at_mut(mid);
        let (state_l, state_r) = self.state.split_at_mut(mid);
        let (pending_l, pending_r) = self.pending.split_at_mut(mid);
        let (advocated_l, advocated_r) = self.advocated.split_at_mut(mid);
        let (carried_l, carried_r) = self.carried.split_at_mut(mid);
        (
            UrnColumnsMut {
                n: self.n,
                policy: self.policy,
                options: self.options,
                kind: kind_l,
                key: key_l,
                count: count_l,
                nest: nest_l,
                state: state_l,
                pending: pending_l,
                advocated: advocated_l,
                carried: carried_l,
            },
            UrnColumnsMut {
                n: self.n,
                policy: self.policy,
                options: self.options,
                kind: kind_r,
                key: key_r,
                count: count_r,
                nest: nest_r,
                state: state_r,
                pending: pending_r,
                advocated: advocated_r,
                carried: carried_r,
            },
        )
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> UrnColumnsMut<'_, P> {
        UrnColumnsMut {
            n: self.n,
            policy: self.policy,
            options: self.options,
            kind: self.kind,
            key: self.key,
            count: self.count,
            nest: self.nest,
            state: self.state,
            pending: self.pending,
            advocated: self.advocated,
            carried: self.carried,
        }
    }

    /// Borrows local row `index` into the shared urn state machine.
    ///
    /// Only valid for urn rows; the callers below check `kind` first.
    fn urn_row(&mut self, index: usize) -> UrnRefMut<'_, P> {
        UrnRefMut {
            key: self.key[index],
            count: &mut self.count[index],
            nest: &mut self.nest[index],
            state: &mut self.state[index],
            pending_assessment: &mut self.pending[index],
            n: self.n,
            policy: &self.policy,
            options: self.options,
        }
    }

    /// Local row `index`'s action for `round` — the column counterpart of
    /// [`crate::Agent::choose`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn choose(&mut self, index: usize, round: u64) -> Action {
        match self.kind[index] {
            RowKind::Urn => self.urn_row(index).choose(round),
            RowKind::Idler => idler_choose(decode_commitment(self.advocated[index])),
        }
    }

    /// Local row `index`'s observable state — the column counterpart of
    /// [`AnyAgent::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn snapshot(&self, index: usize) -> AgentSnapshot {
        match self.kind[index] {
            RowKind::Urn => AgentSnapshot {
                honest: true,
                role: urn_role(self.state[index]),
                committed: urn_committed(self.nest[index]),
                is_final: self.state[index] == State::Settled,
            },
            RowKind::Idler => AgentSnapshot {
                honest: true,
                role: AgentRole::Passive,
                committed: decode_commitment(self.carried[index]),
                is_final: false,
            },
        }
    }

    /// Local row `index`'s fused round transition — the column
    /// counterpart of [`AnyAgent::observe_choose`], with the identical
    /// observe → snapshot → choose(`round + 1`) ordering (see that
    /// method's docs for why the snapshot sits in the middle).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn observe_choose(
        &mut self,
        index: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        match self.kind[index] {
            RowKind::Urn => {
                let mut row = self.urn_row(index);
                if let Some(outcome) = outcome {
                    row.observe(outcome);
                }
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: urn_role(*row.state),
                    committed: urn_committed(*row.nest),
                    is_final: *row.state == State::Settled,
                };
                let action = row.choose(round + 1);
                (action, snapshot)
            }
            RowKind::Idler => {
                let mut advocated = decode_commitment(self.advocated[index]);
                let mut carried = decode_commitment(self.carried[index]);
                if let Some(outcome) = outcome {
                    idler_observe(&mut advocated, &mut carried, outcome);
                }
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: AgentRole::Passive,
                    committed: carried,
                    is_final: false,
                };
                let action = idler_choose(advocated);
                self.advocated[index] = encode_commitment(advocated);
                self.carried[index] = encode_commitment(carried);
                (action, snapshot)
            }
        }
    }

    /// Batched observe pass: applies `outcomes[i]` to every row `i` of
    /// the band whose `ran[i]` flag is set, without touching any RNG
    /// (urn observation is coin-free by construction; see
    /// `UrnRefMut::observe`). One column sweep instead of a per-row
    /// dispatch inside the executor's fused loop.
    ///
    /// # Panics
    ///
    /// Panics if `ran` or `outcomes` is shorter than the band.
    pub fn observe_rows(&mut self, ran: &[bool], outcomes: &[Outcome]) {
        for index in 0..self.len() {
            if ran[index] {
                self.observe_row(index, &outcomes[index]);
            }
        }
    }

    /// Applies `outcome` to local row `index` without touching any RNG —
    /// the per-row body of [`observe_rows`](Self::observe_rows), exposed
    /// so the executor can observe rows as it drains the chunk's
    /// recruit-call cursor instead of materializing an outcome column
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn observe_row(&mut self, index: usize, outcome: &Outcome) {
        match self.kind[index] {
            RowKind::Urn => self.urn_row(index).observe(outcome),
            RowKind::Idler => {
                let mut advocated = decode_commitment(self.advocated[index]);
                let mut carried = decode_commitment(self.carried[index]);
                idler_observe(&mut advocated, &mut carried, outcome);
                self.advocated[index] = encode_commitment(advocated);
                self.carried[index] = encode_commitment(carried);
            }
        }
    }

    /// Whether `round` can draw recruit coins at all: the urn state
    /// machine reaches its single coin site only on even recruitment
    /// rounds past round 1. On every other round the draw plane is
    /// structurally all-`false`, so batched callers can skip the fill
    /// and take the fused per-row pass instead — the keyed draws make
    /// either choice bit-identical.
    #[must_use]
    pub fn plane_round(round: u64) -> bool {
        round > 1 && round.is_multiple_of(2)
    }

    /// Fills the band's **draw plane** for `round`: one dense pass over
    /// the key/count/state columns producing each row's recruit draw as
    /// the pure keyed coin `hash(key, round)` — no per-row stream state,
    /// so the loop is branch-free (masking with non-short-circuit `&`)
    /// and the compiler can batch the hash across rows. Rows whose draw
    /// the scalar path would never consume — idlers and non-`Active`
    /// states, which includes the committed-`Passive` rows that *do*
    /// consume a plane entry but always recruit passively — come out
    /// `false` exactly as `recruit_draw` would return for them, so
    /// bit-identity to the `EngineKind::Scalar` oracle is preserved by
    /// construction.
    ///
    /// Consume the plane with [`choose_with_draw`](Self::choose_with_draw).
    pub fn fill_draw_plane(&self, round: u64, draws: &mut Vec<bool>) {
        draws.clear();
        draws.resize(self.len(), false);
        if !Self::plane_round(round) {
            return;
        }
        for index in 0..self.len() {
            // Mirrors `recruit_draw` per row: probability and coin are
            // computed unconditionally (idler rows hold count = 0 and a
            // dummy key; degenerate p, including NaN from pathological
            // policies, fails both the `p > 0.0` mask and the coin), and
            // the masks are bitwise so the whole body is one straight-line
            // expression per row.
            let p = self
                .policy
                .recruit_probability(self.count[index] as usize, self.n as usize, round)
                .clamp(0.0, 1.0);
            draws[index] = (self.kind[index] == RowKind::Urn)
                & (self.state[index] == State::Active)
                & (p > 0.0)
                & self.key[index].coin(round, p);
        }
    }

    /// [`choose`](Self::choose) consuming a pre-computed draw-plane entry
    /// instead of evaluating the keyed coin inline: the urn state machine
    /// runs with `Some(draw)`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn choose_with_draw(&mut self, index: usize, round: u64, draw: bool) -> Action {
        match self.kind[index] {
            RowKind::Urn => self.urn_row(index).choose_with(round, Some(draw)),
            RowKind::Idler => idler_choose(decode_commitment(self.advocated[index])),
        }
    }

    /// [`choose_with_draw`](Self::choose_with_draw) fused with
    /// [`snapshot`](Self::snapshot) in one row dispatch, with the
    /// snapshot read before the choose (the [`observe_choose`](Self::observe_choose)
    /// ordering — for urn and idler rows choose mutates nothing
    /// snapshot-visible, so the two orderings coincide; keeping the
    /// scalar path's order makes that fact irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn choose_snapshot_with_draw(
        &mut self,
        index: usize,
        round: u64,
        draw: bool,
    ) -> (Action, AgentSnapshot) {
        match self.kind[index] {
            RowKind::Urn => {
                let mut row = self.urn_row(index);
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: urn_role(*row.state),
                    committed: urn_committed(*row.nest),
                    is_final: *row.state == State::Settled,
                };
                let action = row.choose_with(round, Some(draw));
                (action, snapshot)
            }
            RowKind::Idler => {
                let carried = decode_commitment(self.carried[index]);
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: AgentRole::Passive,
                    committed: carried,
                    is_final: false,
                };
                let action = idler_choose(decode_commitment(self.advocated[index]));
                (action, snapshot)
            }
        }
    }
}

/// Dense rows over one uniform non-urn colony (optimal / quality /
/// spreader): every row is the concrete agent type `A`, unboxed and
/// contiguous, so the batched round loop monomorphizes on `A` and skips
/// the per-ant [`AnyAgent`] variant dispatch and (for boxed variants)
/// the pointer chase.
///
/// Unlike [`UrnColumns`] this is not a field-wise decomposition — these
/// algorithms mutate state inside `choose` (e.g. [`OptimalAnt`]'s phase
/// automaton), so there is no separate plane pass; their coin draws are
/// issued inline (keyed and order-independent, like every per-row draw
/// since the counter-based migration) — but it shares the gather →
/// batched rounds → scatter contract and band-splitting shape.
#[derive(Debug, Clone)]
pub struct DenseRows<A> {
    rows: Vec<A>,
}

impl<A: Agent + Clone> DenseRows<A> {
    fn gather_with(agents: &[AnyAgent], mut extract: impl FnMut(&AnyAgent) -> Option<A>) -> Self {
        Self {
            rows: agents
                .iter()
                .map(|agent| extract(agent).expect("plan() admitted a foreign agent"))
                .collect(),
        }
    }

    fn scatter_into_with(&self, agents: &mut [AnyAgent], mut store: impl FnMut(&mut AnyAgent, &A)) {
        assert_eq!(
            agents.len(),
            self.rows.len(),
            "agent-state table and colony have diverged in length"
        );
        for (agent, row) in agents.iter_mut().zip(&self.rows) {
            store(agent, row);
        }
    }

    /// Number of rows (ants).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The whole table as one mutable band.
    pub fn as_band_mut(&mut self) -> DenseRowsMut<'_, A> {
        DenseRowsMut(&mut self.rows)
    }
}

/// A mutable band over a contiguous row range of [`DenseRows`] —
/// splittable into disjoint chunks exactly like [`UrnColumnsMut`], with
/// local (`0..len()`) indices.
#[derive(Debug)]
pub struct DenseRowsMut<'a, A>(&'a mut [A]);

impl<'a, A: Agent + Clone> DenseRowsMut<'a, A> {
    /// Number of rows in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (DenseRowsMut<'a, A>, DenseRowsMut<'a, A>) {
        let (left, right) = self.0.split_at_mut(mid);
        (DenseRowsMut(left), DenseRowsMut(right))
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> DenseRowsMut<'_, A> {
        DenseRowsMut(self.0)
    }

    /// Local row `index`'s action for `round` — the dense counterpart of
    /// [`crate::Agent::choose`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn choose(&mut self, index: usize, round: u64) -> Action {
        self.0[index].choose(round)
    }

    /// Local row `index`'s observable state.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn snapshot(&self, index: usize) -> AgentSnapshot {
        snapshot_of!(&self.0[index])
    }

    /// Local row `index`'s fused round transition, with the identical
    /// observe → snapshot → choose(`round + 1`) ordering as
    /// [`AnyAgent::observe_choose`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn observe_choose(
        &mut self,
        index: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        let agent = &mut self.0[index];
        if let Some(outcome) = outcome {
            agent.observe(round, outcome);
        }
        let snapshot = snapshot_of!(agent);
        let action = agent.choose(round + 1);
        (action, snapshot)
    }
}

/// A homogeneous colony's agent state as per-algorithm parallel columns,
/// dispatched **once per colony** on the shared algorithm instead of once
/// per ant per round.
#[derive(Debug, Clone)]
pub enum AgentColumns {
    /// Every urn row runs [`SimpleAnt`](crate::SimpleAnt) (one shared
    /// [`UrnOptions`], so the hardened variant batches too).
    Simple(UrnColumns<LinearPolicy>),
    /// Every urn row runs [`AdaptiveAnt`](crate::AdaptiveAnt) with one
    /// shared [`AdaptivePolicy`].
    Adaptive(UrnColumns<AdaptivePolicy>),
    /// Every row is an [`OptimalAnt`] (dense, no idler interleave).
    Optimal(DenseRows<OptimalAnt>),
    /// Every row is a [`QualityAnt`] (dense, unboxed from
    /// [`AnyAgent::Quality`]'s `Box`, no idler interleave).
    Quality(DenseRows<QualityAnt>),
    /// Every row is a [`SpreaderAnt`] (dense, no idler interleave).
    Spreader(DenseRows<SpreaderAnt>),
}

impl AgentColumns {
    /// `true` if [`gather`](Self::gather) would succeed: every agent is
    /// one shared urn algorithm (equal policy, options, and colony size)
    /// or an [`IdlerAnt`](crate::IdlerAnt).
    #[must_use]
    pub fn eligible(agents: &[AnyAgent]) -> bool {
        plan(agents).is_some()
    }

    /// Gathers a homogeneous (modulo idlers) colony into parallel
    /// columns; `None` for heterogeneous mixes, `Custom` agents, or any
    /// non-urn algorithm.
    #[must_use]
    pub fn gather(agents: &[AnyAgent]) -> Option<Self> {
        Some(match plan(agents)? {
            Plan::Simple { options, n } => AgentColumns::Simple(UrnColumns::gather_with(
                agents,
                n,
                LinearPolicy,
                options,
                |agent| match agent {
                    AnyAgent::Simple(ant) => Some(ant),
                    _ => None,
                },
            )),
            Plan::Adaptive { policy, options, n } => AgentColumns::Adaptive(
                UrnColumns::gather_with(agents, n, policy, options, |agent| match agent {
                    AnyAgent::Adaptive(ant) => Some(ant),
                    _ => None,
                }),
            ),
            Plan::Optimal => {
                AgentColumns::Optimal(DenseRows::gather_with(agents, |agent| match agent {
                    AnyAgent::Optimal(ant) => Some(ant.clone()),
                    _ => None,
                }))
            }
            Plan::Quality => {
                AgentColumns::Quality(DenseRows::gather_with(agents, |agent| match agent {
                    AnyAgent::Quality(ant) => Some((**ant).clone()),
                    _ => None,
                }))
            }
            Plan::Spreader => {
                AgentColumns::Spreader(DenseRows::gather_with(agents, |agent| match agent {
                    AnyAgent::Spreader(ant) => Some(ant.clone()),
                    _ => None,
                }))
            }
        })
    }

    /// Writes every row's state back into the source `Vec<AnyAgent>`
    /// (including each ant's draw key), making the scalar
    /// representation current again.
    ///
    /// # Panics
    ///
    /// Panics if `agents` does not have the exact shape the table was
    /// gathered from (same length, same variant at every index).
    pub fn scatter_into(&self, agents: &mut [AnyAgent]) {
        match self {
            AgentColumns::Simple(table) => {
                table.scatter_into_with(agents, |agent| match agent {
                    AnyAgent::Simple(ant) => Some(ant),
                    _ => None,
                });
            }
            AgentColumns::Adaptive(table) => {
                table.scatter_into_with(agents, |agent| match agent {
                    AnyAgent::Adaptive(ant) => Some(ant),
                    _ => None,
                });
            }
            AgentColumns::Optimal(table) => {
                table.scatter_into_with(agents, |agent, row| {
                    let AnyAgent::Optimal(ant) = agent else {
                        panic!("agent-state table and colony have diverged in shape");
                    };
                    *ant = row.clone();
                });
            }
            AgentColumns::Quality(table) => {
                table.scatter_into_with(agents, |agent, row| {
                    let AnyAgent::Quality(ant) = agent else {
                        panic!("agent-state table and colony have diverged in shape");
                    };
                    **ant = row.clone();
                });
            }
            AgentColumns::Spreader(table) => {
                table.scatter_into_with(agents, |agent, row| {
                    let AnyAgent::Spreader(ant) = agent else {
                        panic!("agent-state table and colony have diverged in shape");
                    };
                    *ant = row.clone();
                });
            }
        }
    }

    /// Number of rows (ants).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AgentColumns::Simple(table) => table.len(),
            AgentColumns::Adaptive(table) => table.len(),
            AgentColumns::Optimal(table) => table.len(),
            AgentColumns::Quality(table) => table.len(),
            AgentColumns::Spreader(table) => table.len(),
        }
    }

    /// `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole table as one mutable band (split it with
    /// [`AgentColumnsMut::split_at_mut`]).
    pub fn as_band_mut(&mut self) -> AgentColumnsMut<'_> {
        match self {
            AgentColumns::Simple(table) => AgentColumnsMut::Simple(table.as_band_mut()),
            AgentColumns::Adaptive(table) => AgentColumnsMut::Adaptive(table.as_band_mut()),
            AgentColumns::Optimal(table) => AgentColumnsMut::Optimal(table.as_band_mut()),
            AgentColumns::Quality(table) => AgentColumnsMut::Quality(table.as_band_mut()),
            AgentColumns::Spreader(table) => AgentColumnsMut::Spreader(table.as_band_mut()),
        }
    }
}

/// A mutable band over [`AgentColumns`]: the algorithm dispatch happens
/// here, **outside** the executor's per-ant loops — match once, then run
/// the monomorphized [`UrnColumnsMut`] loop.
#[derive(Debug)]
pub enum AgentColumnsMut<'a> {
    /// Band over a [`AgentColumns::Simple`] table.
    Simple(UrnColumnsMut<'a, LinearPolicy>),
    /// Band over a [`AgentColumns::Adaptive`] table.
    Adaptive(UrnColumnsMut<'a, AdaptivePolicy>),
    /// Band over a [`AgentColumns::Optimal`] table.
    Optimal(DenseRowsMut<'a, OptimalAnt>),
    /// Band over a [`AgentColumns::Quality`] table.
    Quality(DenseRowsMut<'a, QualityAnt>),
    /// Band over a [`AgentColumns::Spreader`] table.
    Spreader(DenseRowsMut<'a, SpreaderAnt>),
}

impl<'a> AgentColumnsMut<'a> {
    /// Number of rows in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AgentColumnsMut::Simple(band) => band.len(),
            AgentColumnsMut::Adaptive(band) => band.len(),
            AgentColumnsMut::Optimal(band) => band.len(),
            AgentColumnsMut::Quality(band) => band.len(),
            AgentColumnsMut::Spreader(band) => band.len(),
        }
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (AgentColumnsMut<'a>, AgentColumnsMut<'a>) {
        match self {
            AgentColumnsMut::Simple(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Simple(left),
                    AgentColumnsMut::Simple(right),
                )
            }
            AgentColumnsMut::Adaptive(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Adaptive(left),
                    AgentColumnsMut::Adaptive(right),
                )
            }
            AgentColumnsMut::Optimal(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Optimal(left),
                    AgentColumnsMut::Optimal(right),
                )
            }
            AgentColumnsMut::Quality(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Quality(left),
                    AgentColumnsMut::Quality(right),
                )
            }
            AgentColumnsMut::Spreader(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Spreader(left),
                    AgentColumnsMut::Spreader(right),
                )
            }
        }
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> AgentColumnsMut<'_> {
        match self {
            AgentColumnsMut::Simple(band) => AgentColumnsMut::Simple(band.reborrow()),
            AgentColumnsMut::Adaptive(band) => AgentColumnsMut::Adaptive(band.reborrow()),
            AgentColumnsMut::Optimal(band) => AgentColumnsMut::Optimal(band.reborrow()),
            AgentColumnsMut::Quality(band) => AgentColumnsMut::Quality(band.reborrow()),
            AgentColumnsMut::Spreader(band) => AgentColumnsMut::Spreader(band.reborrow()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveAnt;
    use crate::idle::IdlerAnt;
    use crate::simple::SimpleAnt;
    use crate::spreader::SpreadStrategy;
    use hh_model::Quality;

    fn simple_mixed(n: usize) -> Vec<AnyAgent> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    IdlerAnt::new().into()
                } else {
                    SimpleAnt::new(n, 100 + i as u64).into()
                }
            })
            .collect()
    }

    /// A deterministic synthetic outcome stream (no environment needed).
    fn synthetic_outcome(round: u64, index: usize) -> Outcome {
        if round == 1 {
            Outcome::Search {
                nest: NestId::candidate(1 + index % 3),
                quality: if index.is_multiple_of(2) {
                    Quality::GOOD
                } else {
                    Quality::BAD
                },
                count: index as u32 % 7,
            }
        } else if round.is_multiple_of(2) {
            Outcome::Recruit {
                nest: NestId::candidate(1 + (index + round as usize) % 3),
                home_count: 5,
            }
        } else {
            Outcome::Go {
                count: (index as u32 + round as u32) % 20,
                quality: None,
            }
        }
    }

    #[test]
    fn eligibility_matches_the_contract() {
        let n = 12;
        assert!(AgentColumns::eligible(&simple_mixed(n)));
        let uniform_adaptive: Vec<AnyAgent> = (0..n)
            .map(|i| AdaptiveAnt::new(n, i as u64).into())
            .collect();
        assert!(AgentColumns::eligible(&uniform_adaptive));
        let all_idlers: Vec<AnyAgent> = (0..n).map(|_| IdlerAnt::new().into()).collect();
        assert!(AgentColumns::eligible(&all_idlers));

        // Uniform dense-row colonies are eligible too (per-row parameters
        // may differ; the rows are self-contained).
        let uniform_optimal: Vec<AnyAgent> = (0..n).map(|_| OptimalAnt::new().into()).collect();
        assert!(AgentColumns::eligible(&uniform_optimal));
        let uniform_quality: Vec<AnyAgent> = (0..n)
            .map(|i| QualityAnt::new(n, i as u64, 2.0).into())
            .collect();
        assert!(AgentColumns::eligible(&uniform_quality));
        let uniform_spreaders: Vec<AnyAgent> = (0..n)
            .map(|i| SpreaderAnt::new(SpreadStrategy::WaitAtHome, i as u64).into())
            .collect();
        assert!(AgentColumns::eligible(&uniform_spreaders));

        // ... but dense plans reject idler interleaves, in either order.
        let mut dense_then_idler: Vec<AnyAgent> =
            (0..n).map(|_| OptimalAnt::new().into()).collect();
        dense_then_idler[n - 1] = IdlerAnt::new().into();
        assert!(!AgentColumns::eligible(&dense_then_idler));
        let mut idler_then_dense: Vec<AnyAgent> = (0..n)
            .map(|i| QualityAnt::new(n, i as u64, 2.0).into())
            .collect();
        idler_then_dense[0] = IdlerAnt::new().into();
        assert!(!AgentColumns::eligible(&idler_then_dense));

        // Mixed algorithms, non-urn agents, custom boxes, and differing
        // options all fall back to the AnyAgent path.
        let mut mixed = simple_mixed(n);
        mixed[0] = AdaptiveAnt::new(n, 0).into();
        assert!(!AgentColumns::eligible(&mixed));
        let mut optimal = simple_mixed(n);
        optimal[0] = OptimalAnt::new().into();
        assert!(!AgentColumns::eligible(&optimal));
        let mut custom = simple_mixed(n);
        custom[0] = AnyAgent::custom(SimpleAnt::new(n, 100));
        assert!(!AgentColumns::eligible(&custom));
        let mut options = simple_mixed(n);
        options[0] = SimpleAnt::with_options(n, 100, UrnOptions::hardened()).into();
        assert!(!AgentColumns::eligible(&options));
    }

    /// Gather → batched rounds → scatter is bit-identical to running the
    /// same rounds on the `Vec<AnyAgent>` directly, draw keys included.
    #[test]
    fn table_rounds_match_the_agent_vector_exactly() {
        let n = 24;
        let mut scalar = simple_mixed(n);
        let mut tabled = simple_mixed(n);

        // Round 1 choose on both representations.
        let mut table = AgentColumns::gather(&tabled).expect("eligible colony");
        {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            for (index, agent) in scalar.iter_mut().enumerate() {
                assert_eq!(agent.choose(1), band.choose(index, 1), "ant {index}");
            }
        }

        // Rounds 1..=6 through the fused transition: table side.
        for round in 1..=6u64 {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            for (index, agent) in scalar.iter_mut().enumerate() {
                let outcome = synthetic_outcome(round, index);
                let expected = agent.observe_choose(round, Some(&outcome));
                let got = band.observe_choose(index, round, Some(&outcome));
                assert_eq!(expected, got, "ant {index}, round {round}");
                assert_eq!(band.snapshot(index), agent.snapshot(), "ant {index}");
            }
        }

        // Scatter back and keep going on the plain agent path: the
        // restored ants (draw keys included) must stay in lockstep.
        table.scatter_into(&mut tabled);
        for round in 7..=10u64 {
            for (index, (a, b)) in scalar.iter_mut().zip(tabled.iter_mut()).enumerate() {
                let outcome = synthetic_outcome(round, index);
                assert_eq!(
                    a.observe_choose(round, Some(&outcome)),
                    b.observe_choose(round, Some(&outcome)),
                    "ant {index}, round {round} after scatter"
                );
            }
        }
    }

    #[test]
    fn bands_split_like_slices() {
        let n = 10;
        let agents = simple_mixed(n);
        let mut table = AgentColumns::gather(&agents).expect("eligible colony");
        assert_eq!(table.len(), n);
        assert!(!table.is_empty());
        let band = table.as_band_mut();
        assert_eq!(band.len(), n);
        let (left, right) = band.split_at_mut(3);
        assert_eq!(left.len(), 3);
        assert_eq!(right.len(), 7);
        let (mid, tail) = right.split_at_mut(4);
        assert_eq!(mid.len(), 4);
        assert_eq!(tail.len(), 3);
    }

    /// Runs a gathered colony and its scalar twin in lockstep through
    /// synthetic rounds, scatters, and keeps going on the agent path —
    /// the dense-row analogue of `table_rounds_match_the_agent_vector_exactly`.
    fn dense_lockstep(mut scalar: Vec<AnyAgent>, mut tabled: Vec<AnyAgent>, tag: &str) {
        macro_rules! with_band {
            ($band:expr, |$b:ident| $body:expr) => {
                match $band {
                    AgentColumnsMut::Simple(mut $b) => $body,
                    AgentColumnsMut::Adaptive(mut $b) => $body,
                    AgentColumnsMut::Optimal(mut $b) => $body,
                    AgentColumnsMut::Quality(mut $b) => $body,
                    AgentColumnsMut::Spreader(mut $b) => $body,
                }
            };
        }
        let mut table =
            AgentColumns::gather(&tabled).unwrap_or_else(|| panic!("{tag}: eligible colony"));
        for round in 1..=6u64 {
            with_band!(table.as_band_mut(), |band| {
                for (index, agent) in scalar.iter_mut().enumerate() {
                    let outcome = synthetic_outcome(round, index);
                    let expected = agent.observe_choose(round, Some(&outcome));
                    let got = band.observe_choose(index, round, Some(&outcome));
                    assert_eq!(expected, got, "{tag}: ant {index}, round {round}");
                    assert_eq!(band.snapshot(index), agent.snapshot(), "{tag}: ant {index}");
                }
            });
        }
        table.scatter_into(&mut tabled);
        for round in 7..=10u64 {
            for (index, (a, b)) in scalar.iter_mut().zip(tabled.iter_mut()).enumerate() {
                let outcome = synthetic_outcome(round, index);
                assert_eq!(
                    a.observe_choose(round, Some(&outcome)),
                    b.observe_choose(round, Some(&outcome)),
                    "{tag}: ant {index}, round {round} after scatter"
                );
            }
        }
    }

    #[test]
    fn dense_optimal_rows_match_the_agent_vector_exactly() {
        let make = || (0..16).map(|_| OptimalAnt::new().into()).collect();
        dense_lockstep(make(), make(), "optimal");
    }

    #[test]
    fn dense_quality_rows_match_the_agent_vector_exactly() {
        let make = || {
            (0..16)
                .map(|i| QualityAnt::new(16, 300 + i, 2.0).into())
                .collect()
        };
        dense_lockstep(make(), make(), "quality");
    }

    #[test]
    fn dense_spreader_rows_match_the_agent_vector_exactly() {
        let make = |strategy| {
            move || {
                (0..16u64)
                    .map(|i| SpreaderAnt::new(strategy, 500 + i).into())
                    .collect()
            }
        };
        for strategy in [
            SpreadStrategy::WaitAtHome,
            SpreadStrategy::SearchForever,
            SpreadStrategy::Hybrid {
                search_probability: 0.5,
            },
        ] {
            let make = make(strategy);
            dense_lockstep(make(), make(), strategy.label());
        }
    }

    /// One batched round via the split passes (`observe_rows` →
    /// `fill_draw_plane` → `choose_with_draw`) is bit-identical to the
    /// fused per-row `observe_choose`, draw keys included.
    #[test]
    fn draw_plane_matches_fused_transition_exactly() {
        let n = 24;
        let mut fused_agents = simple_mixed(n);
        let mut planed_agents = simple_mixed(n);
        let mut fused = AgentColumns::gather(&fused_agents).expect("eligible colony");
        let mut planed = AgentColumns::gather(&planed_agents).expect("eligible colony");
        let mut draws = Vec::new();
        for round in 1..=8u64 {
            let AgentColumnsMut::Simple(mut a) = fused.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            let AgentColumnsMut::Simple(mut b) = planed.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            let outcomes: Vec<Outcome> = (0..n).map(|i| synthetic_outcome(round, i)).collect();
            // Rows 0 and 13 miss their outcome this round (as if skipped
            // by the harness): observe_rows must leave them untouched.
            let ran: Vec<bool> = (0..n).map(|i| i != 0 && i != 13).collect();
            b.observe_rows(&ran, &outcomes);
            b.fill_draw_plane(round + 1, &mut draws);
            for index in 0..n {
                let observed = ran[index].then_some(&outcomes[index]);
                let expected = a.observe_choose(index, round, observed);
                let action = b.choose_with_draw(index, round + 1, draws[index]);
                let snapshot = b.snapshot(index);
                assert_eq!(expected, (action, snapshot), "ant {index}, round {round}");
            }
        }
        // The key columns must agree too: scatter back and keep running
        // on the plain agent path in lockstep.
        fused.scatter_into(&mut fused_agents);
        planed.scatter_into(&mut planed_agents);
        for round in 9..=12u64 {
            for (index, (a, b)) in fused_agents
                .iter_mut()
                .zip(planed_agents.iter_mut())
                .enumerate()
            {
                let outcome = synthetic_outcome(round, index);
                assert_eq!(
                    a.observe_choose(round, Some(&outcome)),
                    b.observe_choose(round, Some(&outcome)),
                    "ant {index}, round {round} after scatter"
                );
            }
        }
    }

    #[test]
    fn all_idler_colony_round_trips() {
        let n = 5;
        let mut agents: Vec<AnyAgent> = (0..n).map(|_| IdlerAnt::new().into()).collect();
        let mut table = AgentColumns::gather(&agents).expect("all-idler colony is eligible");
        {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("all-idler colony defaults to a Simple table");
            };
            for index in 0..n {
                assert_eq!(band.choose(index, 1), Action::Search);
                let outcome = synthetic_outcome(1, index);
                band.observe_choose(index, 1, Some(&outcome));
            }
        }
        table.scatter_into(&mut agents);
        for (index, agent) in agents.iter_mut().enumerate() {
            // Round 1's search was observed: the idler now advocates it.
            let Outcome::Search { nest, .. } = synthetic_outcome(1, index) else {
                unreachable!()
            };
            assert_eq!(agent.choose(2), Action::recruit_passive(nest));
        }
    }
}
