//! Per-algorithm agent-state tables: the colony's *own* state in
//! struct-of-arrays layout (SoA part 2).
//!
//! PR 7 columnized the colony's cached snapshots
//! ([`SnapshotColumns`](crate::SnapshotColumns)); the benchmarks showed
//! the remaining floor is the agent stream itself — every round loads the
//! full 88-byte [`AnyAgent`] enum per ant to touch a handful of urn
//! fields. This module stores those fields as dense parallel columns
//! instead, for the colonies where that is possible: a **homogeneous**
//! colony (every ant the same urn algorithm with identical policy,
//! options, and colony size) optionally interleaved with
//! [`IdlerAnt`](crate::IdlerAnt)s, which carry two words of state and do
//! not break the batch.
//!
//! The executor gathers an eligible colony's `Vec<AnyAgent>` into an
//! [`AgentColumns`] table once, runs unperturbed rounds as column loops
//! over [`AgentColumnsMut`] bands (chunk-splittable exactly like
//! [`ColumnsMut`](crate::ColumnsMut)), and scatters the table back into
//! the `Vec` whenever the scalar representation is needed again
//! (perturbed rounds, instrumented paths, user inspection).
//!
//! ## Bit-identity by construction
//!
//! The table executes **the same code** over the same values as the
//! array-of-structs path: urn rows borrow their column elements into the
//! shared `UrnRefMut` state machine (the one implementation behind
//! [`Agent`](crate::Agent) for [`UrnAnt`]), idler rows call the shared
//! `idler_choose`/`idler_observe` helpers, and each ant's `SmallRng` —
//! stream state and all — lives in a column of its own. Gather → rounds →
//! scatter is therefore bit-identical to running the rounds on the
//! `Vec<AnyAgent>` directly; `tests/soa_equivalence.rs` holds the whole
//! scenario catalog to that contract against the `EngineKind::Scalar`
//! oracle.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use hh_model::{Action, NestId, Outcome};

use crate::adaptive::AdaptivePolicy;
use crate::agent::AgentRole;
use crate::any::AnyAgent;
use crate::colony::AgentSnapshot;
use crate::columns::{decode_commitment, encode_commitment};
use crate::idle::{idler_choose, idler_observe};
use crate::simple::{
    urn_committed, urn_role, LinearPolicy, RecruitPolicy, State, UrnAnt, UrnOptions, UrnRefMut,
};

/// What one table row holds: a batched urn ant or an interleaved idler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Urn,
    Idler,
}

/// The batched layout one homogeneous colony compiles to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Plan {
    Simple {
        options: UrnOptions,
        n: u32,
    },
    Adaptive {
        policy: AdaptivePolicy,
        options: UrnOptions,
        n: u32,
    },
}

/// Classifies a colony: `Some(plan)` if every agent is one shared urn
/// algorithm (equal policy/options/`n`) or an idler, `None` otherwise.
fn plan(agents: &[AnyAgent]) -> Option<Plan> {
    let mut plan: Option<Plan> = None;
    for agent in agents {
        match agent {
            AnyAgent::Idler(_) => {}
            AnyAgent::Simple(ant) => match &plan {
                None => {
                    plan = Some(Plan::Simple {
                        options: ant.options,
                        n: ant.n,
                    });
                }
                Some(Plan::Simple { options, n }) if *options == ant.options && *n == ant.n => {}
                _ => return None,
            },
            AnyAgent::Adaptive(ant) => match &plan {
                None => {
                    plan = Some(Plan::Adaptive {
                        policy: ant.policy,
                        options: ant.options,
                        n: ant.n,
                    });
                }
                Some(Plan::Adaptive { policy, options, n })
                    if *policy == ant.policy && *options == ant.options && *n == ant.n => {}
                _ => return None,
            },
            _ => return None,
        }
    }
    // An all-idler colony batches trivially; the urn parameters are inert.
    Some(plan.unwrap_or(Plan::Simple {
        options: UrnOptions::default(),
        n: u32::try_from(agents.len()).ok()?,
    }))
}

/// Dense parallel columns over one homogeneous (modulo idlers) colony's
/// urn state, generic over the shared [`RecruitPolicy`].
///
/// Obtained through [`AgentColumns::gather`]; rows are indexed by ant id
/// exactly like the source `Vec<AnyAgent>`.
#[derive(Debug, Clone)]
pub struct UrnColumns<P> {
    n: u32,
    policy: P,
    options: UrnOptions,
    kind: Vec<RowKind>,
    rng: Vec<SmallRng>,
    count: Vec<u32>,
    nest: Vec<NestId>,
    state: Vec<State>,
    pending: Vec<bool>,
    /// Idler rows only; urn rows hold the `None` encoding.
    advocated: Vec<u32>,
    /// Idler rows only; urn rows hold the `None` encoding.
    carried: Vec<u32>,
}

impl<P: RecruitPolicy + Copy> UrnColumns<P> {
    fn gather_with(
        agents: &[AnyAgent],
        n: u32,
        policy: P,
        options: UrnOptions,
        mut as_urn: impl for<'b> FnMut(&'b AnyAgent) -> Option<&'b UrnAnt<P>>,
    ) -> Self {
        let mut table = Self {
            n,
            policy,
            options,
            kind: Vec::with_capacity(agents.len()),
            rng: Vec::with_capacity(agents.len()),
            count: Vec::with_capacity(agents.len()),
            nest: Vec::with_capacity(agents.len()),
            state: Vec::with_capacity(agents.len()),
            pending: Vec::with_capacity(agents.len()),
            advocated: Vec::with_capacity(agents.len()),
            carried: Vec::with_capacity(agents.len()),
        };
        for agent in agents {
            if let Some(ant) = as_urn(agent) {
                table.kind.push(RowKind::Urn);
                table.rng.push(ant.rng.clone());
                table.count.push(ant.count);
                table.nest.push(ant.nest);
                table.state.push(ant.state);
                table.pending.push(ant.pending_assessment);
                table.advocated.push(encode_commitment(None));
                table.carried.push(encode_commitment(None));
            } else {
                let AnyAgent::Idler(ant) = agent else {
                    unreachable!("plan() admitted a non-urn, non-idler agent");
                };
                table.kind.push(RowKind::Idler);
                // Idlers are coin-free; the row still needs an RNG slot so
                // the columns stay parallel. The dummy stream is never
                // advanced.
                table.rng.push(SmallRng::seed_from_u64(0));
                table.count.push(0);
                table.nest.push(NestId::HOME);
                table.state.push(State::Searching);
                table.pending.push(false);
                table.advocated.push(encode_commitment(ant.advocated));
                table.carried.push(encode_commitment(ant.carried_to));
            }
        }
        table
    }

    fn scatter_into_with(
        &self,
        agents: &mut [AnyAgent],
        mut as_urn: impl for<'b> FnMut(&'b mut AnyAgent) -> Option<&'b mut UrnAnt<P>>,
    ) {
        assert_eq!(
            agents.len(),
            self.kind.len(),
            "agent-state table and colony have diverged in length"
        );
        for (index, agent) in agents.iter_mut().enumerate() {
            match self.kind[index] {
                RowKind::Urn => {
                    let ant =
                        as_urn(agent).expect("agent-state table and colony have diverged in shape");
                    ant.rng = self.rng[index].clone();
                    ant.count = self.count[index];
                    ant.nest = self.nest[index];
                    ant.state = self.state[index];
                    ant.pending_assessment = self.pending[index];
                }
                RowKind::Idler => {
                    let AnyAgent::Idler(ant) = agent else {
                        panic!("agent-state table and colony have diverged in shape");
                    };
                    ant.advocated = decode_commitment(self.advocated[index]);
                    ant.carried_to = decode_commitment(self.carried[index]);
                }
            }
        }
    }

    /// Number of rows (ants).
    #[must_use]
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// The whole table as one mutable band.
    pub fn as_band_mut(&mut self) -> UrnColumnsMut<'_, P> {
        UrnColumnsMut {
            n: self.n,
            policy: self.policy,
            options: self.options,
            kind: &self.kind,
            rng: &mut self.rng,
            count: &mut self.count,
            nest: &mut self.nest,
            state: &mut self.state,
            pending: &mut self.pending,
            advocated: &mut self.advocated,
            carried: &mut self.carried,
        }
    }
}

/// A mutable band over a contiguous row range of [`UrnColumns`] — the
/// state-table counterpart of `&mut [AnyAgent]`, splittable into disjoint
/// chunks for the executor's worker pool. Band indices are *local*
/// (`0..len()`), exactly like [`ColumnsMut`](crate::ColumnsMut).
#[derive(Debug)]
pub struct UrnColumnsMut<'a, P> {
    n: u32,
    policy: P,
    options: UrnOptions,
    kind: &'a [RowKind],
    rng: &'a mut [SmallRng],
    count: &'a mut [u32],
    nest: &'a mut [NestId],
    state: &'a mut [State],
    pending: &'a mut [bool],
    advocated: &'a mut [u32],
    carried: &'a mut [u32],
}

impl<'a, P: RecruitPolicy + Copy> UrnColumnsMut<'a, P> {
    /// Number of rows in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (UrnColumnsMut<'a, P>, UrnColumnsMut<'a, P>) {
        let (kind_l, kind_r) = self.kind.split_at(mid);
        let (rng_l, rng_r) = self.rng.split_at_mut(mid);
        let (count_l, count_r) = self.count.split_at_mut(mid);
        let (nest_l, nest_r) = self.nest.split_at_mut(mid);
        let (state_l, state_r) = self.state.split_at_mut(mid);
        let (pending_l, pending_r) = self.pending.split_at_mut(mid);
        let (advocated_l, advocated_r) = self.advocated.split_at_mut(mid);
        let (carried_l, carried_r) = self.carried.split_at_mut(mid);
        (
            UrnColumnsMut {
                n: self.n,
                policy: self.policy,
                options: self.options,
                kind: kind_l,
                rng: rng_l,
                count: count_l,
                nest: nest_l,
                state: state_l,
                pending: pending_l,
                advocated: advocated_l,
                carried: carried_l,
            },
            UrnColumnsMut {
                n: self.n,
                policy: self.policy,
                options: self.options,
                kind: kind_r,
                rng: rng_r,
                count: count_r,
                nest: nest_r,
                state: state_r,
                pending: pending_r,
                advocated: advocated_r,
                carried: carried_r,
            },
        )
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> UrnColumnsMut<'_, P> {
        UrnColumnsMut {
            n: self.n,
            policy: self.policy,
            options: self.options,
            kind: self.kind,
            rng: self.rng,
            count: self.count,
            nest: self.nest,
            state: self.state,
            pending: self.pending,
            advocated: self.advocated,
            carried: self.carried,
        }
    }

    /// Borrows local row `index` into the shared urn state machine.
    ///
    /// Only valid for urn rows; the callers below check `kind` first.
    fn urn_row(&mut self, index: usize) -> UrnRefMut<'_, P> {
        UrnRefMut {
            rng: &mut self.rng[index],
            count: &mut self.count[index],
            nest: &mut self.nest[index],
            state: &mut self.state[index],
            pending_assessment: &mut self.pending[index],
            n: self.n,
            policy: &self.policy,
            options: self.options,
        }
    }

    /// Local row `index`'s action for `round` — the column counterpart of
    /// [`Agent::choose`](crate::Agent::choose).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn choose(&mut self, index: usize, round: u64) -> Action {
        match self.kind[index] {
            RowKind::Urn => self.urn_row(index).choose(round),
            RowKind::Idler => idler_choose(decode_commitment(self.advocated[index])),
        }
    }

    /// Local row `index`'s observable state — the column counterpart of
    /// [`AnyAgent::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn snapshot(&self, index: usize) -> AgentSnapshot {
        match self.kind[index] {
            RowKind::Urn => AgentSnapshot {
                honest: true,
                role: urn_role(self.state[index]),
                committed: urn_committed(self.nest[index]),
                is_final: self.state[index] == State::Settled,
            },
            RowKind::Idler => AgentSnapshot {
                honest: true,
                role: AgentRole::Passive,
                committed: decode_commitment(self.carried[index]),
                is_final: false,
            },
        }
    }

    /// Local row `index`'s fused round transition — the column
    /// counterpart of [`AnyAgent::observe_choose`], with the identical
    /// observe → snapshot → choose(`round + 1`) ordering (see that
    /// method's docs for why the snapshot sits in the middle).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn observe_choose(
        &mut self,
        index: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        match self.kind[index] {
            RowKind::Urn => {
                let mut row = self.urn_row(index);
                if let Some(outcome) = outcome {
                    row.observe(outcome);
                }
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: urn_role(*row.state),
                    committed: urn_committed(*row.nest),
                    is_final: *row.state == State::Settled,
                };
                let action = row.choose(round + 1);
                (action, snapshot)
            }
            RowKind::Idler => {
                let mut advocated = decode_commitment(self.advocated[index]);
                let mut carried = decode_commitment(self.carried[index]);
                if let Some(outcome) = outcome {
                    idler_observe(&mut advocated, &mut carried, outcome);
                }
                let snapshot = AgentSnapshot {
                    honest: true,
                    role: AgentRole::Passive,
                    committed: carried,
                    is_final: false,
                };
                let action = idler_choose(advocated);
                self.advocated[index] = encode_commitment(advocated);
                self.carried[index] = encode_commitment(carried);
                (action, snapshot)
            }
        }
    }
}

/// A homogeneous colony's agent state as per-algorithm parallel columns,
/// dispatched **once per colony** on the shared algorithm instead of once
/// per ant per round.
#[derive(Debug, Clone)]
pub enum AgentColumns {
    /// Every urn row runs [`SimpleAnt`](crate::SimpleAnt) (one shared
    /// [`UrnOptions`], so the hardened variant batches too).
    Simple(UrnColumns<LinearPolicy>),
    /// Every urn row runs [`AdaptiveAnt`](crate::AdaptiveAnt) with one
    /// shared [`AdaptivePolicy`].
    Adaptive(UrnColumns<AdaptivePolicy>),
}

impl AgentColumns {
    /// `true` if [`gather`](Self::gather) would succeed: every agent is
    /// one shared urn algorithm (equal policy, options, and colony size)
    /// or an [`IdlerAnt`](crate::IdlerAnt).
    #[must_use]
    pub fn eligible(agents: &[AnyAgent]) -> bool {
        plan(agents).is_some()
    }

    /// Gathers a homogeneous (modulo idlers) colony into parallel
    /// columns; `None` for heterogeneous mixes, `Custom` agents, or any
    /// non-urn algorithm.
    #[must_use]
    pub fn gather(agents: &[AnyAgent]) -> Option<Self> {
        Some(match plan(agents)? {
            Plan::Simple { options, n } => AgentColumns::Simple(UrnColumns::gather_with(
                agents,
                n,
                LinearPolicy,
                options,
                |agent| match agent {
                    AnyAgent::Simple(ant) => Some(ant),
                    _ => None,
                },
            )),
            Plan::Adaptive { policy, options, n } => AgentColumns::Adaptive(
                UrnColumns::gather_with(agents, n, policy, options, |agent| match agent {
                    AnyAgent::Adaptive(ant) => Some(ant),
                    _ => None,
                }),
            ),
        })
    }

    /// Writes every row's state back into the source `Vec<AnyAgent>`
    /// (including each ant's RNG stream), making the scalar
    /// representation current again.
    ///
    /// # Panics
    ///
    /// Panics if `agents` does not have the exact shape the table was
    /// gathered from (same length, same variant at every index).
    pub fn scatter_into(&self, agents: &mut [AnyAgent]) {
        match self {
            AgentColumns::Simple(table) => {
                table.scatter_into_with(agents, |agent| match agent {
                    AnyAgent::Simple(ant) => Some(ant),
                    _ => None,
                });
            }
            AgentColumns::Adaptive(table) => {
                table.scatter_into_with(agents, |agent| match agent {
                    AnyAgent::Adaptive(ant) => Some(ant),
                    _ => None,
                });
            }
        }
    }

    /// Number of rows (ants).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AgentColumns::Simple(table) => table.len(),
            AgentColumns::Adaptive(table) => table.len(),
        }
    }

    /// `true` if the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole table as one mutable band (split it with
    /// [`AgentColumnsMut::split_at_mut`]).
    pub fn as_band_mut(&mut self) -> AgentColumnsMut<'_> {
        match self {
            AgentColumns::Simple(table) => AgentColumnsMut::Simple(table.as_band_mut()),
            AgentColumns::Adaptive(table) => AgentColumnsMut::Adaptive(table.as_band_mut()),
        }
    }
}

/// A mutable band over [`AgentColumns`]: the algorithm dispatch happens
/// here, **outside** the executor's per-ant loops — match once, then run
/// the monomorphized [`UrnColumnsMut`] loop.
#[derive(Debug)]
pub enum AgentColumnsMut<'a> {
    /// Band over a [`AgentColumns::Simple`] table.
    Simple(UrnColumnsMut<'a, LinearPolicy>),
    /// Band over a [`AgentColumns::Adaptive`] table.
    Adaptive(UrnColumnsMut<'a, AdaptivePolicy>),
}

impl<'a> AgentColumnsMut<'a> {
    /// Number of rows in the band.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            AgentColumnsMut::Simple(band) => band.len(),
            AgentColumnsMut::Adaptive(band) => band.len(),
        }
    }

    /// `true` if the band is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits the band into disjoint `[0, mid)` and `[mid, len)` halves,
    /// mirroring `slice::split_at_mut`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    #[must_use]
    pub fn split_at_mut(self, mid: usize) -> (AgentColumnsMut<'a>, AgentColumnsMut<'a>) {
        match self {
            AgentColumnsMut::Simple(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Simple(left),
                    AgentColumnsMut::Simple(right),
                )
            }
            AgentColumnsMut::Adaptive(band) => {
                let (left, right) = band.split_at_mut(mid);
                (
                    AgentColumnsMut::Adaptive(left),
                    AgentColumnsMut::Adaptive(right),
                )
            }
        }
    }

    /// Reborrows the band (so it can be split without consuming the
    /// original lifetime).
    pub fn reborrow(&mut self) -> AgentColumnsMut<'_> {
        match self {
            AgentColumnsMut::Simple(band) => AgentColumnsMut::Simple(band.reborrow()),
            AgentColumnsMut::Adaptive(band) => AgentColumnsMut::Adaptive(band.reborrow()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveAnt;
    use crate::agent::Agent;
    use crate::idle::IdlerAnt;
    use crate::optimal::OptimalAnt;
    use crate::simple::SimpleAnt;
    use hh_model::Quality;

    fn simple_mixed(n: usize) -> Vec<AnyAgent> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    IdlerAnt::new().into()
                } else {
                    SimpleAnt::new(n, 100 + i as u64).into()
                }
            })
            .collect()
    }

    /// A deterministic synthetic outcome stream (no environment needed).
    fn synthetic_outcome(round: u64, index: usize) -> Outcome {
        if round == 1 {
            Outcome::Search {
                nest: NestId::candidate(1 + index % 3),
                quality: if index.is_multiple_of(2) {
                    Quality::GOOD
                } else {
                    Quality::BAD
                },
                count: index as u32 % 7,
            }
        } else if round.is_multiple_of(2) {
            Outcome::Recruit {
                nest: NestId::candidate(1 + (index + round as usize) % 3),
                home_count: 5,
            }
        } else {
            Outcome::Go {
                count: (index as u32 + round as u32) % 20,
                quality: None,
            }
        }
    }

    #[test]
    fn eligibility_matches_the_contract() {
        let n = 12;
        assert!(AgentColumns::eligible(&simple_mixed(n)));
        let uniform_adaptive: Vec<AnyAgent> = (0..n)
            .map(|i| AdaptiveAnt::new(n, i as u64).into())
            .collect();
        assert!(AgentColumns::eligible(&uniform_adaptive));
        let all_idlers: Vec<AnyAgent> = (0..n).map(|_| IdlerAnt::new().into()).collect();
        assert!(AgentColumns::eligible(&all_idlers));

        // Mixed algorithms, non-urn agents, custom boxes, and differing
        // options all fall back to the AnyAgent path.
        let mut mixed = simple_mixed(n);
        mixed[0] = AdaptiveAnt::new(n, 0).into();
        assert!(!AgentColumns::eligible(&mixed));
        let mut optimal = simple_mixed(n);
        optimal[0] = OptimalAnt::new().into();
        assert!(!AgentColumns::eligible(&optimal));
        let mut custom = simple_mixed(n);
        custom[0] = AnyAgent::custom(SimpleAnt::new(n, 100));
        assert!(!AgentColumns::eligible(&custom));
        let mut options = simple_mixed(n);
        options[0] = SimpleAnt::with_options(n, 100, UrnOptions::hardened()).into();
        assert!(!AgentColumns::eligible(&options));
    }

    /// Gather → batched rounds → scatter is bit-identical to running the
    /// same rounds on the `Vec<AnyAgent>` directly, RNG streams included.
    #[test]
    fn table_rounds_match_the_agent_vector_exactly() {
        let n = 24;
        let mut scalar = simple_mixed(n);
        let mut tabled = simple_mixed(n);

        // Round 1 choose on both representations.
        let mut table = AgentColumns::gather(&tabled).expect("eligible colony");
        {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            for (index, agent) in scalar.iter_mut().enumerate() {
                assert_eq!(agent.choose(1), band.choose(index, 1), "ant {index}");
            }
        }

        // Rounds 1..=6 through the fused transition: table side.
        for round in 1..=6u64 {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("simple colony must gather into a Simple table");
            };
            for (index, agent) in scalar.iter_mut().enumerate() {
                let outcome = synthetic_outcome(round, index);
                let expected = agent.observe_choose(round, Some(&outcome));
                let got = band.observe_choose(index, round, Some(&outcome));
                assert_eq!(expected, got, "ant {index}, round {round}");
                assert_eq!(band.snapshot(index), agent.snapshot(), "ant {index}");
            }
        }

        // Scatter back and keep going on the plain agent path: the
        // restored ants (streams included) must stay in lockstep.
        table.scatter_into(&mut tabled);
        for round in 7..=10u64 {
            for (index, (a, b)) in scalar.iter_mut().zip(tabled.iter_mut()).enumerate() {
                let outcome = synthetic_outcome(round, index);
                assert_eq!(
                    a.observe_choose(round, Some(&outcome)),
                    b.observe_choose(round, Some(&outcome)),
                    "ant {index}, round {round} after scatter"
                );
            }
        }
    }

    #[test]
    fn bands_split_like_slices() {
        let n = 10;
        let agents = simple_mixed(n);
        let mut table = AgentColumns::gather(&agents).expect("eligible colony");
        assert_eq!(table.len(), n);
        assert!(!table.is_empty());
        let band = table.as_band_mut();
        assert_eq!(band.len(), n);
        let (left, right) = band.split_at_mut(3);
        assert_eq!(left.len(), 3);
        assert_eq!(right.len(), 7);
        let (mid, tail) = right.split_at_mut(4);
        assert_eq!(mid.len(), 4);
        assert_eq!(tail.len(), 3);
    }

    #[test]
    fn all_idler_colony_round_trips() {
        let n = 5;
        let mut agents: Vec<AnyAgent> = (0..n).map(|_| IdlerAnt::new().into()).collect();
        let mut table = AgentColumns::gather(&agents).expect("all-idler colony is eligible");
        {
            let AgentColumnsMut::Simple(mut band) = table.as_band_mut() else {
                panic!("all-idler colony defaults to a Simple table");
            };
            for index in 0..n {
                assert_eq!(band.choose(index, 1), Action::Search);
                let outcome = synthetic_outcome(1, index);
                band.observe_choose(index, 1, Some(&outcome));
            }
        }
        table.scatter_into(&mut agents);
        for (index, agent) in agents.iter_mut().enumerate() {
            // Round 1's search was observed: the idler now advocates it.
            let Outcome::Search { nest, .. } = synthetic_outcome(1, index) else {
                unreachable!()
            };
            assert_eq!(agent.choose(2), Action::recruit_passive(nest));
        }
    }
}
