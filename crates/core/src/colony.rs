//! Colony construction and the cached-census [`Colony`] container.
//!
//! A *colony* is the ordered collection of agents the executor drives —
//! one per ant, indexed by [`AntId`](hh_model::AntId). [`Colony`] stores
//! the agents as one contiguous `Vec<AnyAgent>` (static dispatch, cache
//! friendly) and caches each agent's harness-observable state — honesty,
//! [`AgentRole`], committed nest, finality — in struct-of-arrays form
//! ([`SnapshotColumns`]: four dense
//! parallel columns), maintaining the aggregate [`RoleCensus`]
//! incrementally. [`AgentSnapshot`] is the scalar assemble/disassemble
//! view of one column row. The executor in `hh-sim` refreshes exactly
//! the agents it stepped each round ([`Colony::refresh`]), so census
//! queries are O(1) instead of an O(n) rescan with a dispatch per agent.
//!
//! The free functions build the standard homogeneous colonies (one per
//! algorithm) with per-ant seeds derived deterministically from a single
//! base seed, plus combinators for planting idlers and adversaries.
//!
//! # Examples
//!
//! ```
//! use hh_core::{colony, Agent};
//!
//! let ants = colony::simple(100, 42);
//! assert_eq!(ants.len(), 100);
//! assert!(ants.iter().all(|a| a.label() == "simple"));
//! assert_eq!(ants.census().searching, 100);
//! ```

use hh_model::seeding::{derive_seed, StreamKind};
use hh_model::NestId;

use crate::adaptive::{AdaptiveAnt, AdaptivePolicy};
use crate::agent::{Agent, AgentRole, BoxedAgent};
use crate::any::AnyAgent;
use crate::columns::{ColumnsMut, SnapshotColumns};
use crate::optimal::OptimalAnt;
use crate::quality::QualityAnt;
use crate::simple::{SimpleAnt, UrnOptions};
use crate::spreader::{SpreadStrategy, SpreaderAnt};

/// Counts of honest agents per [`AgentRole`].
///
/// Maintained incrementally by [`Colony`]; the free-standing
/// [`RoleCensus::of`] tallies any agent slice from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoleCensus {
    /// Agents still searching.
    pub searching: usize,
    /// Active (competing/recruiting) agents.
    pub active: usize,
    /// Passive (waiting) agents.
    pub passive: usize,
    /// Final/settled agents.
    pub final_count: usize,
    /// Everything else (adversaries report `Other`).
    pub other: usize,
}

impl RoleCensus {
    /// Tallies the honest agents of a colony from scratch.
    #[must_use]
    pub fn of<A: Agent>(agents: &[A]) -> Self {
        let mut census = RoleCensus::default();
        for agent in agents.iter().filter(|a| a.is_honest()) {
            census.bucket(agent.role(), 1);
        }
        census
    }

    /// Total honest agents tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.searching + self.active + self.passive + self.final_count + self.other
    }

    fn bucket(&mut self, role: AgentRole, delta: isize) {
        let slot = match role {
            AgentRole::Searching => &mut self.searching,
            AgentRole::Active => &mut self.active,
            AgentRole::Passive => &mut self.passive,
            AgentRole::Final => &mut self.final_count,
            _ => &mut self.other,
        };
        *slot = slot.checked_add_signed(delta).expect("census underflow");
    }

    fn add(&mut self, snapshot: &AgentSnapshot) {
        if snapshot.honest {
            self.bucket(snapshot.role, 1);
        }
    }

    fn remove(&mut self, snapshot: &AgentSnapshot) {
        if snapshot.honest {
            self.bucket(snapshot.role, -1);
        }
    }

    /// Folds a signed per-role delta (accumulated off to the side by a
    /// chunked executor pass) into the census.
    ///
    /// # Panics
    ///
    /// Panics if a bucket would underflow — that indicates the delta was
    /// not produced against this census's snapshots.
    pub fn apply_delta(&mut self, delta: &CensusDelta) {
        self.bucket(AgentRole::Searching, delta.searching);
        self.bucket(AgentRole::Active, delta.active);
        self.bucket(AgentRole::Passive, delta.passive);
        self.bucket(AgentRole::Final, delta.final_count);
        self.bucket(AgentRole::Other, delta.other);
    }
}

/// A signed [`RoleCensus`] delta, accumulated per worker during a
/// chunked executor pass and merged at the barrier with
/// [`RoleCensus::apply_delta`] / [`Colony::apply_census_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CensusDelta {
    searching: isize,
    active: isize,
    passive: isize,
    final_count: isize,
    other: isize,
}

impl CensusDelta {
    /// Resets the delta to zero.
    pub fn clear(&mut self) {
        *self = CensusDelta::default();
    }

    /// `true` if the delta changes nothing.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == CensusDelta::default()
    }

    /// Records one agent's snapshot transition, with the same
    /// role/honesty gating [`Colony::refresh`] applies: only flips that
    /// change the census are recorded.
    #[inline]
    pub fn record(&mut self, old: &AgentSnapshot, new: &AgentSnapshot) {
        if new.role == old.role && new.honest == old.honest {
            return;
        }
        if old.honest {
            self.bucket(old.role, -1);
        }
        if new.honest {
            self.bucket(new.role, 1);
        }
    }

    fn bucket(&mut self, role: AgentRole, delta: isize) {
        let slot = match role {
            AgentRole::Searching => &mut self.searching,
            AgentRole::Active => &mut self.active,
            AgentRole::Passive => &mut self.passive,
            AgentRole::Final => &mut self.final_count,
            _ => &mut self.other,
        };
        *slot += delta;
    }
}

/// One agent's harness-observable state, cached by [`Colony`] so census
/// and convergence queries never re-dispatch into the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSnapshot {
    /// [`Agent::is_honest`] at the last refresh (constant for every
    /// built-in agent; `Custom` agents may vary it, and the census/tally
    /// maintenance re-buckets on a flip).
    pub honest: bool,
    /// [`Agent::role`] at the last refresh.
    pub role: AgentRole,
    /// [`Agent::committed_nest`] at the last refresh.
    pub committed: Option<NestId>,
    /// [`Agent::is_final`] at the last refresh.
    pub is_final: bool,
}

/// Builds an [`AgentSnapshot`] from any agent expression via
/// (auto-dereffing) method calls — the **single** definition of the
/// snapshot field list, shared by [`AgentSnapshot::of`] and the
/// `AnyAgent` fused accessors.
macro_rules! snapshot_of {
    ($agent:expr) => {
        $crate::colony::AgentSnapshot {
            honest: $agent.is_honest(),
            role: $agent.role(),
            committed: $agent.committed_nest(),
            is_final: $agent.is_final(),
        }
    };
}
pub(crate) use snapshot_of;

impl AgentSnapshot {
    /// Reads an agent's current observable state.
    #[must_use]
    pub fn of<A: Agent + ?Sized>(agent: &A) -> Self {
        snapshot_of!(agent)
    }
}

/// A colony of agents with incrementally maintained census caches.
///
/// Read access goes through `Deref<Target = [AnyAgent]>` (`len`, `iter`,
/// indexing); mutation goes through the cache-aware methods
/// ([`replace`](Colony::replace), [`push`](Colony::push)) or, for code
/// that drives agents by hand, [`iter_mut`](Colony::iter_mut) /
/// [`agents_mut`](Colony::agents_mut) — which mark the caches stale so
/// the next census query rescans.
///
/// The executor protocol is [`choose`](Colony::choose) /
/// [`observe`](Colony::observe) followed by [`refresh`](Colony::refresh)
/// for every agent whose `choose` ran; that keeps the caches exact
/// without a rescan.
pub struct Colony {
    agents: Vec<AnyAgent>,
    columns: SnapshotColumns,
    census: RoleCensus,
    stale: bool,
}

impl Colony {
    /// An empty colony.
    #[must_use]
    pub fn new() -> Self {
        Self {
            agents: Vec::new(),
            columns: SnapshotColumns::new(),
            census: RoleCensus::default(),
            stale: false,
        }
    }

    /// An empty colony with room for `n` agents.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            agents: Vec::with_capacity(n),
            columns: SnapshotColumns::with_capacity(n),
            census: RoleCensus::default(),
            stale: false,
        }
    }

    /// Appends an agent, updating the caches.
    pub fn push(&mut self, agent: impl Into<AnyAgent>) {
        let agent = agent.into();
        let snapshot = AgentSnapshot::of(&agent);
        self.census.add(&snapshot);
        self.columns.push(snapshot);
        self.agents.push(agent);
    }

    /// Replaces the agent at `index`, updating the caches.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replace(&mut self, index: usize, agent: impl Into<AnyAgent>) {
        let agent = agent.into();
        let snapshot = AgentSnapshot::of(&agent);
        self.census.remove(&self.columns.get(index));
        self.census.add(&snapshot);
        self.columns.set(index, snapshot);
        self.agents[index] = agent;
    }

    /// The agents as a plain slice (also available through `Deref`).
    #[must_use]
    pub fn as_slice(&self) -> &[AnyAgent] {
        &self.agents
    }

    /// Mutable access to the agents for code that drives them by hand
    /// (tests, bespoke loops). Marks the caches stale; they are rebuilt
    /// on the next [`sync`](Colony::sync) or census query.
    pub fn agents_mut(&mut self) -> &mut [AnyAgent] {
        self.stale = true;
        &mut self.agents
    }

    /// Mutably iterates the agents; same staleness contract as
    /// [`agents_mut`](Colony::agents_mut).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, AnyAgent> {
        self.stale = true;
        self.agents.iter_mut()
    }

    /// Rebuilds the caches if external mutation marked them stale.
    pub fn sync(&mut self) {
        if !self.stale {
            return;
        }
        self.columns.clear();
        self.census = RoleCensus::default();
        for agent in &self.agents {
            let snapshot = AgentSnapshot::of(agent);
            self.census.add(&snapshot);
            self.columns.push(snapshot);
        }
        self.stale = false;
    }

    /// The honest-role census. O(1) when the caches are current; falls
    /// back to a scan if external mutation left them stale.
    #[must_use]
    pub fn census(&self) -> RoleCensus {
        if self.stale {
            RoleCensus::of(&self.agents)
        } else {
            self.census
        }
    }

    /// Agent `index`'s cached snapshot, assembled from the columns. Call
    /// [`sync`](Colony::sync) first if the colony was mutated through
    /// [`agents_mut`](Colony::agents_mut).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    #[must_use]
    pub fn snapshot(&self, index: usize) -> AgentSnapshot {
        debug_assert!(!self.stale, "snapshot read while stale; call sync()");
        self.columns.get(index)
    }

    /// Iterates the cached per-agent snapshots in ant order. Same
    /// staleness contract as [`snapshot`](Colony::snapshot).
    pub fn iter_snapshots(&self) -> impl Iterator<Item = AgentSnapshot> + '_ {
        debug_assert!(!self.stale, "snapshots read while stale; call sync()");
        self.columns.iter()
    }

    /// The snapshot cache in its native struct-of-arrays layout, for
    /// column-wise readers (detectors, metrics) and the equivalence
    /// tests. Same staleness contract as [`snapshot`](Colony::snapshot).
    #[must_use]
    pub fn snapshot_columns(&self) -> &SnapshotColumns {
        debug_assert!(!self.stale, "columns read while stale; call sync()");
        &self.columns
    }

    /// Executor hot path: forwards [`Agent::choose`] for ant `index`.
    /// The caller must [`refresh`](Colony::refresh) the agent before the
    /// round's census queries (choosing can change agent state).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn choose(&mut self, index: usize, round: u64) -> hh_model::Action {
        self.agents[index].choose(round)
    }

    /// Executor hot path: forwards [`Agent::observe`] for ant `index`.
    /// Same refresh contract as [`choose`](Colony::choose).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn observe(&mut self, index: usize, round: u64, outcome: &hh_model::Outcome) {
        self.agents[index].observe(round, outcome);
    }

    /// Recomputes agent `index`'s snapshot, folds the change into the
    /// census, and returns `(old, new)` so callers can maintain derived
    /// tallies of their own.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn refresh(&mut self, index: usize) -> (AgentSnapshot, AgentSnapshot) {
        let new = self.agents[index].snapshot();
        let old = self.absorb(index, new);
        (old, new)
    }

    /// The executor's fused per-ant round transition: observe (when the
    /// agent's action ran), choose the next round's action, and refresh
    /// the snapshot — one agent dispatch, one cache visit. Returns the
    /// chosen action plus the `(old, new)` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn observe_choose(
        &mut self,
        index: usize,
        round: u64,
        outcome: Option<&hh_model::Outcome>,
    ) -> (hh_model::Action, (AgentSnapshot, AgentSnapshot)) {
        let (action, new) = self.agents[index].observe_choose(round, outcome);
        let old = self.absorb(index, new);
        (action, (old, new))
    }

    /// Executor parallel hot path: simultaneous mutable access to the
    /// agents and their cached snapshot columns, for splitting into
    /// disjoint ant chunks ([`ColumnsMut::split_at_mut`]).
    ///
    /// Unlike [`agents_mut`](Colony::agents_mut) this does **not** mark
    /// the caches stale: the caller contracts to keep each touched
    /// agent's column row current itself (write the agent's freshly
    /// computed snapshot back into its row) and to fold the resulting
    /// census changes in via
    /// [`apply_census_delta`](Colony::apply_census_delta) before the next
    /// census query.
    pub fn engine_split(&mut self) -> (&mut [AnyAgent], ColumnsMut<'_>) {
        debug_assert!(!self.stale, "engine_split on a stale colony; call sync()");
        (&mut self.agents, self.columns.as_band_mut())
    }

    /// Folds a per-worker [`CensusDelta`] (accumulated against
    /// [`engine_split`](Colony::engine_split) chunks) into the cached
    /// census.
    ///
    /// # Panics
    ///
    /// Panics if a census bucket would underflow.
    pub fn apply_census_delta(&mut self, delta: &CensusDelta) {
        self.census.apply_delta(delta);
    }

    /// Stores agent `index`'s freshly computed snapshot, updating the
    /// census on role changes; returns the previous snapshot.
    #[inline]
    fn absorb(&mut self, index: usize, new: AgentSnapshot) -> AgentSnapshot {
        let old = self.columns.get(index);
        if new != old {
            // Honesty can vary for Custom agents, and the census only
            // counts honest agents — so a flip on either axis re-buckets.
            if new.role != old.role || new.honest != old.honest {
                self.census.remove(&old);
                self.census.add(&new);
            }
            self.columns.set(index, new);
        }
        old
    }
}

impl Default for Colony {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Colony {
    type Target = [AnyAgent];

    fn deref(&self) -> &[AnyAgent] {
        &self.agents
    }
}

impl std::fmt::Debug for Colony {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Colony")
            .field("len", &self.agents.len())
            .field("census", &self.census())
            .finish_non_exhaustive()
    }
}

impl From<Vec<AnyAgent>> for Colony {
    fn from(agents: Vec<AnyAgent>) -> Self {
        let mut columns = SnapshotColumns::with_capacity(agents.len());
        let mut census = RoleCensus::default();
        for agent in &agents {
            let snapshot = AgentSnapshot::of(agent);
            census.add(&snapshot);
            columns.push(snapshot);
        }
        Self {
            agents,
            columns,
            census,
            stale: false,
        }
    }
}

impl From<Vec<BoxedAgent>> for Colony {
    fn from(agents: Vec<BoxedAgent>) -> Self {
        agents.into_iter().map(AnyAgent::Custom).collect()
    }
}

impl FromIterator<AnyAgent> for Colony {
    fn from_iter<I: IntoIterator<Item = AnyAgent>>(iter: I) -> Self {
        Colony::from(iter.into_iter().collect::<Vec<_>>())
    }
}

impl IntoIterator for Colony {
    type Item = AnyAgent;
    type IntoIter = std::vec::IntoIter<AnyAgent>;

    fn into_iter(self) -> Self::IntoIter {
        self.agents.into_iter()
    }
}

impl<'a> IntoIterator for &'a Colony {
    type Item = &'a AnyAgent;
    type IntoIter = std::slice::Iter<'a, AnyAgent>;

    fn into_iter(self) -> Self::IntoIter {
        self.agents.iter()
    }
}

/// Builds a colony of `n` agents from a factory receiving each ant's
/// index and derived private seed.
pub fn from_factory<A, F>(n: usize, base_seed: u64, mut factory: F) -> Colony
where
    A: Into<AnyAgent>,
    F: FnMut(usize, u64) -> A,
{
    (0..n)
        .map(|i| {
            let seed = derive_seed(base_seed, StreamKind::Agent, i as u64);
            factory(i, seed).into()
        })
        .collect()
}

/// A colony running the optimal algorithm (Section 4). The agents are
/// deterministic, so no seed is needed.
#[must_use]
pub fn optimal(n: usize) -> Colony {
    from_factory(n, 0, |_, _| OptimalAnt::new())
}

/// A colony running the paper-faithful simple algorithm (Section 5).
#[must_use]
pub fn simple(n: usize, base_seed: u64) -> Colony {
    from_factory(n, base_seed, |_, seed| SimpleAnt::new(n, seed))
}

/// A simple-algorithm colony with explicit behavioural options.
#[must_use]
pub fn simple_with_options(n: usize, base_seed: u64, options: UrnOptions) -> Colony {
    from_factory(n, base_seed, |_, seed| {
        SimpleAnt::with_options(n, seed, options)
    })
}

/// A colony running the adaptive-rate variant (Section 6).
#[must_use]
pub fn adaptive(n: usize, base_seed: u64) -> Colony {
    adaptive_with_policy(n, base_seed, AdaptivePolicy::standard())
}

/// An adaptive colony with an explicit schedule.
#[must_use]
pub fn adaptive_with_policy(n: usize, base_seed: u64, policy: AdaptivePolicy) -> Colony {
    from_factory(n, base_seed, |_, seed| {
        AdaptiveAnt::with_schedule(n, seed, policy, UrnOptions::paper())
    })
}

/// A colony running the quality-weighted variant (Section 6) with
/// exponent `gamma`.
#[must_use]
pub fn quality(n: usize, base_seed: u64, gamma: f64) -> Colony {
    from_factory(n, base_seed, |_, seed| QualityAnt::new(n, seed, gamma))
}

/// A colony of lower-bound spreaders sharing one strategy (Section 3).
#[must_use]
pub fn spreaders(n: usize, base_seed: u64, strategy: SpreadStrategy) -> Colony {
    from_factory(n, base_seed, |_, seed| SpreaderAnt::new(strategy, seed))
}

/// Replaces the last `count` agents of `colony` with honest idlers
/// ([`IdlerAnt`](crate::IdlerAnt)): live colony members that do no
/// house-hunting work and rely on being carried. The colony size is
/// unchanged; `count` is clamped to the colony size.
pub fn plant_idlers(colony: &mut Colony, count: usize) {
    plant_adversaries(colony, count, |_| crate::IdlerAnt::new());
}

/// Replaces the last `count` agents of `colony` with adversaries built by
/// `factory` (receiving the slot index). The colony size is unchanged;
/// `count` is clamped to the colony size.
pub fn plant_adversaries<A, F>(colony: &mut Colony, count: usize, mut factory: F)
where
    A: Into<AnyAgent>,
    F: FnMut(usize) -> A,
{
    let n = colony.len();
    let count = count.min(n);
    for slot in 0..count {
        let idx = n - count + slot;
        colony.replace(idx, factory(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::BadNestRecruiter;

    #[test]
    fn builders_produce_requested_sizes_and_labels() {
        assert_eq!(optimal(5).len(), 5);
        assert!(optimal(3).iter().all(|a| a.label() == "optimal"));
        assert!(simple(3, 0).iter().all(|a| a.label() == "simple"));
        assert!(adaptive(3, 0).iter().all(|a| a.label() == "adaptive"));
        assert!(quality(3, 0, 1.0).iter().all(|a| a.label() == "quality"));
        assert!(spreaders(3, 0, SpreadStrategy::WaitAtHome)
            .iter()
            .all(|a| a.label() == "spreader-wait"));
    }

    #[test]
    fn builders_use_static_variants_not_custom() {
        for colony in [optimal(3), simple(3, 0), adaptive(3, 0), quality(3, 0, 1.0)] {
            assert!(colony.iter().all(|a| !a.is_custom()));
        }
    }

    #[test]
    fn per_ant_seeds_differ() {
        // Two simple ants from the same colony must not flip identical
        // coins: drive both through the same observations and compare
        // decisions statistically.
        use crate::agent::Agent;
        use hh_model::{NestId, Outcome, Quality};

        let mut colony = from_factory(2, 7, |_, seed| SimpleAnt::new(10, seed));
        for ant in colony.iter_mut() {
            ant.observe(
                1,
                &Outcome::Search {
                    nest: NestId::candidate(1),
                    quality: Quality::GOOD,
                    count: 5,
                },
            );
        }
        let mut agreements = 0;
        let trials = 200;
        let agents = colony.agents_mut();
        for t in 0..trials {
            let (head, tail) = agents.split_at_mut(1);
            let a = head[0].choose(2 + 2 * t);
            let b = tail[0].choose(2 + 2 * t);
            agreements += u32::from(a == b);
        }
        assert!(
            agreements < trials as u32,
            "identical coin streams: seeds not derived per ant"
        );
    }

    #[test]
    fn plant_adversaries_replaces_tail() {
        let mut colony = simple(10, 1);
        plant_adversaries(&mut colony, 3, |_| BadNestRecruiter::new());
        assert_eq!(colony.len(), 10);
        assert_eq!(colony.iter().filter(|a| !a.is_honest()).count(), 3);
        assert!(colony[..7].iter().all(|a| a.is_honest()));
        // The census tracked the replacement: 3 dishonest agents left it.
        assert_eq!(colony.census().total(), 7);
    }

    #[test]
    fn plant_idlers_replaces_tail_with_honest_idlers() {
        let mut colony = simple(10, 1);
        plant_idlers(&mut colony, 4);
        assert_eq!(colony.len(), 10);
        assert!(colony.iter().all(|a| a.is_honest()));
        assert_eq!(colony.iter().filter(|a| a.label() == "idler").count(), 4);
        assert!(colony[..6].iter().all(|a| a.label() == "simple"));
    }

    #[test]
    fn plant_adversaries_clamps_count() {
        let mut colony = simple(2, 1);
        plant_adversaries(&mut colony, 99, |_| BadNestRecruiter::new());
        assert_eq!(colony.len(), 2);
        assert!(colony.iter().all(|a| !a.is_honest()));
    }

    #[test]
    fn census_follows_refresh() {
        use hh_model::{Outcome, Quality};

        let mut colony = simple(4, 3);
        assert_eq!(colony.census().searching, 4);
        colony.observe(
            0,
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::GOOD,
                count: 1,
            },
        );
        let (old, new) = colony.refresh(0);
        assert_eq!(old.role, AgentRole::Searching);
        assert_eq!(new.role, AgentRole::Active);
        assert_eq!(new.committed, Some(NestId::candidate(1)));
        let census = colony.census();
        assert_eq!(census.searching, 3);
        assert_eq!(census.active, 1);
        assert_eq!(census.total(), 4);
    }

    #[test]
    fn external_mutation_marks_stale_and_sync_recovers() {
        use hh_model::{Outcome, Quality};

        let mut colony = simple(3, 5);
        // Drive an agent by hand: the caches go stale but census queries
        // still answer correctly via the fallback scan.
        colony.agents_mut()[0].observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        assert_eq!(colony.census().passive, 1);
        colony.sync();
        assert_eq!(colony.census().passive, 1);
        assert_eq!(colony.snapshot(0).role, AgentRole::Passive);
    }

    #[test]
    fn boxed_colonies_become_custom_agents() {
        let boxed: Vec<BoxedAgent> = vec![
            Box::new(BadNestRecruiter::new()),
            Box::new(crate::IdlerAnt::new()),
        ];
        let colony = Colony::from(boxed);
        assert_eq!(colony.len(), 2);
        assert!(colony.iter().all(AnyAgent::is_custom));
        assert_eq!(colony.census().total(), 1, "only the idler is honest");
    }
}
