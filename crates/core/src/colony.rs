//! Colony construction helpers.
//!
//! A *colony* is the vector of boxed agents the executor drives — one per
//! ant, indexed by [`AntId`](hh_model::AntId). These helpers build the
//! standard homogeneous colonies (one per algorithm) with per-ant seeds
//! derived deterministically from a single base seed, plus a combinator
//! for planting adversaries.
//!
//! # Examples
//!
//! ```
//! use hh_core::colony;
//!
//! let ants = colony::simple(100, 42);
//! assert_eq!(ants.len(), 100);
//! assert!(ants.iter().all(|a| a.label() == "simple"));
//! ```

use hh_model::seeding::{derive_seed, StreamKind};

use crate::adaptive::{AdaptiveAnt, AdaptivePolicy};
use crate::agent::{Agent, BoxedAgent};
use crate::optimal::OptimalAnt;
use crate::quality::QualityAnt;
use crate::simple::{SimpleAnt, UrnOptions};
use crate::spreader::{SpreadStrategy, SpreaderAnt};

/// Builds a colony of `n` agents from a factory receiving each ant's
/// index and derived private seed.
pub fn from_factory<A, F>(n: usize, base_seed: u64, mut factory: F) -> Vec<BoxedAgent>
where
    A: Agent + Send + 'static,
    F: FnMut(usize, u64) -> A,
{
    (0..n)
        .map(|i| {
            let seed = derive_seed(base_seed, StreamKind::Agent, i as u64);
            Box::new(factory(i, seed)) as BoxedAgent
        })
        .collect()
}

/// A colony running the optimal algorithm (Section 4). The agents are
/// deterministic, so no seed is needed.
#[must_use]
pub fn optimal(n: usize) -> Vec<BoxedAgent> {
    from_factory(n, 0, |_, _| OptimalAnt::new())
}

/// A colony running the paper-faithful simple algorithm (Section 5).
#[must_use]
pub fn simple(n: usize, base_seed: u64) -> Vec<BoxedAgent> {
    from_factory(n, base_seed, |_, seed| SimpleAnt::new(n, seed))
}

/// A simple-algorithm colony with explicit behavioural options.
#[must_use]
pub fn simple_with_options(n: usize, base_seed: u64, options: UrnOptions) -> Vec<BoxedAgent> {
    from_factory(n, base_seed, |_, seed| {
        SimpleAnt::with_options(n, seed, options)
    })
}

/// A colony running the adaptive-rate variant (Section 6).
#[must_use]
pub fn adaptive(n: usize, base_seed: u64) -> Vec<BoxedAgent> {
    adaptive_with_policy(n, base_seed, AdaptivePolicy::standard())
}

/// An adaptive colony with an explicit schedule.
#[must_use]
pub fn adaptive_with_policy(n: usize, base_seed: u64, policy: AdaptivePolicy) -> Vec<BoxedAgent> {
    from_factory(n, base_seed, |_, seed| {
        AdaptiveAnt::with_schedule(n, seed, policy, UrnOptions::paper())
    })
}

/// A colony running the quality-weighted variant (Section 6) with
/// exponent `gamma`.
#[must_use]
pub fn quality(n: usize, base_seed: u64, gamma: f64) -> Vec<BoxedAgent> {
    from_factory(n, base_seed, |_, seed| QualityAnt::new(n, seed, gamma))
}

/// A colony of lower-bound spreaders sharing one strategy (Section 3).
#[must_use]
pub fn spreaders(n: usize, base_seed: u64, strategy: SpreadStrategy) -> Vec<BoxedAgent> {
    from_factory(n, base_seed, |_, seed| SpreaderAnt::new(strategy, seed))
}

/// Replaces the last `count` agents of `colony` with honest idlers
/// ([`IdlerAnt`](crate::IdlerAnt)): live colony members that do no
/// house-hunting work and rely on being carried. The colony size is
/// unchanged; `count` is clamped to the colony size.
pub fn plant_idlers(colony: &mut [BoxedAgent], count: usize) {
    plant_adversaries(colony, count, |_| Box::new(crate::IdlerAnt::new()));
}

/// Replaces the last `count` agents of `colony` with adversaries built by
/// `factory` (receiving the slot index). The colony size is unchanged;
/// `count` is clamped to the colony size.
pub fn plant_adversaries<F>(colony: &mut [BoxedAgent], count: usize, mut factory: F)
where
    F: FnMut(usize) -> BoxedAgent,
{
    let n = colony.len();
    let count = count.min(n);
    for slot in 0..count {
        let idx = n - count + slot;
        colony[idx] = factory(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::BadNestRecruiter;

    #[test]
    fn builders_produce_requested_sizes_and_labels() {
        assert_eq!(optimal(5).len(), 5);
        assert!(optimal(3).iter().all(|a| a.label() == "optimal"));
        assert!(simple(3, 0).iter().all(|a| a.label() == "simple"));
        assert!(adaptive(3, 0).iter().all(|a| a.label() == "adaptive"));
        assert!(quality(3, 0, 1.0).iter().all(|a| a.label() == "quality"));
        assert!(spreaders(3, 0, SpreadStrategy::WaitAtHome)
            .iter()
            .all(|a| a.label() == "spreader-wait"));
    }

    #[test]
    fn per_ant_seeds_differ() {
        // Two simple ants from the same colony must not flip identical
        // coins: drive both through the same observations and compare
        // decisions statistically.
        use crate::agent::Agent;
        use hh_model::{NestId, Outcome, Quality};

        let mut colony = simple(2, 7);
        for ant in colony.iter_mut() {
            ant.observe(
                1,
                &Outcome::Search {
                    nest: NestId::candidate(1),
                    quality: Quality::GOOD,
                    count: 5, // p = 0.5 with n = 2? No: n=2 set at build.
                },
            );
        }
        // With n = 2 and count = 5, p clamps to 1 for both — not useful.
        // Rebuild with a larger n for a fair coin.
        let mut colony = from_factory(2, 7, |_, seed| SimpleAnt::new(10, seed));
        for ant in colony.iter_mut() {
            ant.observe(
                1,
                &Outcome::Search {
                    nest: NestId::candidate(1),
                    quality: Quality::GOOD,
                    count: 5,
                },
            );
        }
        let mut agreements = 0;
        let trials = 200;
        for t in 0..trials {
            let a = colony[0].choose(2 + 2 * t);
            let b = colony[1].choose(2 + 2 * t);
            agreements += u32::from(a == b);
        }
        assert!(
            agreements < trials as u32,
            "identical coin streams: seeds not derived per ant"
        );
    }

    #[test]
    fn plant_adversaries_replaces_tail() {
        let mut colony = simple(10, 1);
        plant_adversaries(&mut colony, 3, |_| Box::new(BadNestRecruiter::new()));
        assert_eq!(colony.len(), 10);
        assert_eq!(colony.iter().filter(|a| !a.is_honest()).count(), 3);
        assert!(colony[..7].iter().all(|a| a.is_honest()));
    }

    #[test]
    fn plant_idlers_replaces_tail_with_honest_idlers() {
        let mut colony = simple(10, 1);
        plant_idlers(&mut colony, 4);
        assert_eq!(colony.len(), 10);
        assert!(colony.iter().all(|a| a.is_honest()));
        assert_eq!(colony.iter().filter(|a| a.label() == "idler").count(), 4);
        assert!(colony[..6].iter().all(|a| a.label() == "simple"));
    }

    #[test]
    fn plant_adversaries_clamps_count() {
        let mut colony = simple(2, 1);
        plant_adversaries(&mut colony, 99, |_| Box::new(BadNestRecruiter::new()));
        assert_eq!(colony.len(), 2);
        assert!(colony.iter().all(|a| !a.is_honest()));
    }
}
