//! The optimal `O(log n)` house-hunting algorithm — the paper's
//! "Algorithm 2" (Section 4).
//!
//! Every ant searches once, then runs four-round cycles in lockstep with
//! the whole colony. Each cycle, the ants committed to a *competing* nest:
//!
//! 1. (R1) actively recruit at home;
//! 2. (R2) walk to the nest they ended up advocating and count it;
//! 3. (R3/R4) depending on whether the count grew or shrank, either keep
//!    competing — spending R3 at the nest and R4 checking the home-nest
//!    population — or give up and turn passive.
//!
//! A nest whose population ever *decreases* drops out together with all
//! its ants (the comparison is against the previous cycle's count, which
//! every committed ant shares). At least one nest never decreases in a
//! cycle, and each competing nest drops out with probability ≥ 1/66 per
//! cycle (Lemma 4.2), so a single winner remains after `O(log k)` cycles;
//! its ants then detect `c(home) = c(nest)` at R4, switch to the `final`
//! state, and spend every round recruiting the passive ants, which takes
//! a further `O(log n)` rounds with high probability (Theorem 4.3).
//!
//! ## Schedule
//!
//! Round 1 is the search round; for `r ≥ 2` the cycle phase is
//! `(r − 2) mod 4`, see [`CyclePhase`]. The pseudocode's padding calls
//! (lines 13, 18–19, 28, 35–36, 39, 42) are reproduced exactly: they are
//! what keeps active and passive ants from ever meeting at the home nest
//! until a unique winner exists.
//!
//! ## Faithfulness notes
//!
//! * Case 3 (recruited to a new nest) updates the remembered count to the
//!   R3 population when the ant stays active — the paper's prose ("the ant
//!   updates that count") makes the intent clear even though the
//!   pseudocode omits the assignment; see DESIGN.md.
//! * The algorithm relies on exact synchrony and exact counts. Under the
//!   Section 6 perturbations (noise, delays, crashes) it does not panic —
//!   unexpected observations merely mark the ant derailed and its
//!   behaviour degrades — but it is *expected* to fail; measuring that
//!   fragility is experiment F10–F12's job.

use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole, CyclePhase};

/// The four top-level states of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Round 1: about to search.
    Searching,
    /// Committed to a competing nest, running the active cycle.
    Active,
    /// Committed to a bad or dropped-out nest, waiting to be recruited.
    Passive,
    /// Knows the winning nest; recruits to it every round.
    Final,
}

/// The per-cycle classification made after the R2 population check
/// (Section 4.1's Cases 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Case {
    /// Own nest, population non-decreasing: keep competing.
    One,
    /// Own nest, population decreased: drop out at cycle end.
    Two,
    /// Recruited to a different nest this cycle.
    Three,
}

/// An ant running the optimal `O(log n)` algorithm (the paper's
/// Algorithm 2).
///
/// The agent is fully deterministic: all randomness in its execution comes
/// from the environment (search placement and recruitment pairing).
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, OptimalAnt};
/// use hh_model::Action;
///
/// let mut ant = OptimalAnt::new();
/// // Round 1 is always a search.
/// assert_eq!(ant.choose(1), Action::Search);
/// assert_eq!(ant.committed_nest(), None);
/// ```
#[derive(Debug, Clone)]
pub struct OptimalAnt {
    state: State,
    /// The committed nest (the pseudocode's `nest`), set by the search.
    nest: Option<NestId>,
    /// The latest agreed population of the committed nest (`count`),
    /// in the outcome field width.
    count: u32,
    /// This cycle's R1 recruitment result (`nestt`).
    nestt: Option<NestId>,
    /// This cycle's R2 population reading (`countt`), in the outcome
    /// field width.
    countt: u32,
    /// This cycle's case classification, valid after the R2 observation.
    case: Case,
    /// Deferred transition to `Passive`, applied at cycle end.
    next_state: Option<State>,
    /// Set when an observation was inconsistent with the schedule —
    /// possible only under perturbations of the model.
    derailed: bool,
}

impl OptimalAnt {
    /// Creates an ant in the initial (searching) state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: State::Searching,
            nest: None,
            count: 0,
            nestt: None,
            countt: 0,
            case: Case::One,
            next_state: None,
            derailed: false,
        }
    }

    /// Returns `true` if the ant observed something inconsistent with the
    /// synchronous schedule — impossible in the unperturbed model, expected
    /// under the Section 6 fault/asynchrony perturbations.
    #[must_use]
    pub fn is_derailed(&self) -> bool {
        self.derailed
    }

    /// Returns the ant's last agreed count of its committed nest.
    #[must_use]
    pub fn remembered_count(&self) -> usize {
        self.count as usize
    }

    /// The committed nest, or a placeholder for the impossible case of an
    /// uncommitted post-search ant (kept total to stay panic-free under
    /// perturbations).
    fn nest_or_derail(&mut self) -> NestId {
        match self.nest {
            Some(nest) => nest,
            None => {
                self.derailed = true;
                // No legal action exists without a known nest other than
                // searching again; the executor accepts Search anywhere.
                NestId::candidate(1)
            }
        }
    }

    fn choose_active(&mut self, phase: CyclePhase) -> Action {
        let nest = self.nest_or_derail();
        match phase {
            CyclePhase::R1 => {
                // New cycle: apply any deferred drop-out missed at R4
                // (only reachable under perturbations), reset scratch.
                if let Some(state) = self.next_state.take() {
                    self.state = state;
                    return self.choose_passive(phase);
                }
                self.nestt = None;
                self.case = Case::One;
                Action::recruit_active(nest)
            }
            CyclePhase::R2 => Action::Go(self.nestt.unwrap_or(nest)),
            CyclePhase::R3 => match self.case {
                Case::One | Case::Three => Action::Go(nest),
                Case::Two => Action::recruit_passive(nest),
            },
            CyclePhase::R4 => match self.case {
                Case::One => Action::recruit_passive(nest),
                Case::Two | Case::Three => Action::Go(nest),
            },
        }
    }

    fn choose_passive(&mut self, phase: CyclePhase) -> Action {
        let nest = self.nest_or_derail();
        match phase {
            CyclePhase::R2 => Action::recruit_passive(nest),
            _ => Action::Go(nest),
        }
    }

    fn observe_search(&mut self, outcome: &Outcome) {
        match *outcome {
            Outcome::Search {
                nest,
                quality,
                count,
            } => {
                self.nest = Some(nest);
                self.count = count;
                self.state = if quality.is_good() {
                    State::Active
                } else {
                    State::Passive
                };
            }
            _ => self.derailed = true,
        }
    }

    fn observe_active(&mut self, phase: CyclePhase, outcome: &Outcome) {
        match (phase, outcome) {
            (CyclePhase::R1, Outcome::Recruit { nest, .. }) => {
                self.nestt = Some(*nest);
            }
            (CyclePhase::R2, Outcome::Go { count, .. }) => {
                let own = self.nest;
                let target = self.nestt.or(own);
                self.countt = *count;
                if target == own {
                    if *count >= self.count {
                        // Case 1: still competing; adopt the new count.
                        self.case = Case::One;
                        self.count = *count;
                    } else {
                        // Case 2: the nest shrank; drop out at cycle end.
                        self.case = Case::Two;
                        self.next_state = Some(State::Passive);
                    }
                } else {
                    // Case 3: recruited into a different nest.
                    self.case = Case::Three;
                    self.nest = target;
                }
            }
            (CyclePhase::R3, Outcome::Go { count, .. }) if self.case == Case::Three => {
                if *count < self.countt {
                    // The new nest is dropping out (its committed ants are
                    // at home this round): give up with it.
                    self.next_state = Some(State::Passive);
                } else {
                    // Competing: adopt its population as our agreed count
                    // (see the faithfulness note in the module docs).
                    self.count = *count;
                }
            }
            (CyclePhase::R3, Outcome::Go { .. }) if self.case == Case::One => {
                // Padding round at the nest (line 28): no assignment.
            }
            (CyclePhase::R3, Outcome::Recruit { .. }) if self.case == Case::Two => {
                // Padding recruit(0, ·) (line 35): result ignored.
            }
            (CyclePhase::R4, Outcome::Recruit { home_count, .. }) if self.case == Case::One => {
                if *home_count == self.count {
                    // Everyone at home belongs to this nest: it won.
                    self.state = State::Final;
                }
            }
            (CyclePhase::R4, Outcome::Go { .. }) => {
                // Padding go (lines 36/42); the deferred drop-out below
                // takes effect.
            }
            _ => self.derailed = true,
        }
        if phase == CyclePhase::R4 && self.state != State::Final {
            if let Some(state) = self.next_state.take() {
                self.state = state;
            }
        }
    }

    fn observe_passive(&mut self, phase: CyclePhase, outcome: &Outcome) {
        match (phase, outcome) {
            (CyclePhase::R2, Outcome::Recruit { nest, .. }) => {
                if Some(*nest) != self.nest {
                    // Recruited by a final ant: adopt the winner and join
                    // the final chorus (lines 15–17).
                    self.nest = Some(*nest);
                    self.state = State::Final;
                }
            }
            (_, Outcome::Go { .. }) => {}
            _ => self.derailed = true,
        }
    }
}

impl Default for OptimalAnt {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent for OptimalAnt {
    fn choose(&mut self, round: u64) -> Action {
        let Some(phase) = CyclePhase::of_round(round) else {
            return Action::Search;
        };
        match self.state {
            State::Searching => Action::Search,
            State::Active => self.choose_active(phase),
            State::Passive => self.choose_passive(phase),
            State::Final => Action::recruit_active(self.nest_or_derail()),
        }
    }

    fn observe(&mut self, round: u64, outcome: &Outcome) {
        let Some(phase) = CyclePhase::of_round(round) else {
            self.observe_search(outcome);
            return;
        };
        match self.state {
            State::Searching => self.observe_search(outcome),
            State::Active => self.observe_active(phase, outcome),
            State::Passive => self.observe_passive(phase, outcome),
            State::Final => {
                // Line 21: ⟨nest, ·⟩ := recruit(1, nest). Only another
                // final ant can recruit this one, so the assignment is a
                // fixpoint once a unique winner exists.
                if let Outcome::Recruit { nest, .. } = outcome {
                    self.nest = Some(*nest);
                } else {
                    self.derailed = true;
                }
            }
        }
    }

    fn committed_nest(&self) -> Option<NestId> {
        self.nest
    }

    fn is_final(&self) -> bool {
        self.state == State::Final
    }

    fn label(&self) -> &'static str {
        "optimal"
    }

    fn role(&self) -> AgentRole {
        match self.state {
            State::Searching => AgentRole::Searching,
            State::Active => AgentRole::Active,
            State::Passive => AgentRole::Passive,
            State::Final => AgentRole::Final,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{drive_to_consensus, make_env, step_once};
    use hh_model::{ColonyConfig, Environment, QualitySpec};

    #[test]
    fn round_one_searches() {
        let mut ant = OptimalAnt::new();
        assert_eq!(ant.choose(1), Action::Search);
        assert_eq!(ant.committed_nest(), None);
        assert_eq!(ant.role(), AgentRole::Searching);
        assert!(!ant.is_final());
        assert_eq!(ant.label(), "optimal");
    }

    #[test]
    fn good_search_outcome_activates() {
        let mut ant = OptimalAnt::new();
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(2),
                quality: hh_model::Quality::GOOD,
                count: 5,
            },
        );
        assert_eq!(ant.committed_nest(), Some(NestId::candidate(2)));
        assert_eq!(ant.role(), AgentRole::Active);
        assert_eq!(ant.remembered_count(), 5);
        // Cycle 1 begins with active recruitment.
        assert_eq!(ant.choose(2), Action::recruit_active(NestId::candidate(2)));
    }

    #[test]
    fn bad_search_outcome_goes_passive() {
        let mut ant = OptimalAnt::new();
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: hh_model::Quality::BAD,
                count: 3,
            },
        );
        assert_eq!(ant.role(), AgentRole::Passive);
        // Passive cycle: R1 go, R2 recruit(0), R3 go, R4 go.
        assert_eq!(ant.choose(2), Action::Go(NestId::candidate(1)));
        assert_eq!(ant.choose(3), Action::recruit_passive(NestId::candidate(1)));
        assert_eq!(ant.choose(4), Action::Go(NestId::candidate(1)));
        assert_eq!(ant.choose(5), Action::Go(NestId::candidate(1)));
    }

    #[test]
    fn population_decrease_drops_out_at_cycle_end() {
        let mut ant = OptimalAnt::new();
        let nest = NestId::candidate(1);
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: hh_model::Quality::GOOD,
                count: 10,
            },
        );
        // R1: recruit, no steal.
        ant.choose(2);
        ant.observe(
            2,
            &Outcome::Recruit {
                nest,
                home_count: 10,
            },
        );
        // R2: count dropped from 10 to 4 → Case 2.
        assert_eq!(ant.choose(3), Action::Go(nest));
        ant.observe(
            3,
            &Outcome::Go {
                count: 4,
                quality: None,
            },
        );
        // Still formally active through R3/R4 padding...
        assert_eq!(ant.role(), AgentRole::Active);
        assert_eq!(ant.choose(4), Action::recruit_passive(nest));
        ant.observe(
            4,
            &Outcome::Recruit {
                nest,
                home_count: 1,
            },
        );
        assert_eq!(ant.choose(5), Action::Go(nest));
        ant.observe(
            5,
            &Outcome::Go {
                count: 4,
                quality: None,
            },
        );
        // ...then passive from the next cycle.
        assert_eq!(ant.role(), AgentRole::Passive);
        assert_eq!(ant.choose(6), Action::Go(nest));
    }

    #[test]
    fn equal_home_and_nest_counts_finalize() {
        let mut ant = OptimalAnt::new();
        let nest = NestId::candidate(1);
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: hh_model::Quality::GOOD,
                count: 4,
            },
        );
        ant.choose(2);
        ant.observe(
            2,
            &Outcome::Recruit {
                nest,
                home_count: 4,
            },
        );
        ant.choose(3);
        ant.observe(
            3,
            &Outcome::Go {
                count: 4,
                quality: None,
            },
        );
        ant.choose(4);
        ant.observe(
            4,
            &Outcome::Go {
                count: 4,
                quality: None,
            },
        );
        ant.choose(5);
        // R4: home population equals the nest population → final.
        ant.observe(
            5,
            &Outcome::Recruit {
                nest,
                home_count: 4,
            },
        );
        assert!(ant.is_final());
        assert_eq!(ant.role(), AgentRole::Final);
        // Final ants recruit actively every round.
        for round in 6..10 {
            assert_eq!(ant.choose(round), Action::recruit_active(nest));
        }
    }

    #[test]
    fn recruited_passive_joins_winner() {
        let mut ant = OptimalAnt::new();
        let bad = NestId::candidate(1);
        let winner = NestId::candidate(2);
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest: bad,
                quality: hh_model::Quality::BAD,
                count: 2,
            },
        );
        // Passive cycle: picked up at R2 by a final ant advocating n2.
        ant.choose(2);
        ant.choose(3);
        ant.observe(
            3,
            &Outcome::Recruit {
                nest: winner,
                home_count: 7,
            },
        );
        assert!(ant.is_final());
        assert_eq!(ant.committed_nest(), Some(winner));
        // Remaining padding rounds walk to the new nest, then recruit.
        assert_eq!(ant.choose(4), Action::recruit_active(winner));
    }

    #[test]
    fn solves_single_nest_quickly() {
        let (solved, _env) = drive_to_consensus(
            make_env(8, QualitySpec::all_good(1), 1),
            (0..8)
                .map(|_| Box::new(OptimalAnt::new()) as crate::BoxedAgent)
                .collect(),
            100,
        );
        let (round, winner) = solved.expect("single-nest instance must converge");
        assert_eq!(winner, NestId::candidate(1));
        assert!(
            round <= 6,
            "one nest should finalize in the first cycle, got {round}"
        );
    }

    #[test]
    fn solves_multi_nest_instances() {
        for seed in 0..10 {
            let env = make_env(64, QualitySpec::good_prefix(4, 2), seed);
            let agents = (0..64)
                .map(|_| Box::new(OptimalAnt::new()) as crate::BoxedAgent)
                .collect();
            let (solved, env) = drive_to_consensus(env, agents, 400);
            let (_round, winner) =
                solved.unwrap_or_else(|| panic!("seed {seed}: no consensus within 400 rounds"));
            assert!(
                env.quality_of(winner).unwrap().is_good(),
                "seed {seed}: converged to bad nest {winner}"
            );
        }
    }

    /// Section 4.1's scheduling claim: in R1 rounds (active recruitment),
    /// no passive ant is at the home nest, so active competition is never
    /// polluted — until finals exist, which only happens at the very end.
    #[test]
    fn actives_and_passives_never_meet_before_finals() {
        let config = ColonyConfig::new(48, QualitySpec::good_prefix(6, 3)).seed(5);
        let mut env = Environment::new(&config).unwrap();
        let mut agents: Vec<crate::BoxedAgent> = (0..48)
            .map(|_| Box::new(OptimalAnt::new()) as crate::BoxedAgent)
            .collect();
        for round in 1..=200u64 {
            step_once(&mut env, &mut agents);
            let any_final = agents.iter().any(|a| a.is_final());
            if any_final {
                break;
            }
            if CyclePhase::of_round(round + 1) == Some(CyclePhase::R1) {
                // Next round is a competition round: passive ants must be
                // away from home when it executes. We verify the invariant
                // as locations stand between rounds — passive ants sit at
                // their nests through R4→R1.
                for (idx, agent) in agents.iter().enumerate() {
                    if agent.role() == AgentRole::Passive {
                        let loc = env.location_of(hh_model::AntId::new(idx));
                        assert!(
                            !loc.is_home(),
                            "round {round}: passive ant {idx} at home before R1"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unperturbed_runs_never_derail() {
        let env = make_env(32, QualitySpec::good_prefix(4, 2), 9);
        let agents: Vec<crate::BoxedAgent> = (0..32)
            .map(|_| Box::new(OptimalAnt::new()) as crate::BoxedAgent)
            .collect();
        let (solved, _env) = drive_to_consensus(env, agents, 400);
        assert!(solved.is_some());
    }

    /// Simulates the delay perturbation: choose() is called every round
    /// but observations are randomly skipped. The ant must keep emitting
    /// actions without panicking for the whole horizon.
    #[test]
    fn skipped_observations_never_panic() {
        let nest = NestId::candidate(1);
        for skip_phase in 0..4u64 {
            let mut ant = OptimalAnt::new();
            ant.choose(1);
            ant.observe(
                1,
                &Outcome::Search {
                    nest,
                    quality: hh_model::Quality::GOOD,
                    count: 8,
                },
            );
            for round in 2..100u64 {
                let action = ant.choose(round);
                // Fabricate a matching outcome, except in the skipped
                // phase where the observation is dropped entirely.
                if (round + skip_phase) % 4 == 0 {
                    continue;
                }
                let outcome = match action {
                    Action::Search => Outcome::Search {
                        nest,
                        quality: hh_model::Quality::GOOD,
                        count: 3,
                    },
                    Action::Go(_) => Outcome::Go {
                        count: 5,
                        quality: None,
                    },
                    Action::Recruit {
                        nest: advocated, ..
                    } => Outcome::Recruit {
                        nest: advocated,
                        home_count: 6,
                    },
                };
                ant.observe(round, &outcome);
            }
            // The ant is still in a coherent state: it reports a role and
            // a commitment.
            assert!(ant.committed_nest().is_some());
            let _ = ant.role();
        }
    }

    /// A deferred drop-out missed at R4 (because the observation was
    /// skipped) is applied at the next cycle's R1 instead of lingering.
    #[test]
    fn deferred_dropout_applies_at_next_cycle() {
        let nest = NestId::candidate(1);
        let mut ant = OptimalAnt::new();
        ant.choose(1);
        ant.observe(
            1,
            &Outcome::Search {
                nest,
                quality: hh_model::Quality::GOOD,
                count: 10,
            },
        );
        // Cycle 1: R1 recruit (kept), R2 shows a population drop → Case 2.
        ant.choose(2);
        ant.observe(
            2,
            &Outcome::Recruit {
                nest,
                home_count: 10,
            },
        );
        ant.choose(3);
        ant.observe(
            3,
            &Outcome::Go {
                count: 4,
                quality: None,
            },
        );
        // R3 and R4 observations are lost (delays).
        ant.choose(4);
        ant.choose(5);
        // Next cycle's R1: the pending passive transition must fire, so
        // the ant goes to its nest instead of recruiting.
        assert_eq!(ant.choose(6), Action::Go(nest));
        assert_eq!(ant.role(), AgentRole::Passive);
    }

    #[test]
    fn unexpected_outcome_marks_derailed_without_panicking() {
        let mut ant = OptimalAnt::new();
        ant.choose(1);
        // A Go outcome can never answer a search.
        ant.observe(
            1,
            &Outcome::Go {
                count: 1,
                quality: None,
            },
        );
        assert!(ant.is_derailed());
        // The ant keeps producing *some* action.
        let _ = ant.choose(2);
    }
}
