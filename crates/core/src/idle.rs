//! Idle ants: honest colony members that do no house-hunting work.
//!
//! Field studies (and Afek–Gordon–Sulamy, *Brief Announcement: The Role
//! of Idleness in Ant Colonies*, arXiv:1506.07118) observe that a large
//! fraction of a real colony is idle at any moment: the ants neither
//! search nor recruit, yet the emigration still completes because active
//! recruiters carry them along. [`IdlerAnt`] models exactly that: it
//! makes the mandatory one legal call per round but contributes nothing,
//! waiting passively at home to be transported, and adopts whichever
//! nest the colony carries it to.
//!
//! Unlike a crash-stop fault, an idler is *live* and honest: it is
//! counted by the convergence rules, so an idle-fraction colony mix
//! tests the claim that the working minority can finish the job for
//! everyone (quorum rules are the natural success notion here).

use hh_model::{Action, NestId, Outcome};

use crate::agent::{Agent, AgentRole};

/// An honest ant that does no work: it searches once (round 1 permits
/// nothing else), then waits passively at home forever, adopting
/// whichever nest recruiters carry it to.
///
/// # Examples
///
/// ```
/// use hh_core::{Agent, IdlerAnt};
/// use hh_model::Action;
///
/// let mut ant = IdlerAnt::new();
/// assert_eq!(ant.choose(1), Action::Search);
/// assert!(ant.is_honest());
/// assert_eq!(ant.committed_nest(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdlerAnt {
    /// The nest the idler currently advocates in its passive `recruit`
    /// call (its round-1 discovery, later overwritten by transports).
    /// pub(crate) so `crate::table` can column-pack idler rows.
    pub(crate) advocated: Option<NestId>,
    /// The nest the idler was last carried to, if any.
    pub(crate) carried_to: Option<NestId>,
}

/// The idler's choose rule, shared by the [`Agent`] impl and the
/// struct-of-arrays agent-state table (`crate::table`).
pub(crate) fn idler_choose(advocated: Option<NestId>) -> Action {
    match advocated {
        // Round 1 (or a pre-knowledge fault recovery): searching is
        // the only legal call.
        None => Action::Search,
        Some(nest) => Action::recruit_passive(nest),
    }
}

/// The idler's observe rule over by-reference state, shared by the
/// [`Agent`] impl and the agent-state table.
pub(crate) fn idler_observe(
    advocated: &mut Option<NestId>,
    carried_to: &mut Option<NestId>,
    outcome: &Outcome,
) {
    match outcome {
        Outcome::Search { nest, .. } => {
            if advocated.is_none() {
                *advocated = Some(*nest);
            }
        }
        Outcome::Recruit { nest, .. } => {
            // `nest` is the recruiter's target if this ant was picked
            // up, otherwise our own input echoed back. Adopting it is
            // correct either way, but only a genuine transport counts
            // as a commitment.
            if Some(*nest) != *advocated {
                *carried_to = Some(*nest);
                *advocated = Some(*nest);
            }
        }
        Outcome::Go { .. } => {}
    }
}

impl IdlerAnt {
    /// Creates an idler with no knowledge yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The nest this idler was last transported to, if any.
    #[must_use]
    pub fn carried_to(&self) -> Option<NestId> {
        self.carried_to
    }
}

impl Agent for IdlerAnt {
    fn choose(&mut self, _round: u64) -> Action {
        idler_choose(self.advocated)
    }

    fn observe(&mut self, _round: u64, outcome: &Outcome) {
        idler_observe(&mut self.advocated, &mut self.carried_to, outcome);
    }

    fn committed_nest(&self) -> Option<NestId> {
        // An idler holds no opinion of its own; it is "committed" to
        // wherever the working colony has taken it.
        self.carried_to
    }

    fn is_honest(&self) -> bool {
        true
    }

    fn label(&self) -> &'static str {
        "idler"
    }

    fn role(&self) -> AgentRole {
        AgentRole::Passive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_model::Quality;

    #[test]
    fn searches_until_it_knows_a_nest_then_waits() {
        let mut ant = IdlerAnt::new();
        assert_eq!(ant.choose(1), Action::Search);
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(2),
                quality: Quality::BAD,
                count: 1,
            },
        );
        for round in 2..6 {
            assert_eq!(
                ant.choose(round),
                Action::recruit_passive(NestId::candidate(2))
            );
        }
        assert_eq!(ant.committed_nest(), None, "not yet carried anywhere");
    }

    #[test]
    fn adopts_the_nest_it_is_carried_to() {
        let mut ant = IdlerAnt::new();
        ant.observe(
            1,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 1,
            },
        );
        // Echo of our own input: not a transport.
        ant.observe(
            2,
            &Outcome::Recruit {
                nest: NestId::candidate(1),
                home_count: 5,
            },
        );
        assert_eq!(ant.committed_nest(), None);
        // A recruiter carries us to n3.
        ant.observe(
            3,
            &Outcome::Recruit {
                nest: NestId::candidate(3),
                home_count: 5,
            },
        );
        assert_eq!(ant.committed_nest(), Some(NestId::candidate(3)));
        assert_eq!(ant.carried_to(), Some(NestId::candidate(3)));
        // And now advocates its new home in the passive call.
        assert_eq!(ant.choose(4), Action::recruit_passive(NestId::candidate(3)));
    }

    #[test]
    fn survives_observation_gaps() {
        // Delayed/crashed rounds skip observe entirely; the idler must
        // keep producing legal actions from whatever it knows.
        let mut ant = IdlerAnt::new();
        assert_eq!(ant.choose(5), Action::Search);
        ant.observe(
            6,
            &Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::GOOD,
                count: 2,
            },
        );
        assert_eq!(ant.choose(9), Action::recruit_passive(NestId::candidate(1)));
        assert_eq!(ant.role(), AgentRole::Passive);
    }
}
