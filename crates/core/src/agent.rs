//! The agent abstraction: a probabilistic finite state machine driven by
//! the synchronous executor.
//!
//! Section 2 models each ant as a probabilistic finite state machine that
//! performs unlimited local computation plus exactly one model call per
//! round. [`Agent`] captures that loop from the ant's side:
//!
//! 1. the executor asks the agent to [`choose`](Agent::choose) its single
//!    call for round `r`;
//! 2. after the environment resolves the round, the executor hands the
//!    call's return value back through [`observe`](Agent::observe).
//!
//! Under the fault/asynchrony perturbations of Section 6 a chosen action
//! may be *replaced* by a no-op (crash or delay), in which case `observe`
//! is **not** called for that round. Robust agents therefore must not
//! assume a strict choose/observe alternation; the paper's optimal
//! algorithm is deliberately *not* robust to this (its fragility is one of
//! the paper's points), and derails gracefully instead of panicking.
//!
//! The introspection methods ([`committed_nest`](Agent::committed_nest),
//! [`is_final`](Agent::is_final), [`is_honest`](Agent::is_honest)) are for
//! the measurement harness only — they are *not* part of the formal model
//! and no agent behaviour may depend on another agent's introspection.

use hh_model::{Action, NestId, Outcome};

/// One ant's algorithm: the decision side of the Section 2 state machine.
///
/// Implementations own whatever private randomness they need (the built-in
/// agents hold a seeded [`DrawKey`](hh_model::seeding::DrawKey) and draw
/// each round's coin as a pure keyed hash of the round number), so a
/// colony of agents plus an [`Environment`](hh_model::Environment) is
/// fully deterministic given the construction seeds.
pub trait Agent {
    /// Chooses the single model call for round `round` (1-based; the first
    /// call of an execution has `round == 1`).
    ///
    /// The returned action must be legal for this ant: in round 1 only
    /// [`Action::Search`] is legal, and thereafter `go`/`recruit` may only
    /// name nests this ant knows. The executor replaces illegal actions
    /// with a no-op rather than crashing the run, but doing so is always an
    /// agent bug (or a Byzantine agent probing the sandbox).
    fn choose(&mut self, round: u64) -> Action;

    /// Receives the return value of this round's call.
    ///
    /// Not invoked for rounds in which the agent's action was replaced by
    /// a crash/delay no-op.
    fn observe(&mut self, round: u64, outcome: &Outcome);

    /// The nest this agent is currently committed to, if any — the paper's
    /// "`nest`" variable. Harness introspection only.
    fn committed_nest(&self) -> Option<NestId>;

    /// `true` once the agent has irrevocably settled on its committed nest
    /// (the optimal algorithm's `final` state, or a settled simple agent).
    /// Harness introspection only.
    fn is_final(&self) -> bool {
        false
    }

    /// `false` for adversarial (Byzantine) agents; the harness evaluates
    /// consensus over honest agents only.
    fn is_honest(&self) -> bool {
        true
    }

    /// A short static name for reporting (`"optimal"`, `"simple"`, …).
    fn label(&self) -> &'static str;

    /// The agent's coarse protocol role, for harness metrics (e.g. counting
    /// how many nests are still competing). Harness introspection only.
    fn role(&self) -> AgentRole {
        AgentRole::Other
    }
}

/// Coarse protocol roles reported by [`Agent::role`] for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AgentRole {
    /// Still searching for a first nest.
    Searching,
    /// Committed and actively competing/recruiting for its nest.
    Active,
    /// Committed to a bad or dropped-out nest, waiting to be recruited.
    Passive,
    /// Irrevocably settled (the optimal algorithm's `final` state).
    Final,
    /// Anything else (adversaries, custom agents).
    Other,
}

/// A heap-allocated agent, the unit the executor drives. `Send` so whole
/// colonies can be built inside worker threads of the trial runner.
pub type BoxedAgent = Box<dyn Agent + Send>;

impl Agent for BoxedAgent {
    fn choose(&mut self, round: u64) -> Action {
        (**self).choose(round)
    }

    fn observe(&mut self, round: u64, outcome: &Outcome) {
        (**self).observe(round, outcome);
    }

    fn committed_nest(&self) -> Option<NestId> {
        (**self).committed_nest()
    }

    fn is_final(&self) -> bool {
        (**self).is_final()
    }

    fn is_honest(&self) -> bool {
        (**self).is_honest()
    }

    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn role(&self) -> AgentRole {
        (**self).role()
    }
}

/// The four-round cycle phase used by the optimal algorithm's schedule.
///
/// Round 1 is the one-off search round; rounds `r ≥ 2` cycle through
/// `R1 → R2 → R3 → R4` with `phase = (r − 2) mod 4`. All ants share the
/// same global phase because they all search in round 1 and start cycling
/// together in round 2 — this is the alignment that keeps active and
/// passive ants from meeting mid-competition (Section 4.1).
///
/// # Examples
///
/// ```
/// use hh_core::CyclePhase;
///
/// assert_eq!(CyclePhase::of_round(1), None); // the search round
/// assert_eq!(CyclePhase::of_round(2), Some(CyclePhase::R1));
/// assert_eq!(CyclePhase::of_round(5), Some(CyclePhase::R4));
/// assert_eq!(CyclePhase::of_round(6), Some(CyclePhase::R1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CyclePhase {
    /// Active ants recruit; passive ants are away at their nests.
    R1,
    /// Active ants assess the nest they ended up advocating; passive ants
    /// wait at home to be picked up.
    R2,
    /// Competing-nest ants hold position; freshly dropped ants idle at
    /// home.
    R3,
    /// Competing-nest ants compare home and nest populations.
    R4,
}

impl CyclePhase {
    /// Maps a global round number to its cycle phase; `None` for the
    /// search round (round 1) and the pre-execution round 0.
    #[must_use]
    pub fn of_round(round: u64) -> Option<CyclePhase> {
        if round < 2 {
            return None;
        }
        Some(match (round - 2) % 4 {
            0 => CyclePhase::R1,
            1 => CyclePhase::R2,
            2 => CyclePhase::R3,
            _ => CyclePhase::R4,
        })
    }

    /// Returns `true` if `round` is an active-recruitment round (phase
    /// R1): the rounds the paper's Section 4.2 analysis calls the
    /// competition rounds.
    #[must_use]
    pub fn is_competition_round(round: u64) -> bool {
        Self::of_round(round) == Some(CyclePhase::R1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_cycle_repeats_every_four() {
        assert_eq!(CyclePhase::of_round(0), None);
        assert_eq!(CyclePhase::of_round(1), None);
        let expected = [
            CyclePhase::R1,
            CyclePhase::R2,
            CyclePhase::R3,
            CyclePhase::R4,
        ];
        for cycle in 0..5u64 {
            for (offset, &phase) in expected.iter().enumerate() {
                let round = 2 + cycle * 4 + offset as u64;
                assert_eq!(CyclePhase::of_round(round), Some(phase), "round {round}");
            }
        }
    }

    #[test]
    fn competition_rounds_are_phase_r1() {
        assert!(CyclePhase::is_competition_round(2));
        assert!(CyclePhase::is_competition_round(6));
        assert!(!CyclePhase::is_competition_round(1));
        assert!(!CyclePhase::is_competition_round(3));
    }

    #[test]
    fn boxed_agent_forwards() {
        struct Probe(u32);
        impl Agent for Probe {
            fn choose(&mut self, _round: u64) -> Action {
                self.0 += 1;
                Action::Search
            }
            fn observe(&mut self, _round: u64, _outcome: &Outcome) {
                self.0 += 10;
            }
            fn committed_nest(&self) -> Option<NestId> {
                Some(NestId::candidate(3))
            }
            fn label(&self) -> &'static str {
                "probe"
            }
        }
        let mut boxed: BoxedAgent = Box::new(Probe(0));
        assert_eq!(boxed.choose(1), Action::Search);
        boxed.observe(
            1,
            &Outcome::Go {
                count: 0,
                quality: None,
            },
        );
        assert_eq!(boxed.committed_nest(), Some(NestId::candidate(3)));
        assert!(!boxed.is_final());
        assert!(boxed.is_honest());
        assert_eq!(boxed.label(), "probe");
    }
}
