//! The formal `HouseHunting` problem statement and consensus predicates.
//!
//! > **Problem (Section 2).** An algorithm `A` solves the HouseHunting
//! > problem with `k` nests in `T ∈ ℕ` rounds with probability `1 − δ`,
//! > for `0 < δ ≤ 1`, if with probability `1 − δ`, taken over all
//! > executions of `A`, there exists a nest `i ∈ {1, …, k}` such that
//! > `q(i) = 1` and `ℓ(a, r) = i` for all ants `a` and all rounds
//! > `r ≥ T`.
//!
//! In practice both of the paper's algorithms are evaluated on the
//! *commitment* form of this predicate — all ants agree on (are committed
//! to) one good nest and the agreement is absorbing — because as written
//! neither algorithm parks ants at the nest (Section 4.2's "we consider
//! the algorithm to terminate once all ants have reached the final
//! state"). The physical-location form is additionally achievable with
//! the settlement option of [`UrnOptions`](crate::UrnOptions).
//!
//! This module provides the predicate helpers the harness uses; the full
//! detection machinery (windows, perturbation-aware variants) lives in
//! `hh-sim`.

use hh_model::NestId;

use crate::agent::Agent;

/// Returns the nest every *honest* agent is committed to, if they all
/// agree; `None` if any honest agent is uncommitted or two disagree.
///
/// Adversarial agents ([`Agent::is_honest`]` == false`) are ignored: the
/// problem is only required of the honest colony.
///
/// # Examples
///
/// ```
/// use hh_core::{colony, problem};
///
/// let ants = colony::simple(5, 3);
/// // Nobody has searched yet: no commitment.
/// assert_eq!(problem::honest_consensus(&ants), None);
/// ```
pub fn honest_consensus<A: Agent>(agents: &[A]) -> Option<NestId> {
    let mut consensus: Option<NestId> = None;
    for agent in agents.iter().filter(|a| a.is_honest()) {
        let nest = agent.committed_nest()?;
        match consensus {
            None => consensus = Some(nest),
            Some(existing) if existing == nest => {}
            Some(_) => return None,
        }
    }
    consensus
}

/// Returns `true` if every honest agent reports the final/settled state.
pub fn all_honest_final<A: Agent>(agents: &[A]) -> bool {
    agents.iter().filter(|a| a.is_honest()).all(Agent::is_final)
}

/// Counts honest agents committed to each candidate nest of a `k`-nest
/// environment; index 0 of the result corresponds to nest `n₁`.
pub fn commitment_histogram<A: Agent>(agents: &[A], k: usize) -> Vec<usize> {
    let mut histogram = vec![0usize; k];
    for agent in agents.iter().filter(|a| a.is_honest()) {
        if let Some(nest) = agent.committed_nest() {
            if let Some(idx) = nest.candidate_index() {
                if idx < k {
                    histogram[idx] += 1;
                }
            }
        }
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::BoxedAgent;
    use hh_model::{Action, Outcome};

    struct Stub {
        nest: Option<NestId>,
        honest: bool,
        final_: bool,
    }

    impl Agent for Stub {
        fn choose(&mut self, _round: u64) -> Action {
            Action::Search
        }
        fn observe(&mut self, _round: u64, _outcome: &Outcome) {}
        fn committed_nest(&self) -> Option<NestId> {
            self.nest
        }
        fn is_final(&self) -> bool {
            self.final_
        }
        fn is_honest(&self) -> bool {
            self.honest
        }
        fn label(&self) -> &'static str {
            "stub"
        }
    }

    fn stub(nest: Option<usize>, honest: bool, final_: bool) -> BoxedAgent {
        Box::new(Stub {
            nest: nest.map(NestId::candidate),
            honest,
            final_,
        })
    }

    #[test]
    fn consensus_requires_unanimity() {
        let agents = vec![stub(Some(1), true, false), stub(Some(1), true, false)];
        assert_eq!(honest_consensus(&agents), Some(NestId::candidate(1)));

        let agents = vec![stub(Some(1), true, false), stub(Some(2), true, false)];
        assert_eq!(honest_consensus(&agents), None);

        let agents = vec![stub(Some(1), true, false), stub(None, true, false)];
        assert_eq!(honest_consensus(&agents), None);
    }

    #[test]
    fn adversaries_are_ignored() {
        let agents = vec![
            stub(Some(1), true, false),
            stub(Some(2), false, false), // Byzantine disagreement
            stub(None, false, false),
        ];
        assert_eq!(honest_consensus(&agents), Some(NestId::candidate(1)));
    }

    #[test]
    fn empty_and_all_byzantine_colonies_have_no_consensus_nest() {
        let agents: Vec<BoxedAgent> = vec![];
        assert_eq!(honest_consensus(&agents), None);
        let agents = vec![stub(Some(1), false, false)];
        assert_eq!(honest_consensus(&agents), None);
    }

    #[test]
    fn all_final_respects_honesty() {
        let agents = vec![stub(Some(1), true, true), stub(Some(1), false, false)];
        assert!(all_honest_final(&agents));
        let agents = vec![stub(Some(1), true, true), stub(Some(1), true, false)];
        assert!(!all_honest_final(&agents));
    }

    #[test]
    fn histogram_counts_honest_commitments() {
        let agents = vec![
            stub(Some(1), true, false),
            stub(Some(1), true, false),
            stub(Some(3), true, false),
            stub(Some(2), false, false), // ignored: Byzantine
            stub(None, true, false),     // ignored: uncommitted
        ];
        assert_eq!(commitment_histogram(&agents, 3), vec![2, 0, 1]);
        // Out-of-range nests are dropped rather than panicking.
        assert_eq!(commitment_histogram(&agents, 1), vec![2]);
    }
}
