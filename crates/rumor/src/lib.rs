//! # hh-rumor — randomized rumor spreading on complete graphs
//!
//! The Ω(log n) house-hunting lower bound (Section 3 of *Distributed
//! House-Hunting in Ant Colonies*, PODC 2015) "closely resembles lower
//! bounds for rumor spreading in a complete graph, where the rumor is the
//! location of the chosen nest" — citing Karp, Schindelhauer, Shenker and
//! Vöcking, *Randomized Rumor Spreading* (FOCS 2000). This crate
//! implements that substrate directly so the reproduction can compare the
//! house-hunting spreading curves (experiment F1) against the classical
//! PUSH / PULL / PUSH–PULL processes (experiment F15).
//!
//! In each synchronous round every node calls one uniformly random other
//! node:
//!
//! * **PUSH** — callers that know the rumor transmit it to their callee;
//! * **PULL** — callers that do not know the rumor learn it if their
//!   callee knows it;
//! * **PUSH–PULL** — both at once.
//!
//! Classical results: PUSH informs all `n` nodes in
//! `log₂ n + ln n + O(1)` rounds with high probability (Frieze–Grimmett;
//! Pittel), PULL in `Θ(log n)`, and PUSH–PULL in
//! `log₃ n + O(log log n)` (Karp et al.).
//!
//! # Examples
//!
//! ```
//! use hh_rumor::{spread, Protocol};
//!
//! let result = spread(1_000, Protocol::PushPull, 42);
//! assert!(result.everyone_informed());
//! // PUSH–PULL on 1000 nodes needs only a dozen-odd rounds.
//! assert!(result.rounds < 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The gossip protocol run by every node each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Informed callers push the rumor to their callee.
    Push,
    /// Ignorant callers pull the rumor from an informed callee.
    Pull,
    /// Both directions at once.
    PushPull,
}

impl Protocol {
    /// A short static name for reporting.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Push => "push",
            Protocol::Pull => "pull",
            Protocol::PushPull => "push-pull",
        }
    }
}

/// The trace of one spreading execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpreadResult {
    /// Number of nodes.
    pub n: usize,
    /// Rounds until every node was informed (or the round limit).
    pub rounds: u64,
    /// `history[r]` = number of informed nodes after round `r`;
    /// `history[0] == 1` is the initial state.
    pub history: Vec<usize>,
}

impl SpreadResult {
    /// Returns `true` if the execution ended with all nodes informed.
    #[must_use]
    pub fn everyone_informed(&self) -> bool {
        self.history.last().copied() == Some(self.n)
    }

    /// Returns the number of informed nodes after `round` (0 = initial).
    #[must_use]
    pub fn informed_after(&self, round: usize) -> Option<usize> {
        self.history.get(round).copied()
    }
}

/// Runs one spreading execution to completion on the complete graph
/// `K_n`, starting from a single informed node.
///
/// Deterministic in `(n, protocol, seed)`.
///
/// # Panics
///
/// Panics if `n == 0`, or (internal safety margin) if the process
/// somehow exceeds `64 + 8·(log₂ n + ln n)` rounds.
#[must_use]
pub fn spread(n: usize, protocol: Protocol, seed: u64) -> SpreadResult {
    let cap = 64 + 8 * (theoretical_push_rounds(n).ceil() as u64);
    spread_with_limit(n, protocol, seed, cap).expect("spread exceeded internal safety cap")
}

/// Runs one spreading execution with an explicit round limit; returns
/// `None` if the rumor has not reached everyone within `max_rounds`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn spread_with_limit(
    n: usize,
    protocol: Protocol,
    seed: u64,
    max_rounds: u64,
) -> Option<SpreadResult> {
    assert!(n > 0, "rumor spreading needs at least one node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut informed = vec![false; n];
    informed[0] = true;
    let mut informed_count = 1usize;
    let mut history = vec![1usize];

    let mut round = 0u64;
    while informed_count < n {
        if round >= max_rounds {
            return None;
        }
        round += 1;
        // Each node calls one uniformly random *other* node. Calls are
        // resolved against the state at the start of the round, as in the
        // synchronous gossip model.
        let snapshot = informed.clone();
        for caller in 0..n {
            if n == 1 {
                break;
            }
            let mut callee = rng.random_range(0..n - 1);
            if callee >= caller {
                callee += 1;
            }
            match protocol {
                Protocol::Push => {
                    if snapshot[caller] {
                        informed[callee] = true;
                    }
                }
                Protocol::Pull => {
                    if !snapshot[caller] && snapshot[callee] {
                        informed[caller] = true;
                    }
                }
                Protocol::PushPull => {
                    if snapshot[caller] {
                        informed[callee] = true;
                    }
                    if !snapshot[caller] && snapshot[callee] {
                        informed[caller] = true;
                    }
                }
            }
        }
        informed_count = informed.iter().filter(|&&b| b).count();
        history.push(informed_count);
    }

    Some(SpreadResult {
        n,
        rounds: round,
        history,
    })
}

/// The classical high-probability PUSH completion time,
/// `log₂ n + ln n` (Frieze–Grimmett / Pittel), used as the overlay line
/// in experiment F15.
#[must_use]
pub fn theoretical_push_rounds(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    nf.log2() + nf.ln()
}

/// The classical PUSH–PULL completion time scale, `log₃ n` (Karp et al.),
/// ignoring the `O(log log n)` correction.
#[must_use]
pub fn theoretical_push_pull_rounds(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    (n as f64).ln() / 3f64.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_trivially_done() {
        for protocol in [Protocol::Push, Protocol::Pull, Protocol::PushPull] {
            let result = spread(1, protocol, 0);
            assert_eq!(result.rounds, 0);
            assert!(result.everyone_informed());
            assert_eq!(result.history, vec![1]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = spread(0, Protocol::Push, 0);
    }

    #[test]
    fn history_is_monotone_and_complete() {
        for protocol in [Protocol::Push, Protocol::Pull, Protocol::PushPull] {
            let result = spread(500, protocol, 7);
            assert!(result.everyone_informed(), "{}", protocol.label());
            assert_eq!(result.history.len() as u64, result.rounds + 1);
            assert_eq!(result.history[0], 1);
            for window in result.history.windows(2) {
                assert!(window[1] >= window[0], "informed count decreased");
            }
            assert_eq!(*result.history.last().unwrap(), 500);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = spread(300, Protocol::Push, 5);
        let b = spread(300, Protocol::Push, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn push_matches_classical_bound() {
        // Mean over seeds should be within ±40% of log2 n + ln n.
        let n = 4096;
        let trials = 20;
        let mean: f64 = (0..trials)
            .map(|seed| spread(n, Protocol::Push, seed).rounds as f64)
            .sum::<f64>()
            / f64::from(trials as u32);
        let theory = theoretical_push_rounds(n);
        assert!(
            (mean - theory).abs() / theory < 0.4,
            "push mean {mean} vs theory {theory}"
        );
    }

    #[test]
    fn push_pull_beats_push() {
        let n = 4096;
        let trials = 10;
        let mean = |protocol: Protocol| -> f64 {
            (0..trials)
                .map(|seed| spread(n, protocol, seed).rounds as f64)
                .sum::<f64>()
                / f64::from(trials as u32)
        };
        assert!(
            mean(Protocol::PushPull) < mean(Protocol::Push),
            "push-pull should finish sooner"
        );
    }

    #[test]
    fn rounds_grow_logarithmically() {
        // Quadrupling n should add ≈ 2 + 2·ln 2 ≈ 3.4 rounds, not scale
        // multiplicatively.
        let mean = |n: usize| -> f64 {
            (0..10u64)
                .map(|seed| spread(n, Protocol::Push, seed).rounds as f64)
                .sum::<f64>()
                / 10.0
        };
        let small = mean(1024);
        let large = mean(4096);
        assert!(large > small, "more nodes, more rounds");
        assert!(
            large - small < 8.0,
            "quadrupling n added {} rounds; expected ≈ 3.4",
            large - small
        );
    }

    #[test]
    fn limit_is_respected() {
        assert!(spread_with_limit(10_000, Protocol::Push, 0, 2).is_none());
        assert!(spread_with_limit(16, Protocol::PushPull, 0, 1_000).is_some());
    }

    #[test]
    fn informed_after_reads_history() {
        let result = spread(64, Protocol::Push, 3);
        assert_eq!(result.informed_after(0), Some(1));
        assert_eq!(result.informed_after(result.rounds as usize), Some(64));
        assert_eq!(result.informed_after(9_999), None);
    }

    #[test]
    fn theory_helpers_are_sane() {
        assert_eq!(theoretical_push_rounds(1), 0.0);
        assert!(theoretical_push_rounds(1024) > 16.0);
        assert!(theoretical_push_pull_rounds(1024) < theoretical_push_rounds(1024));
    }

    #[test]
    fn labels() {
        assert_eq!(Protocol::Push.label(), "push");
        assert_eq!(Protocol::Pull.label(), "pull");
        assert_eq!(Protocol::PushPull.label(), "push-pull");
    }
}
