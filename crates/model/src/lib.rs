//! # hh-model — the formal house-hunting environment
//!
//! This crate implements Section 2 of *Distributed House-Hunting in Ant
//! Colonies* (Ghaffari, Musco, Radeva, Lynch; PODC 2015): a synchronous
//! environment with a home nest, `k` candidate nests of quality
//! `q(i) ∈ [0, 1]`, and `n` ants whose only interactions with the world are
//! the three calls `search()`, `go(i)`, and `recruit(b, i)` — exactly one
//! per ant per round. Recruitment is resolved by the paper's centralized
//! pairing process ("Algorithm 1"), implemented verbatim in
//! [`recruitment`].
//!
//! The crate also provides the Section 6 extension knobs:
//!
//! * [`noise`] — unbiased noisy population counts and quality sensing;
//! * [`faults`] — crash-stop schedules and per-round delays (partial
//!   asynchrony), applied by the executor in `hh-sim`.
//!
//! The *algorithms* that solve the house-hunting problem live in the
//! companion crate `hh-core`; the execution harness in `hh-sim`.
//!
//! ## Quick example
//!
//! ```
//! use hh_model::{Action, ColonyConfig, Environment, QualitySpec};
//!
//! // Ten ants, three candidate nests, one good.
//! let config = ColonyConfig::new(10, QualitySpec::single_good(3, 2)).seed(7);
//! let mut env = Environment::new(&config)?;
//!
//! // Round 1: all ants search.
//! let report = env.step(&vec![Action::Search; 10])?;
//! // Ants that found the good nest n₂ could now recruit to it.
//! let found_good = report
//!     .outcomes
//!     .iter()
//!     .filter(|o| matches!(o, hh_model::Outcome::Search { quality, .. } if quality.is_good()))
//!     .count();
//! assert!(found_good <= 10);
//! # Ok::<(), hh_model::ModelError>(())
//! ```
//!
//! ## Model clarifications
//!
//! The implementation resolves a handful of ambiguities in the paper's
//! prose (documented in detail in the repository's `DESIGN.md`):
//! `go(i)`/`recruit(·, i)` legality is *knowledge*-based (visited **or**
//! recruited-to), round 1 therefore only admits `search()`, and
//! self-recruitment pairs are allowed as in Lemma 3.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actions;
mod config;
mod env;
mod error;
mod ids;
mod nest;

pub mod faults;
pub mod noise;
pub mod recruitment;
pub mod seeding;
pub mod util;

pub use actions::{Action, Outcome};
pub use config::{ColonyConfig, QualitySpec};
pub use env::{
    Environment, OutcomeChunk, OutcomeCtx, RecruitmentReport, RelocationChunk, StepReport,
};
pub use error::ModelError;
pub use ids::{AntId, NestId};
pub use nest::{Nest, Quality};
pub use noise::NoiseModel;
