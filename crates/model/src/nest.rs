//! Nests and nest qualities.
//!
//! Every candidate nest `nᵢ` carries a quality `q(i) ∈ Q`. The paper's main
//! analysis uses the binary set `Q = {0, 1}` ("unsuitable" / "suitable");
//! its Section 6 sketches an extension to real-valued qualities in `(0, 1)`.
//! [`Quality`] supports both: it is a validated `f64` in `[0, 1]`, with
//! [`Quality::BAD`] and [`Quality::GOOD`] as the binary endpoints and
//! [`Quality::is_good`] as the binary predicate.

use std::fmt;

use crate::error::ModelError;
use crate::ids::NestId;

/// The quality of a candidate nest: a value in `[0, 1]`.
///
/// In the paper's binary model, quality `0` marks an unsuitable nest and
/// quality `1` a suitable one; the non-binary extension of Section 6 uses
/// the full range.
///
/// # Examples
///
/// ```
/// use hh_model::Quality;
///
/// assert!(Quality::GOOD.is_good());
/// assert!(!Quality::BAD.is_good());
///
/// let q = Quality::new(0.8)?;
/// assert!(q.is_good());
/// assert_eq!(q.value(), 0.8);
/// # Ok::<(), hh_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Quality(f64);

impl Quality {
    /// The unsuitable binary quality, `q = 0`.
    pub const BAD: Quality = Quality(0.0);
    /// The suitable binary quality, `q = 1`.
    pub const GOOD: Quality = Quality(1.0);

    /// The threshold used by [`is_good`](Self::is_good): qualities at or
    /// above `0.5` count as suitable. For binary environments this maps
    /// `0 ↦ bad` and `1 ↦ good` exactly.
    pub const GOOD_THRESHOLD: f64 = 0.5;

    /// Creates a quality from a value in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ModelError::InvalidQuality { value });
        }
        Ok(Self(value))
    }

    /// Returns the quality value in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if this quality counts as "suitable" in the binary
    /// model (at least [`Self::GOOD_THRESHOLD`]).
    #[must_use]
    pub fn is_good(self) -> bool {
        self.0 >= Self::GOOD_THRESHOLD
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl TryFrom<f64> for Quality {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Quality::new(value)
    }
}

/// A candidate nest: an id plus its intrinsic quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nest {
    id: NestId,
    quality: Quality,
}

impl Nest {
    /// Creates a nest record.
    #[must_use]
    pub const fn new(id: NestId, quality: Quality) -> Self {
        Self { id, quality }
    }

    /// Returns the nest's id.
    #[must_use]
    pub const fn id(&self) -> NestId {
        self.id
    }

    /// Returns the nest's intrinsic (noise-free) quality.
    #[must_use]
    pub const fn quality(&self) -> Quality {
        self.quality
    }
}

impl fmt::Display for Nest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(q={})", self.id, self.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_constants() {
        assert_eq!(Quality::BAD.value(), 0.0);
        assert_eq!(Quality::GOOD.value(), 1.0);
        assert!(Quality::GOOD.is_good());
        assert!(!Quality::BAD.is_good());
    }

    #[test]
    fn new_validates_range() {
        assert!(Quality::new(0.0).is_ok());
        assert!(Quality::new(1.0).is_ok());
        assert!(Quality::new(0.5).is_ok());
        assert!(Quality::new(-0.1).is_err());
        assert!(Quality::new(1.1).is_err());
        assert!(Quality::new(f64::NAN).is_err());
    }

    #[test]
    fn try_from_matches_new() {
        assert_eq!(Quality::try_from(0.25).unwrap().value(), 0.25);
        assert!(Quality::try_from(2.0).is_err());
    }

    #[test]
    fn threshold_predicate() {
        assert!(Quality::new(0.5).unwrap().is_good());
        assert!(!Quality::new(0.49).unwrap().is_good());
    }

    #[test]
    fn nest_accessors() {
        let nest = Nest::new(NestId::candidate(2), Quality::GOOD);
        assert_eq!(nest.id(), NestId::candidate(2));
        assert_eq!(nest.quality(), Quality::GOOD);
        assert_eq!(nest.to_string(), "n2(q=1.000)");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Quality::new(0.125).unwrap().to_string(), "0.125");
    }
}
