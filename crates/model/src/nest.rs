//! Nests and nest qualities.
//!
//! Every candidate nest `nᵢ` carries a quality `q(i) ∈ Q`. The paper's main
//! analysis uses the binary set `Q = {0, 1}` ("unsuitable" / "suitable");
//! its Section 6 sketches an extension to real-valued qualities in `(0, 1)`.
//! [`Quality`] supports both: a validated value in `[0, 1]`, with
//! [`Quality::BAD`] and [`Quality::GOOD`] as the binary endpoints and
//! [`Quality::is_good`] as the binary predicate.
//!
//! # Storage width
//!
//! Internally a quality is a single `f32` (the public API stays `f64`):
//! a nest quality only ever feeds threshold comparisons and recruitment
//! probabilities, so ~7 significant decimal digits is far beyond the
//! model's resolution, and the narrow field halves [`Outcome`] traffic in
//! the round hot loop. [`Quality::new`] validates in `f64` and then rounds
//! to the nearest `f32`; the binary endpoints `0.0`/`1.0` and the `0.5`
//! threshold are all exactly representable, so `is_good` classification is
//! never changed by the rounding. Values that are not `f32`-exact (e.g.
//! `0.45`) shift by at most one `f32` ULP (< 6 × 10⁻⁸ in `[0, 1]`), which
//! cannot cross the threshold for any quality further than that from
//! `0.5`.
//!
//! [`Outcome`]: crate::actions::Outcome

use std::fmt;

use crate::error::ModelError;
use crate::ids::NestId;

/// The quality of a candidate nest: a value in `[0, 1]`.
///
/// In the paper's binary model, quality `0` marks an unsuitable nest and
/// quality `1` a suitable one; the non-binary extension of Section 6 uses
/// the full range.
///
/// Stored as an `f32` (see the module docs for the rounding
/// semantics); the constructor and accessor speak `f64` so callers never
/// see the narrow representation except through rounding.
///
/// # Examples
///
/// ```
/// use hh_model::Quality;
///
/// assert!(Quality::GOOD.is_good());
/// assert!(!Quality::BAD.is_good());
///
/// let q = Quality::new(0.8)?;
/// assert!(q.is_good());
/// // `value()` returns the stored f32 widened back to f64: exact for
/// // f32-representable inputs, within one f32 ULP otherwise.
/// assert!((q.value() - 0.8).abs() < 1e-7);
/// assert_eq!(Quality::new(0.5)?.value(), 0.5);
/// # Ok::<(), hh_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Quality(f32);

impl Quality {
    /// The unsuitable binary quality, `q = 0`.
    pub const BAD: Quality = Quality(0.0);
    /// The suitable binary quality, `q = 1`.
    pub const GOOD: Quality = Quality(1.0);

    /// The threshold used by [`is_good`](Self::is_good): qualities at or
    /// above `0.5` count as suitable. For binary environments this maps
    /// `0 ↦ bad` and `1 ↦ good` exactly. (`0.5` is a power of two, so the
    /// threshold is identical in `f32` and `f64`.)
    pub const GOOD_THRESHOLD: f64 = 0.5;

    /// Creates a quality from a value in `[0, 1]`.
    ///
    /// The value is validated in full `f64` precision and then rounded to
    /// the nearest `f32` for storage. Rounding never moves a value out of
    /// `[0, 1]` (the interval endpoints are `f32`-exact) and never flips
    /// [`is_good`](Self::is_good) for values more than one `f32` ULP from
    /// the `0.5` threshold.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ModelError::InvalidQuality { value });
        }
        Ok(Self(value as f32))
    }

    /// Returns the quality value in `[0, 1]` (the stored `f32` widened
    /// losslessly to `f64`).
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0 as f64
    }

    /// Returns `true` if this quality counts as "suitable" in the binary
    /// model (at least [`Self::GOOD_THRESHOLD`]).
    #[must_use]
    pub fn is_good(self) -> bool {
        self.value() >= Self::GOOD_THRESHOLD
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl TryFrom<f64> for Quality {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Quality::new(value)
    }
}

/// A candidate nest: an id plus its intrinsic quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nest {
    id: NestId,
    quality: Quality,
}

impl Nest {
    /// Creates a nest record.
    #[must_use]
    pub const fn new(id: NestId, quality: Quality) -> Self {
        Self { id, quality }
    }

    /// Returns the nest's id.
    #[must_use]
    pub const fn id(&self) -> NestId {
        self.id
    }

    /// Returns the nest's intrinsic (noise-free) quality.
    #[must_use]
    pub const fn quality(&self) -> Quality {
        self.quality
    }
}

impl fmt::Display for Nest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(q={})", self.id, self.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_constants() {
        assert_eq!(Quality::BAD.value(), 0.0);
        assert_eq!(Quality::GOOD.value(), 1.0);
        assert!(Quality::GOOD.is_good());
        assert!(!Quality::BAD.is_good());
    }

    #[test]
    fn new_validates_range() {
        assert!(Quality::new(0.0).is_ok());
        assert!(Quality::new(1.0).is_ok());
        assert!(Quality::new(0.5).is_ok());
        assert!(Quality::new(-0.1).is_err());
        assert!(Quality::new(1.1).is_err());
        assert!(Quality::new(f64::NAN).is_err());
    }

    #[test]
    fn try_from_matches_new() {
        assert_eq!(Quality::try_from(0.25).unwrap().value(), 0.25);
        assert!(Quality::try_from(2.0).is_err());
    }

    #[test]
    fn threshold_predicate() {
        assert!(Quality::new(0.5).unwrap().is_good());
        assert!(!Quality::new(0.49).unwrap().is_good());
    }

    /// The narrowing contract: `f32`-exact model values round-trip
    /// bit-for-bit through the narrow store, and everything else lands
    /// within one `f32` ULP of the `f64` input without ever crossing the
    /// good/bad threshold.
    #[test]
    fn f32_round_trip_against_f64_model_values() {
        // All qualities that actually appear in the registry catalog plus
        // the interval endpoints; the first group is f32-exact.
        for exact in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                Quality::new(exact).unwrap().value(),
                exact,
                "f32-exact value {exact} must round-trip bit-for-bit"
            );
        }
        for inexact in [0.45, 0.49, 0.51, 0.7, 0.8, 0.9] {
            let q = Quality::new(inexact).unwrap();
            let err = (q.value() - inexact).abs();
            assert!(
                err > 0.0 && err < 6e-8,
                "{inexact} should shift by one f32 ULP, shifted by {err}"
            );
            assert_eq!(
                q.is_good(),
                inexact >= Quality::GOOD_THRESHOLD,
                "rounding must not reclassify {inexact}"
            );
            assert!((0.0..=1.0).contains(&q.value()));
        }
    }

    #[test]
    fn narrowing_preserves_ordering() {
        let ladder: Vec<Quality> = [0.0, 0.1, 0.45, 0.5, 0.55, 0.9, 1.0]
            .into_iter()
            .map(|v| Quality::new(v).unwrap())
            .collect();
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn nest_accessors() {
        let nest = Nest::new(NestId::candidate(2), Quality::GOOD);
        assert_eq!(nest.id(), NestId::candidate(2));
        assert_eq!(nest.quality(), Quality::GOOD);
        assert_eq!(nest.to_string(), "n2(q=1.000)");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Quality::new(0.125).unwrap().to_string(), "0.125");
    }
}
