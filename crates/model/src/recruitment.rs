//! The recruitment pairing process — the paper's "Algorithm 1".
//!
//! In every round, all ants that called `recruit(b, i)` are located at the
//! home nest and participate in a centralized pairing run by the
//! environment. The paper stresses that this is "not a distributed
//! algorithm executed by the ants, but just a modeling tool": active
//! recruiters (`b = 1`) pick uniformly random partners, with a uniformly
//! random permutation `P` breaking ties so that no ant is in more than one
//! recruiter/recruited pair.
//!
//! Faithfully to Algorithm 1:
//!
//! * processing follows a uniform random permutation of the participants;
//! * an active ant only attempts to recruit if it has not itself already
//!   been recruited by an earlier ant in the permutation;
//! * the chosen partner is drawn uniformly from *all* participants —
//!   including the recruiter itself, so self-pairs are possible (Lemma 3.1
//!   relies on forced self-recruitment when the home nest holds one ant);
//! * a chosen partner is only matched if it has neither recruited nor been
//!   recruited already.
//!
//! The pairing is exposed publicly so that Lemma 2.1 ("an active recruiter
//! succeeds with probability ≥ 1/16") can be validated by direct
//! Monte-Carlo simulation — see experiment F2.
//!
//! # Examples
//!
//! ```
//! use hh_model::recruitment::{pair_ants, RecruitCall};
//! use hh_model::{AntId, NestId};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let calls = vec![
//!     RecruitCall::new(AntId::new(0), true, NestId::candidate(1)),
//!     RecruitCall::new(AntId::new(1), false, NestId::candidate(2)),
//! ];
//! let mut rng = SmallRng::seed_from_u64(7);
//! let pairing = pair_ants(&calls, &mut rng);
//! // Every participant receives a nest id: either its own input or its
//! // recruiter's input.
//! for idx in 0..calls.len() {
//!     let nest = pairing.assigned_nest(idx);
//!     assert!(nest == calls[idx].nest || nest == calls[0].nest);
//! }
//! ```

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ids::{AntId, NestId};

/// One ant's `recruit(b, i)` call: the participant record handed to the
/// pairing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecruitCall {
    /// The calling ant.
    pub ant: AntId,
    /// The call's `b` argument: `true` for `recruit(1, ·)`.
    pub active: bool,
    /// The call's nest argument `i`.
    pub nest: NestId,
}

impl RecruitCall {
    /// Creates a participant record.
    #[must_use]
    pub const fn new(ant: AntId, active: bool, nest: NestId) -> Self {
        Self { ant, active, nest }
    }
}

/// The result of one round's recruitment pairing.
///
/// Indices throughout refer to positions in the `calls` slice passed to
/// [`pair_ants`], not to ant ids; use [`Pairing::pairs`] for an id-level
/// view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pairing {
    /// `recruited_by[x] = a*` iff `(a*, x) ∈ M`; [`NOT_RECRUITED`]
    /// otherwise. Stored compactly — the pairing is rebuilt every round,
    /// so its arrays are pure memory traffic.
    recruited_by: Vec<u32>,
    /// `succeeded[a] = true` iff `(a, ·) ∈ M`.
    succeeded: Vec<bool>,
    /// The nest id each participant's call returns.
    assigned: Vec<NestId>,
    /// Matched pairs `(recruiter, recruited)` in match order, as ant ids.
    pairs: Vec<(AntId, AntId)>,
    /// The same pairs as call indices, for consumers that need to index
    /// back into the call slice without an ant-id lookup.
    matched: Vec<(u32, u32)>,
}

/// Sentinel for "no recruiter" in the compact `recruited_by` array.
const NOT_RECRUITED: u32 = u32::MAX;

impl Pairing {
    /// Returns the number of participants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// Returns `true` if no ants participated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }

    /// Returns the nest id participant `idx`'s call returns: the
    /// recruiter's input if recruited, the participant's own input
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn assigned_nest(&self, idx: usize) -> NestId {
        self.assigned[idx]
    }

    /// Returns the index of the participant that recruited `idx`, if any.
    /// A self-pair reports the participant's own index.
    #[must_use]
    pub fn recruited_by(&self, idx: usize) -> Option<usize> {
        match self.recruited_by[idx] {
            NOT_RECRUITED => None,
            recruiter => Some(recruiter as usize),
        }
    }

    /// Returns `true` iff participant `idx` recruited successfully, i.e.
    /// `(idx, ·) ∈ M` — the event of Lemma 2.1. Self-pairs count, as they
    /// do in the paper.
    #[must_use]
    pub fn succeeded(&self, idx: usize) -> bool {
        self.succeeded[idx]
    }

    /// Returns `true` iff participant `idx` was recruited by a *different*
    /// participant (informative recruitment: the returned nest id is the
    /// recruiter's, not the participant's own).
    #[must_use]
    pub fn was_recruited_by_other(&self, idx: usize) -> bool {
        let recruiter = self.recruited_by[idx];
        recruiter != NOT_RECRUITED && recruiter as usize != idx
    }

    /// Returns the matched pairs `(recruiter, recruited)` as ant ids, in
    /// match order. Self-pairs appear as `(a, a)`.
    #[must_use]
    pub fn pairs(&self) -> &[(AntId, AntId)] {
        &self.pairs
    }

    /// Returns the matched pairs `(recruiter, recruited)` as **call
    /// indices**, in match order — the zero-lookup companion of
    /// [`pairs`](Self::pairs) for consumers that hold the call slice.
    #[must_use]
    pub fn matched_indices(&self) -> &[(u32, u32)] {
        &self.matched
    }

    /// Returns the number of pairs in the matching `M`.
    #[must_use]
    pub fn matched_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Runs the paper's Algorithm 1 over one round's `recruit` calls.
///
/// Returns the matching and, for each participant, the nest id its call
/// returns. The function is deterministic given `rng`'s state.
#[must_use]
pub fn pair_ants<R: Rng + ?Sized>(calls: &[RecruitCall], rng: &mut R) -> Pairing {
    let mut pairing = Pairing::default();
    let mut perm = Vec::new();
    pair_ants_into(calls, rng, &mut pairing, &mut perm);
    pairing
}

/// [`pair_ants`] into caller-owned buffers: `pairing` and the permutation
/// scratch `perm` are cleared and refilled, so a caller that runs the
/// pairing every round (the executor) allocates nothing after warm-up.
///
/// Draws exactly the same random values in the same order as
/// [`pair_ants`], so the two are interchangeable mid-stream.
pub fn pair_ants_into<R: Rng + ?Sized>(
    calls: &[RecruitCall],
    rng: &mut R,
    pairing: &mut Pairing,
    perm: &mut Vec<u32>,
) {
    let m = calls.len();
    assert!(m < NOT_RECRUITED as usize, "too many recruit participants");
    pairing.recruited_by.clear();
    pairing.recruited_by.resize(m, NOT_RECRUITED);
    pairing.succeeded.clear();
    pairing.succeeded.resize(m, false);
    pairing.pairs.clear();
    pairing.matched.clear();

    // Line 2: process ants in a uniform random permutation P. Passive
    // ants never attempt to recruit (line 3) and their positions in P
    // consume no randomness, so the processing order of the *active*
    // subset — a uniform permutation of that subset — determines the
    // matching exactly as a full-colony permutation would. Shuffling only
    // the actives is therefore the identical stochastic process, at a
    // fraction of the cost when most participants wait passively.
    perm.clear();
    perm.extend(
        calls
            .iter()
            .enumerate()
            .filter(|(_, call)| call.active)
            .map(|(idx, _)| idx as u32),
    );
    perm.shuffle(rng);

    let bound = u128::from(m as u64);
    for &idx in perm.iter() {
        let idx = idx as usize;
        // Line 3: an active ant that has already been recruited by an
        // earlier ant in P does not attempt to recruit.
        if pairing.recruited_by[idx] != NOT_RECRUITED {
            continue;
        }
        // Line 4: choose a uniformly random participant — possibly idx
        // itself. Multiply-shift sampling: divisionless, with residual
        // bias < 2^-32 (as in the shuffle).
        let target = ((u128::from(rng.next_u64()) * bound) >> 64) as usize;
        // Line 5: the target must have neither recruited nor been
        // recruited.
        if pairing.succeeded[target] || pairing.recruited_by[target] != NOT_RECRUITED {
            continue;
        }
        // Line 6: M := M ∪ (idx, target).
        pairing.succeeded[idx] = true;
        pairing.recruited_by[target] = idx as u32;
        pairing.pairs.push((calls[idx].ant, calls[target].ant));
        pairing.matched.push((idx as u32, target as u32));
    }

    // Lines 7–12: each recruited ant receives its recruiter's nest input;
    // everyone else receives its own input.
    pairing.assigned.clear();
    pairing.assigned.extend(
        pairing
            .recruited_by
            .iter()
            .enumerate()
            .map(|(idx, &recruiter)| match recruiter {
                NOT_RECRUITED => calls[idx].nest,
                recruiter => calls[recruiter as usize].nest,
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn call(i: usize, active: bool, nest: usize) -> RecruitCall {
        RecruitCall::new(AntId::new(i), active, NestId::candidate(nest))
    }

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn empty_input_yields_empty_pairing() {
        let pairing = pair_ants(&[], &mut rng(1));
        assert!(pairing.is_empty());
        assert_eq!(pairing.matched_count(), 0);
    }

    #[test]
    fn lone_active_ant_self_recruits() {
        // With a single participant, the only possible target is the ant
        // itself: Lemma 3.1's forced self-recruitment.
        let calls = [call(0, true, 1)];
        let pairing = pair_ants(&calls, &mut rng(2));
        assert_eq!(pairing.len(), 1);
        assert!(pairing.succeeded(0));
        assert_eq!(pairing.recruited_by(0), Some(0));
        assert!(!pairing.was_recruited_by_other(0));
        assert_eq!(pairing.assigned_nest(0), NestId::candidate(1));
        assert_eq!(pairing.pairs(), &[(AntId::new(0), AntId::new(0))]);
    }

    #[test]
    fn lone_passive_ant_is_untouched() {
        let calls = [call(0, false, 3)];
        let pairing = pair_ants(&calls, &mut rng(3));
        assert!(!pairing.succeeded(0));
        assert_eq!(pairing.recruited_by(0), None);
        assert_eq!(pairing.assigned_nest(0), NestId::candidate(3));
    }

    #[test]
    fn passive_ants_never_recruit() {
        let calls: Vec<RecruitCall> = (0..50).map(|i| call(i, false, 1)).collect();
        let pairing = pair_ants(&calls, &mut rng(4));
        assert_eq!(pairing.matched_count(), 0);
        for idx in 0..calls.len() {
            assert!(!pairing.succeeded(idx));
            assert_eq!(pairing.recruited_by(idx), None);
        }
    }

    #[test]
    fn recruited_ants_receive_recruiter_nest() {
        // Many active recruiters to nest 1, many passive waiters on nest 2:
        // every matched waiter must be told nest 1.
        let mut calls: Vec<RecruitCall> = (0..20).map(|i| call(i, true, 1)).collect();
        calls.extend((20..40).map(|i| call(i, false, 2)));
        let pairing = pair_ants(&calls, &mut rng(5));
        assert!(pairing.matched_count() > 0, "some pair should form");
        for idx in 20..40 {
            if pairing.was_recruited_by_other(idx) {
                assert_eq!(pairing.assigned_nest(idx), NestId::candidate(1));
            } else if pairing.recruited_by(idx).is_none() {
                assert_eq!(pairing.assigned_nest(idx), NestId::candidate(2));
            }
        }
    }

    #[test]
    fn matching_is_a_partial_injection() {
        // No ant appears as recruited in two pairs, and no ant that
        // recruited also got recruited by someone else.
        let calls: Vec<RecruitCall> = (0..200).map(|i| call(i, i % 2 == 0, 1 + i % 3)).collect();
        for seed in 0..20 {
            let pairing = pair_ants(&calls, &mut rng(seed));
            let mut recruited_seen = vec![false; calls.len()];
            for &(recruiter, recruited) in pairing.pairs() {
                let (ri, xi) = (recruiter.index(), recruited.index());
                assert!(calls[ri].active, "recruiter must be in S");
                assert!(!recruited_seen[xi], "ant recruited twice");
                recruited_seen[xi] = true;
            }
            // An ant recruited by a *different* ant must not itself have
            // succeeded.
            for idx in 0..calls.len() {
                if pairing.was_recruited_by_other(idx) {
                    assert!(!pairing.succeeded(idx));
                }
            }
        }
    }

    /// Lemma 2.1: an active recruiter succeeds with probability ≥ 1/16
    /// whenever at least two ants are at the home nest. Empirically the
    /// probability is far higher; we check the bound with slack.
    #[test]
    fn lemma_2_1_success_probability() {
        let mut r = rng(6);
        // Worst-ish case: everyone actively recruiting.
        let calls: Vec<RecruitCall> = (0..64).map(|i| call(i, true, 1)).collect();
        let trials = 4_000;
        let successes = (0..trials)
            .filter(|_| pair_ants(&calls, &mut r).succeeded(0))
            .count();
        let p = successes as f64 / f64::from(trials);
        assert!(
            p >= 1.0 / 16.0,
            "success probability {p} below Lemma 2.1 bound"
        );
    }

    /// The pairing must treat participants symmetrically: with everyone
    /// active, each ant's marginal success probability is identical, so
    /// empirical rates for two fixed ants should agree.
    #[test]
    fn pairing_is_exchangeable() {
        let mut r = rng(7);
        let calls: Vec<RecruitCall> = (0..16).map(|i| call(i, true, 1)).collect();
        let trials = 8_000;
        let mut wins = [0u32; 2];
        for _ in 0..trials {
            let pairing = pair_ants(&calls, &mut r);
            wins[0] += u32::from(pairing.succeeded(0));
            wins[1] += u32::from(pairing.succeeded(8));
        }
        let (a, b) = (f64::from(wins[0]), f64::from(wins[1]));
        assert!(
            (a - b).abs() / a.max(b) < 0.15,
            "asymmetric success rates: {a} vs {b}"
        );
    }

    #[test]
    fn into_variant_matches_and_reuses_buffers() {
        let calls: Vec<RecruitCall> = (0..40).map(|i| call(i, i % 2 == 0, 1 + i % 4)).collect();
        let mut pairing = Pairing::default();
        let mut perm = Vec::new();
        for seed in 0..8 {
            let fresh = pair_ants(&calls, &mut rng(seed));
            pair_ants_into(&calls, &mut rng(seed), &mut pairing, &mut perm);
            assert_eq!(fresh, pairing, "seed {seed}: reuse diverged");
        }
        // A shrinking participant set must not leak stale state.
        let fewer: Vec<RecruitCall> = (0..5).map(|i| call(i, true, 1)).collect();
        let fresh = pair_ants(&fewer, &mut rng(99));
        pair_ants_into(&fewer, &mut rng(99), &mut pairing, &mut perm);
        assert_eq!(fresh, pairing);
        assert_eq!(pairing.len(), 5);
    }

    #[test]
    fn deterministic_given_rng_state() {
        let calls: Vec<RecruitCall> = (0..30).map(|i| call(i, i % 3 != 0, 1)).collect();
        let a = pair_ants(&calls, &mut rng(99));
        let b = pair_ants(&calls, &mut rng(99));
        assert_eq!(a, b);
    }
}
