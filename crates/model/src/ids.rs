//! Identifier newtypes for ants and nests.
//!
//! The paper indexes nests as `n₀` (the home nest) and `n₁ … n_k` (the
//! candidate nests), and ants as `a ∈ {0, …, n−1}`. [`NestId`] and [`AntId`]
//! make those two index spaces distinct types so they cannot be confused
//! ([C-NEWTYPE]).
//!
//! # Examples
//!
//! ```
//! use hh_model::{AntId, NestId};
//!
//! let home = NestId::HOME;
//! assert!(home.is_home());
//!
//! let first_candidate = NestId::candidate(1);
//! assert!(!first_candidate.is_home());
//! assert_eq!(first_candidate.candidate_index(), Some(0));
//!
//! let ant = AntId::new(7);
//! assert_eq!(ant.index(), 7);
//! ```

use std::fmt;

/// The identity of a single ant, in `0..n`.
///
/// Stored as a `u32` so id-dense structures (recruitment calls, pairing
/// tables) stay compact in the executor's hot path; colonies are bounded
/// at `u32::MAX` ants, far beyond any simulated scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AntId(u32);

impl AntId {
    /// Creates an ant id from its index in the colony.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (colonies are bounded).
    #[must_use]
    pub const fn new(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "ant index out of range");
        Self(index as u32)
    }

    /// Returns the ant's index in the colony, in `0..n`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AntId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<AntId> for usize {
    fn from(id: AntId) -> usize {
        id.index()
    }
}

/// The identity of a nest: the home nest `n₀` or a candidate `n₁ … n_k`.
///
/// Internally nest `i` is stored as the raw index `i` (as a compact
/// `u32`), matching the paper's `ℓ(a, r) ∈ {0, 1, …, k}` convention where
/// `0` is the home nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NestId(u32);

impl NestId {
    /// The home nest, `n₀`.
    pub const HOME: NestId = NestId(0);

    /// Creates the id of candidate nest `nᵢ` from its **1-based** index
    /// `i ∈ {1, …, k}`, matching the paper's numbering.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` (the home nest is [`NestId::HOME`], not a
    /// candidate) or if `i` exceeds `u32::MAX`.
    #[must_use]
    pub const fn candidate(i: usize) -> Self {
        assert!(
            i != 0,
            "candidate nest indices start at 1; 0 is the home nest"
        );
        assert!(i <= u32::MAX as usize, "nest index out of range");
        Self(i as u32)
    }

    /// Creates a nest id from a raw index in `{0, …, k}`, where `0` is home.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds `u32::MAX` (nest counts are bounded).
    #[must_use]
    pub const fn from_raw(raw: usize) -> Self {
        assert!(raw <= u32::MAX as usize, "nest index out of range");
        Self(raw as u32)
    }

    /// Returns the raw index in `{0, …, k}` (`0` = home).
    #[must_use]
    pub const fn raw(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the home nest `n₀`.
    #[must_use]
    pub const fn is_home(self) -> bool {
        self.0 == 0
    }

    /// Returns the **0-based** candidate index (`nᵢ ↦ i − 1`), or `None`
    /// for the home nest. Handy for indexing per-candidate arrays.
    #[must_use]
    pub const fn candidate_index(self) -> Option<usize> {
        match self.0 {
            0 => None,
            i => Some(i as usize - 1),
        }
    }
}

impl fmt::Display for NestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_home() {
            write!(f, "home")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl From<NestId> for usize {
    fn from(id: NestId) -> usize {
        id.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ant_id_round_trips() {
        let id = AntId::new(12);
        assert_eq!(id.index(), 12);
        assert_eq!(usize::from(id), 12);
        assert_eq!(id.to_string(), "a12");
    }

    #[test]
    fn home_nest_is_zero() {
        assert!(NestId::HOME.is_home());
        assert_eq!(NestId::HOME.raw(), 0);
        assert_eq!(NestId::HOME.candidate_index(), None);
        assert_eq!(NestId::HOME.to_string(), "home");
    }

    #[test]
    fn candidate_indices_are_one_based() {
        let n3 = NestId::candidate(3);
        assert!(!n3.is_home());
        assert_eq!(n3.raw(), 3);
        assert_eq!(n3.candidate_index(), Some(2));
        assert_eq!(n3.to_string(), "n3");
    }

    #[test]
    #[should_panic(expected = "candidate nest indices start at 1")]
    fn candidate_zero_panics() {
        let _ = NestId::candidate(0);
    }

    #[test]
    fn from_raw_round_trips() {
        for raw in 0..5 {
            assert_eq!(NestId::from_raw(raw).raw(), raw);
        }
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NestId::HOME < NestId::candidate(1));
        assert!(AntId::new(0) < AntId::new(1));
    }
}
