//! Fault and asynchrony perturbations — the Section 6 "fault tolerance"
//! and "asynchrony" extensions.
//!
//! The model of Section 2 requires every ant to make exactly one call per
//! round, so a fault cannot simply remove an ant from the execution.
//! Instead, a faulty or delayed ant takes a *location-preserving no-op*:
//!
//! * at a candidate nest it calls `go(current)` (stays put);
//! * at the home nest it calls `recruit(0, j)` for some known nest `j`
//!   (waits passively — it may still be picked up and carried by a
//!   recruiter, like a real transported ant);
//! * if it knows no nest yet (a round-1 fault) it searches, the only legal
//!   call.
//!
//! Two perturbation plans are provided:
//!
//! * [`CrashPlan`] — permanent crash-stop faults with a per-ant crash
//!   round;
//! * [`DelayPlan`] — independent per-(ant, round) delays modelling a
//!   partially synchronous execution: a delayed ant misses its intended
//!   step and its algorithm sees no observation for the round.
//!
//! The plans are *data*; they are applied by the executor in `hh-sim`,
//! keeping the environment itself faithful to Section 2.

use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::actions::Action;
use crate::env::Environment;
use crate::ids::{AntId, NestId};
use crate::seeding::{derive_seed, splitmix64, StreamKind};

/// Where a crashed ant comes to rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrashStyle {
    /// The ant freezes wherever it is: at a nest it stays at the nest; at
    /// home it idles passively (and may still be transported).
    #[default]
    InPlace,
    /// The ant walks home and idles there passively forever. Models ants
    /// that stop working but remain in the colony.
    AtHome,
}

/// A permanent crash-stop schedule: each ant optionally has a round from
/// which it stops executing its algorithm.
///
/// # Examples
///
/// ```
/// use hh_model::faults::{CrashPlan, CrashStyle};
/// use hh_model::AntId;
///
/// // 10% of a 100-ant colony crashes at round 5.
/// let plan = CrashPlan::fraction(100, 0.1, 5, CrashStyle::InPlace, 7);
/// assert_eq!(plan.crashed_ants().count(), 10);
/// let victim = plan.crashed_ants().next().unwrap();
/// assert!(!plan.is_crashed(victim, 4));
/// assert!(plan.is_crashed(victim, 5));
/// assert!(plan.is_crashed(victim, 500));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    crash_round: Vec<Option<u64>>,
    style: CrashStyle,
}

impl CrashPlan {
    /// A plan with no crashes for a colony of `n` ants.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            crash_round: vec![None; n],
            style: CrashStyle::default(),
        }
    }

    /// Crashes a uniformly random `fraction` of the colony (rounded down)
    /// at round `round`. The victim set is determined by `seed`.
    #[must_use]
    pub fn fraction(n: usize, fraction: f64, round: u64, style: CrashStyle, seed: u64) -> Self {
        let count = ((n as f64) * fraction.clamp(0.0, 1.0)).floor() as usize;
        let mut ants: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, StreamKind::Crash, 0));
        ants.shuffle(&mut rng);
        let mut crash_round = vec![None; n];
        for &victim in ants.iter().take(count) {
            crash_round[victim] = Some(round);
        }
        Self { crash_round, style }
    }

    /// Builds a plan from explicit per-ant crash rounds.
    #[must_use]
    pub fn from_schedule(crash_round: Vec<Option<u64>>, style: CrashStyle) -> Self {
        Self { crash_round, style }
    }

    /// Returns `true` if `ant` has crashed by round `round` (crash rounds
    /// are inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range for the plan.
    #[must_use]
    #[inline]
    pub fn is_crashed(&self, ant: AntId, round: u64) -> bool {
        matches!(self.crash_round[ant.index()], Some(at) if round >= at)
    }

    /// Returns the crash style.
    #[must_use]
    pub fn style(&self) -> CrashStyle {
        self.style
    }

    /// Returns the ants that ever crash, in id order.
    pub fn crashed_ants(&self) -> impl Iterator<Item = AntId> + '_ {
        self.crash_round
            .iter()
            .enumerate()
            .filter_map(|(idx, at)| at.map(|_| AntId::new(idx)))
    }

    /// Returns `true` if the plan contains no crashes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crash_round.iter().all(Option::is_none)
    }
}

/// Independent per-(ant, round) delays: with probability `prob` an ant
/// misses its intended action for the round and takes the no-op instead.
///
/// Delays are drawn by hashing `(seed, ant, round)`, so the plan is pure
/// data — no state, and a given `(ant, round)` is delayed or not
/// irrespective of query order.
///
/// # Examples
///
/// ```
/// use hh_model::faults::DelayPlan;
/// use hh_model::AntId;
///
/// let plan = DelayPlan::new(0.25, 3);
/// // Pure: repeated queries agree.
/// let d = plan.is_delayed(AntId::new(4), 17);
/// assert_eq!(d, plan.is_delayed(AntId::new(4), 17));
///
/// let never = DelayPlan::never();
/// assert!(!never.is_delayed(AntId::new(0), 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPlan {
    prob: f64,
    seed: u64,
}

impl DelayPlan {
    /// Creates a plan delaying each (ant, round) independently with
    /// probability `prob` (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(prob: f64, seed: u64) -> Self {
        Self {
            prob: prob.clamp(0.0, 1.0),
            seed: derive_seed(seed, StreamKind::Delay, 0),
        }
    }

    /// A plan that never delays.
    #[must_use]
    pub fn never() -> Self {
        Self { prob: 0.0, seed: 0 }
    }

    /// Returns the per-step delay probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Returns `true` if `ant` is delayed in `round`.
    #[must_use]
    #[inline]
    pub fn is_delayed(&self, ant: AntId, round: u64) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        if self.prob >= 1.0 {
            return true;
        }
        let h = splitmix64(
            self.seed ^ splitmix64(ant.index() as u64) ^ splitmix64(round.wrapping_mul(0x9E37)),
        );
        // Compare the top 53 bits against the probability.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.prob
    }
}

impl Default for DelayPlan {
    fn default() -> Self {
        Self::never()
    }
}

/// Builds the location-preserving no-op action for a faulty or delayed ant
/// given the current environment state.
///
/// # Panics
///
/// Panics if `ant` is out of range for the environment.
#[must_use]
pub fn noop_action(env: &Environment, ant: AntId, style: CrashStyle) -> Action {
    let first_known = env.first_known(ant);
    match style {
        CrashStyle::InPlace => in_place_noop(env.location_of(ant), first_known),
        // Walking home first, the ant then takes the stay-at-home no-op.
        CrashStyle::AtHome => in_place_noop(NestId::HOME, first_known),
    }
}

/// The in-place location-preserving no-op given an ant's location and
/// lowest known nest — the **single** definition of the no-op
/// semantics, shared by [`noop_action`] and the chunked executor
/// sandbox ([`RelocationChunk::noop_in_place`]), so the serial and
/// chunked paths cannot drift apart.
///
/// [`RelocationChunk::noop_in_place`]: crate::RelocationChunk::noop_in_place
pub(crate) fn in_place_noop(location: NestId, first_known: Option<NestId>) -> Action {
    if !location.is_home() {
        return Action::Go(location);
    }
    match first_known {
        Some(nest) => Action::recruit_passive(nest),
        // Round-1 fault: searching is the only legal call.
        None => Action::Search,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ColonyConfig, QualitySpec};

    #[test]
    fn empty_plan_never_crashes() {
        let plan = CrashPlan::none(5);
        assert!(plan.is_empty());
        for a in 0..5 {
            assert!(!plan.is_crashed(AntId::new(a), 100));
        }
        assert_eq!(plan.crashed_ants().count(), 0);
    }

    #[test]
    fn fraction_selects_expected_count() {
        let plan = CrashPlan::fraction(200, 0.25, 10, CrashStyle::InPlace, 1);
        assert_eq!(plan.crashed_ants().count(), 50);
        assert!(!plan.is_empty());
    }

    #[test]
    fn crash_is_permanent_and_round_inclusive() {
        let plan = CrashPlan::from_schedule(vec![Some(3), None], CrashStyle::AtHome);
        let victim = AntId::new(0);
        assert!(!plan.is_crashed(victim, 2));
        assert!(plan.is_crashed(victim, 3));
        assert!(plan.is_crashed(victim, u64::MAX));
        assert!(!plan.is_crashed(AntId::new(1), u64::MAX));
        assert_eq!(plan.style(), CrashStyle::AtHome);
    }

    #[test]
    fn fraction_is_deterministic_per_seed() {
        let a = CrashPlan::fraction(100, 0.1, 1, CrashStyle::InPlace, 5);
        let b = CrashPlan::fraction(100, 0.1, 1, CrashStyle::InPlace, 5);
        let c = CrashPlan::fraction(100, 0.1, 1, CrashStyle::InPlace, 6);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should pick different victims");
    }

    #[test]
    fn delay_plan_edge_probabilities() {
        let never = DelayPlan::new(0.0, 9);
        let always = DelayPlan::new(1.0, 9);
        for r in 0..20 {
            assert!(!never.is_delayed(AntId::new(0), r));
            assert!(always.is_delayed(AntId::new(0), r));
        }
        assert!(!DelayPlan::default().is_delayed(AntId::new(3), 3));
    }

    #[test]
    fn delay_rate_matches_probability() {
        let plan = DelayPlan::new(0.3, 42);
        let mut delayed = 0u32;
        let total = 20_000u32;
        for ant in 0..200usize {
            for round in 0..100u64 {
                delayed += u32::from(plan.is_delayed(AntId::new(ant), round));
            }
        }
        let rate = f64::from(delayed) / f64::from(total);
        assert!(
            (0.27..=0.33).contains(&rate),
            "delay rate {rate} far from 0.3"
        );
    }

    #[test]
    fn delay_plan_clamps_probability() {
        assert_eq!(DelayPlan::new(7.0, 0).probability(), 1.0);
        assert_eq!(DelayPlan::new(-3.0, 0).probability(), 0.0);
    }

    #[test]
    fn noop_action_respects_location_and_knowledge() {
        let config = ColonyConfig::new(2, QualitySpec::all_good(2)).seed(1);
        let mut env = Environment::new(&config).unwrap();
        let a0 = AntId::new(0);

        // Round 0: nobody knows anything — the no-op must be a search.
        assert_eq!(noop_action(&env, a0, CrashStyle::InPlace), Action::Search);
        assert_eq!(noop_action(&env, a0, CrashStyle::AtHome), Action::Search);

        env.step(&[Action::Search, Action::Search]).unwrap();
        let loc = env.location_of(a0);
        // At a candidate nest: in-place means stay, at-home means walk back
        // and wait.
        assert_eq!(noop_action(&env, a0, CrashStyle::InPlace), Action::Go(loc));
        match noop_action(&env, a0, CrashStyle::AtHome) {
            Action::Recruit {
                active: false,
                nest,
            } => assert!(!nest.is_home()),
            other => panic!("expected passive recruit, got {other:?}"),
        }
    }
}
