//! Observation noise: the Section 6 "approximate counting and nest
//! assessment" extension.
//!
//! Real Temnothorax ants estimate nest population from encounter rates and
//! nest quality from imperfect sensing; Section 6 of the paper argues that
//! Algorithm 3 should tolerate *unbiased* noisy estimates. This module
//! provides the noise channels the environment applies to every count and
//! quality an ant observes:
//!
//! * [`CountNoise`] perturbs population counts. All built-in variants are
//!   unbiased (`E[observed] = true`, up to integer rounding), matching the
//!   paper's "unbiased estimators" assumption.
//! * [`QualityNoise`] perturbs quality observations, modelling assessment
//!   error ("nest assessments by an individual ant are not always precise").
//!
//! # Examples
//!
//! ```
//! use hh_model::noise::{CountNoise, NoiseModel, QualityNoise};
//!
//! // Exact observations (the default model of Section 2):
//! let exact = NoiseModel::default();
//! assert!(matches!(exact.count, CountNoise::Exact));
//!
//! // Section 6 perturbations:
//! let noisy = NoiseModel {
//!     count: CountNoise::multiplicative(0.3)?,
//!     quality: QualityNoise::flip(0.05)?,
//! };
//! # Ok::<(), hh_model::ModelError>(())
//! ```

use rand::{Rng, RngExt};

use crate::error::ModelError;
use crate::nest::Quality;

/// Noise applied to every population count an ant observes.
///
/// Each observation draws independent noise; two ants observing the same
/// nest in the same round may perceive different counts, as they would in
/// nature.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum CountNoise {
    /// Report the exact count (the baseline model).
    #[default]
    Exact,
    /// Multiply the count by `exp(N(−σ²/2, σ²))`, a log-normal factor with
    /// unit mean, then round to the nearest integer. `sigma` controls the
    /// relative error; `σ = 0.3` gives roughly ±30 % typical error.
    Multiplicative {
        /// Standard deviation of the underlying normal, `σ ≥ 0`.
        sigma: f64,
    },
    /// Multiply the count by a uniform factor in `[1 − delta, 1 + delta]`
    /// (unit mean), then round. Bounded support makes this the gentlest
    /// perturbation.
    UniformRelative {
        /// Half-width of the relative error, `0 ≤ delta ≤ 1`.
        delta: f64,
    },
    /// Encounter-rate sampling: observe `Binomial(count, p) / p`, rounded.
    /// Models an ant that meets each resident independently with
    /// probability `p` and scales up — an unbiased estimator whose variance
    /// grows as `p` shrinks.
    Subsample {
        /// Per-resident encounter probability, `0 < p ≤ 1`.
        p: f64,
    },
}

impl CountNoise {
    /// Creates unbiased log-normal multiplicative noise.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `sigma` is negative or NaN
    /// (the closest existing validation error; the value reported is
    /// `sigma`).
    pub fn multiplicative(sigma: f64) -> Result<Self, ModelError> {
        if sigma.is_nan() || sigma < 0.0 {
            return Err(ModelError::InvalidQuality { value: sigma });
        }
        Ok(CountNoise::Multiplicative { sigma })
    }

    /// Creates bounded uniform relative noise.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `delta` is not in `[0, 1]`.
    pub fn uniform_relative(delta: f64) -> Result<Self, ModelError> {
        if delta.is_nan() || !(0.0..=1.0).contains(&delta) {
            return Err(ModelError::InvalidQuality { value: delta });
        }
        Ok(CountNoise::UniformRelative { delta })
    }

    /// Creates encounter-rate subsampling noise.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `p` is not in `(0, 1]`.
    pub fn subsample(p: f64) -> Result<Self, ModelError> {
        if p.is_nan() || !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(ModelError::InvalidQuality { value: p });
        }
        Ok(CountNoise::Subsample { p })
    }

    /// Applies the noise channel to a true count.
    pub fn observe<R: Rng + ?Sized>(&self, true_count: usize, rng: &mut R) -> usize {
        match *self {
            CountNoise::Exact => true_count,
            CountNoise::Multiplicative { sigma } => {
                if sigma == 0.0 || true_count == 0 {
                    return true_count;
                }
                // Unit-mean log-normal: exp(N(-sigma^2/2, sigma^2)).
                let z = standard_normal(rng);
                let factor = (z * sigma - sigma * sigma / 2.0).exp();
                round_count(true_count as f64 * factor)
            }
            CountNoise::UniformRelative { delta } => {
                if delta == 0.0 || true_count == 0 {
                    return true_count;
                }
                let factor = 1.0 + rng.random_range(-delta..=delta);
                round_count(true_count as f64 * factor)
            }
            CountNoise::Subsample { p } => {
                if p >= 1.0 || true_count == 0 {
                    return true_count;
                }
                let seen = binomial(true_count, p, rng);
                round_count(seen as f64 / p)
            }
        }
    }
}

/// Noise applied to every quality an ant observes at `search()`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum QualityNoise {
    /// Report the exact quality.
    #[default]
    Exact,
    /// With probability `p`, report `1 − q` instead of `q`. For binary
    /// qualities this is a misclassification; for continuous qualities it
    /// mirrors the value around `1/2`.
    Flip {
        /// Misclassification probability, `0 ≤ p ≤ 1`.
        p: f64,
    },
    /// Add uniform jitter in `[−eps, +eps]`, clamped to `[0, 1]`. Models
    /// graded assessment error for the non-binary extension.
    Jitter {
        /// Jitter half-width, `0 ≤ eps ≤ 1`.
        eps: f64,
    },
}

impl QualityNoise {
    /// Creates misclassification noise.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `p` is not in `[0, 1]`.
    pub fn flip(p: f64) -> Result<Self, ModelError> {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return Err(ModelError::InvalidQuality { value: p });
        }
        Ok(QualityNoise::Flip { p })
    }

    /// Creates jitter noise.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuality`] if `eps` is not in `[0, 1]`.
    pub fn jitter(eps: f64) -> Result<Self, ModelError> {
        if eps.is_nan() || !(0.0..=1.0).contains(&eps) {
            return Err(ModelError::InvalidQuality { value: eps });
        }
        Ok(QualityNoise::Jitter { eps })
    }

    /// Applies the noise channel to a true quality.
    pub fn observe<R: Rng + ?Sized>(&self, true_quality: Quality, rng: &mut R) -> Quality {
        match *self {
            QualityNoise::Exact => true_quality,
            QualityNoise::Flip { p } => {
                if p > 0.0 && rng.random_bool(p) {
                    // Mirror around 1/2; value stays in [0, 1] so the
                    // constructor cannot fail.
                    Quality::new(1.0 - true_quality.value()).expect("mirrored quality in range")
                } else {
                    true_quality
                }
            }
            QualityNoise::Jitter { eps } => {
                if eps == 0.0 {
                    return true_quality;
                }
                let jittered =
                    (true_quality.value() + rng.random_range(-eps..=eps)).clamp(0.0, 1.0);
                Quality::new(jittered).expect("clamped quality in range")
            }
        }
    }
}

/// The complete observation-noise configuration of an environment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NoiseModel {
    /// Channel applied to population counts.
    pub count: CountNoise,
    /// Channel applied to quality observations.
    pub quality: QualityNoise,
}

impl NoiseModel {
    /// The noiseless model of Section 2 (same as `Default`).
    #[must_use]
    pub fn exact() -> Self {
        Self::default()
    }

    /// Returns `true` if both channels are exact.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self.count, CountNoise::Exact) && matches!(self.quality, QualityNoise::Exact)
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
///
/// `rand_distr` is deliberately not a dependency; the model only needs this
/// one distribution and the polar Box–Muller method is a dozen lines.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `Binomial(count, p)`.
///
/// Uses explicit Bernoulli draws for small counts and a normal
/// approximation (rounded and clamped) for large ones, which is accurate to
/// well under the noise levels being modelled.
fn binomial<R: Rng + ?Sized>(count: usize, p: f64, rng: &mut R) -> usize {
    const EXACT_LIMIT: usize = 256;
    if count <= EXACT_LIMIT {
        (0..count).filter(|_| rng.random_bool(p)).count()
    } else {
        let mean = count as f64 * p;
        let sd = (count as f64 * p * (1.0 - p)).sqrt();
        let draw = mean + sd * standard_normal(rng);
        draw.round().clamp(0.0, count as f64) as usize
    }
}

/// Rounds a perturbed count back to a non-negative integer.
fn round_count(value: f64) -> usize {
    value.round().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xA11CE)
    }

    #[test]
    fn exact_is_identity() {
        let mut r = rng();
        for c in [0usize, 1, 7, 1000] {
            assert_eq!(CountNoise::Exact.observe(c, &mut r), c);
        }
        assert_eq!(
            QualityNoise::Exact.observe(Quality::GOOD, &mut r),
            Quality::GOOD
        );
    }

    #[test]
    fn constructors_validate() {
        assert!(CountNoise::multiplicative(-0.1).is_err());
        assert!(CountNoise::multiplicative(f64::NAN).is_err());
        assert!(CountNoise::uniform_relative(1.5).is_err());
        assert!(CountNoise::subsample(0.0).is_err());
        assert!(CountNoise::subsample(1.5).is_err());
        assert!(QualityNoise::flip(-0.5).is_err());
        assert!(QualityNoise::jitter(2.0).is_err());
        assert!(CountNoise::multiplicative(0.5).is_ok());
        assert!(CountNoise::uniform_relative(0.2).is_ok());
        assert!(CountNoise::subsample(0.5).is_ok());
    }

    #[test]
    fn zero_parameters_are_identity() {
        let mut r = rng();
        let mult = CountNoise::multiplicative(0.0).unwrap();
        let unif = CountNoise::uniform_relative(0.0).unwrap();
        let sub = CountNoise::subsample(1.0).unwrap();
        for c in [0usize, 5, 123] {
            assert_eq!(mult.observe(c, &mut r), c);
            assert_eq!(unif.observe(c, &mut r), c);
            assert_eq!(sub.observe(c, &mut r), c);
        }
    }

    /// Empirical unbiasedness: the mean observed count over many draws must
    /// be close to the true count for every channel.
    #[test]
    fn count_channels_are_unbiased() {
        let mut r = rng();
        let channels = [
            CountNoise::multiplicative(0.3).unwrap(),
            CountNoise::uniform_relative(0.4).unwrap(),
            CountNoise::subsample(0.25).unwrap(),
        ];
        let truth = 1000usize;
        for ch in channels {
            let trials = 20_000;
            let sum: f64 = (0..trials).map(|_| ch.observe(truth, &mut r) as f64).sum();
            let mean = sum / f64::from(trials);
            let rel_err = (mean - truth as f64).abs() / truth as f64;
            assert!(
                rel_err < 0.02,
                "{ch:?} biased: mean {mean} vs truth {truth}"
            );
        }
    }

    #[test]
    fn subsample_small_counts_use_exact_binomial() {
        let mut r = rng();
        let ch = CountNoise::subsample(0.5).unwrap();
        // With count 10 and p = 0.5 the observation is 2 * Binomial(10, .5),
        // so it is always an even integer in [0, 20].
        for _ in 0..200 {
            let obs = ch.observe(10, &mut r);
            assert!(obs <= 20);
            assert_eq!(obs % 2, 0);
        }
    }

    #[test]
    fn flip_noise_mirrors_quality() {
        let mut r = rng();
        let always = QualityNoise::flip(1.0).unwrap();
        assert_eq!(always.observe(Quality::GOOD, &mut r), Quality::BAD);
        assert_eq!(always.observe(Quality::BAD, &mut r), Quality::GOOD);
        let never = QualityNoise::flip(0.0).unwrap();
        assert_eq!(never.observe(Quality::GOOD, &mut r), Quality::GOOD);
    }

    #[test]
    fn flip_rate_is_respected() {
        let mut r = rng();
        let ch = QualityNoise::flip(0.25).unwrap();
        let flips = (0..10_000)
            .filter(|_| ch.observe(Quality::GOOD, &mut r) == Quality::BAD)
            .count();
        assert!((2_000..=3_000).contains(&flips), "flip count {flips}");
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut r = rng();
        let ch = QualityNoise::jitter(0.5).unwrap();
        for _ in 0..1000 {
            let q = ch.observe(Quality::new(0.9).unwrap(), &mut r);
            assert!((0.0..=1.0).contains(&q.value()));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance {var}");
    }

    #[test]
    fn binomial_mean_is_np() {
        let mut r = rng();
        for (count, p) in [(100usize, 0.3), (10_000, 0.7)] {
            let trials = 2_000;
            let sum: usize = (0..trials).map(|_| binomial(count, p, &mut r)).sum();
            let mean = sum as f64 / f64::from(trials);
            let expected = count as f64 * p;
            assert!(
                (mean - expected).abs() / expected < 0.05,
                "binomial mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn noise_model_exactness_check() {
        assert!(NoiseModel::exact().is_exact());
        let noisy = NoiseModel {
            count: CountNoise::multiplicative(0.1).unwrap(),
            quality: QualityNoise::Exact,
        };
        assert!(!noisy.is_exact());
    }
}
