//! The synchronous environment: state and round execution.
//!
//! [`Environment`] owns the ground-truth state of one execution — ant
//! locations `ℓ(a, r)`, nest populations `c(i, r)`, and per-ant knowledge
//! sets — and advances it one synchronous round at a time via
//! [`Environment::step`], which takes exactly one [`Action`] per ant,
//! validates every call's precondition, resolves searches and the
//! recruitment pairing, and returns each ant's [`Outcome`].
//!
//! # Semantics (Section 2 of the paper)
//!
//! * All ants start at the home nest; `c(0, 0) = n`.
//! * `search()` relocates the ant to a uniformly random candidate nest and
//!   returns `⟨i, q(i), c(i, r)⟩` with *end-of-round* counts.
//! * `go(i)` relocates the ant to nest `i` and returns `c(i, r)`.
//! * `recruit(b, i)` relocates the ant to the home nest, enters it into the
//!   round's pairing (Algorithm 1), and returns `⟨j, c(0, r)⟩`.
//! * Counts reported to ants pass through the configured
//!   [`NoiseModel`](crate::noise::NoiseModel) (exact by default), drawn
//!   independently per observation.
//!
//! ## Randomness ownership (the intra-round determinism contract)
//!
//! Every random draw attributable to a single ant — its search placement
//! and its observation noise — comes from that ant's own derived streams
//! ([`StreamKind::AgentEnvironment`] and [`StreamKind::AgentNoise`]), so
//! a round's outcome is a function of per-ant state only and is
//! independent of the order (or thread) ants are processed in. The only
//! draw on the shared environment stream is the recruitment pairing
//! (Algorithm 1), which is a single colony-level process and stays
//! serial. The executor in `hh-sim` exploits this to run the per-ant
//! phases of a round over disjoint ant chunks on a worker pool with
//! bit-identical results for every thread count; the chunked entry
//! points are [`Environment::relocation_view`] /
//! [`Environment::outcome_view`] with the serial
//! [`Environment::pair_round`] between them.
//!
//! ## Knowledge-set clarification
//!
//! The paper's formal precondition for `go(i)`/`recruit(·, i)` is a prior
//! round with `ℓ(a, r′) = i`, yet both of its algorithms immediately `go`
//! to a nest the ant was just *recruited to* (e.g. Algorithm 2 lines
//! 14–18). We therefore track a knowledge set per ant — nests visited
//! *or learned through recruitment* — and use membership as the legality
//! test. See DESIGN.md, "Model clarifications".

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::actions::{Action, Outcome};
use crate::config::ColonyConfig;
use crate::error::ModelError;
use crate::ids::{AntId, NestId};
use crate::nest::{Nest, Quality};
use crate::noise::NoiseModel;
use crate::recruitment::{pair_ants_into, Pairing, RecruitCall};
use crate::seeding::{derive_seed, StreamKind};
use crate::util::{BitMatrix, RowBandMut};

/// The ground-truth state of one house-hunting execution.
///
/// # Examples
///
/// ```
/// use hh_model::{Action, ColonyConfig, Environment, QualitySpec};
///
/// let config = ColonyConfig::new(4, QualitySpec::all_good(2)).seed(1);
/// let mut env = Environment::new(&config)?;
///
/// // Round 1: every ant must search (no nest is known yet).
/// let report = env.step(&vec![Action::Search; 4])?;
/// assert_eq!(env.round(), 1);
/// assert_eq!(report.outcomes.len(), 4);
/// // All ants are now at candidate nests; the home nest is empty.
/// assert_eq!(env.count(hh_model::NestId::HOME), 0);
/// # Ok::<(), hh_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct Environment {
    nests: Vec<Nest>,
    locations: Vec<NestId>,
    known: BitMatrix,
    counts: Vec<usize>,
    round: u64,
    /// The shared colony-level stream: recruitment pairing only. All
    /// per-ant draws live in `ant_rngs`/`noise_rngs` (see the module
    /// docs on randomness ownership).
    rng: SmallRng,
    /// Per-ant environment streams (search placement), indexed by ant id.
    ant_rngs: Vec<SmallRng>,
    /// Per-ant observation-noise streams, indexed by ant id.
    noise_rngs: Vec<SmallRng>,
    noise: NoiseModel,
    reveal_quality_on_go: bool,
    /// Reused across rounds by [`Environment::step_into`] so steady-state
    /// stepping allocates nothing.
    scratch_pairing: Pairing,
    scratch_perm: Vec<u32>,
    scratch_counts: Vec<usize>,
}

/// Everything the environment reports about one executed round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepReport {
    /// Per-ant outcome, indexed by ant id; `outcomes[a]` answers ant `a`'s
    /// call.
    pub outcomes: Vec<Outcome>,
    /// The round's recruitment pairing, exposed for instrumentation. The
    /// agents themselves only ever see their own [`Outcome`].
    pub recruitment: RecruitmentReport,
}

/// Instrumentation view of one round's recruitment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecruitmentReport {
    /// The participants, in ant-id order.
    pub calls: Vec<RecruitCall>,
    /// Matched `(recruiter, recruited)` pairs; self-pairs appear as
    /// `(a, a)`.
    pub pairs: Vec<(AntId, AntId)>,
}

impl Environment {
    /// Builds the initial environment (round 0, all ants at home) from a
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures; see
    /// [`ColonyConfig::validated_qualities`].
    pub fn new(config: &ColonyConfig) -> Result<Self, ModelError> {
        let qualities = config.validated_qualities()?;
        let n = config.n();
        let k = qualities.len();
        let nests: Vec<Nest> = qualities
            .into_iter()
            .enumerate()
            .map(|(idx, q)| Nest::new(NestId::candidate(idx + 1), q))
            .collect();
        let mut counts = vec![0; k + 1];
        counts[0] = n;
        let base = config.base_seed();
        let per_ant = |kind| {
            (0..n)
                .map(|ant| SmallRng::seed_from_u64(derive_seed(base, kind, ant as u64)))
                .collect()
        };
        Ok(Self {
            nests,
            locations: vec![NestId::HOME; n],
            known: BitMatrix::new(n, k + 1),
            counts,
            round: 0,
            rng: SmallRng::seed_from_u64(derive_seed(base, StreamKind::Environment, 0)),
            ant_rngs: per_ant(StreamKind::AgentEnvironment),
            noise_rngs: per_ant(StreamKind::AgentNoise),
            noise: config.noise_model(),
            reveal_quality_on_go: config.go_reveals_quality(),
            scratch_pairing: Pairing::default(),
            scratch_perm: Vec::new(),
            scratch_counts: Vec::new(),
        })
    }

    /// Returns the colony size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.locations.len()
    }

    /// Returns the number of candidate nests `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.nests.len()
    }

    /// Returns the number of completed rounds; the next [`step`](Self::step)
    /// executes round `round() + 1`.
    #[must_use]
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Returns the candidate nests `n₁ … n_k`.
    #[must_use]
    pub fn nests(&self) -> &[Nest] {
        &self.nests
    }

    /// Returns `true` if this environment runs the "assessing go" model
    /// extension: `go(i)` outcomes carry the nest's (possibly noisy)
    /// quality in addition to its count. In the strict Section 2 model this
    /// is `false` and `go` returns only the count.
    #[must_use]
    pub fn go_reveals_quality(&self) -> bool {
        self.reveal_quality_on_go
    }

    /// Returns the true (noise-free) quality of a candidate nest, or
    /// `None` for the home nest or an out-of-range id.
    #[must_use]
    pub fn quality_of(&self, nest: NestId) -> Option<Quality> {
        let idx = nest.candidate_index()?;
        self.nests.get(idx).map(Nest::quality)
    }

    /// Returns the ids of all good candidate nests.
    #[must_use]
    pub fn good_nests(&self) -> Vec<NestId> {
        self.nests
            .iter()
            .filter(|nest| nest.quality().is_good())
            .map(Nest::id)
            .collect()
    }

    /// Returns the true end-of-round population `c(i, r)` of a nest
    /// (including the home nest). Out-of-range ids have population 0.
    #[must_use]
    #[inline]
    pub fn count(&self, nest: NestId) -> usize {
        self.counts.get(nest.raw()).copied().unwrap_or(0)
    }

    /// Returns the true populations of all nests, indexed by raw nest id
    /// (`0` = home).
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Returns nest `i`'s share of the colony, `p(i, r) = c(i, r) / n`.
    #[must_use]
    pub fn population_fraction(&self, nest: NestId) -> f64 {
        self.count(nest) as f64 / self.n() as f64
    }

    /// Returns ant `a`'s current location `ℓ(a, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    #[inline]
    pub fn location_of(&self, ant: AntId) -> NestId {
        self.locations[ant.index()]
    }

    /// Returns all ant locations, indexed by ant id.
    #[must_use]
    pub fn locations(&self) -> &[NestId] {
        &self.locations
    }

    /// Returns `true` if ant `a` knows nest `i` (has visited it or been
    /// recruited to it) and may therefore pass it to `go`/`recruit`.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    #[inline]
    pub fn knows(&self, ant: AntId, nest: NestId) -> bool {
        self.known.contains(ant.index(), nest.raw())
    }

    /// Returns the lowest-numbered nest ant `a` knows, if any. Useful for
    /// constructing a legal no-op action for a crashed or delayed ant.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    #[inline]
    pub fn first_known(&self, ant: AntId) -> Option<NestId> {
        self.known.first(ant.index()).map(NestId::from_raw)
    }

    /// Returns an iterator over the nests ant `a` knows, in ascending id
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    pub fn known_nests(&self, ant: AntId) -> impl Iterator<Item = NestId> + '_ {
        self.known.iter_row(ant.index()).map(NestId::from_raw)
    }

    /// Executes one synchronous round: exactly one action per ant.
    ///
    /// All validation happens before any state changes, so a failed step
    /// leaves the environment untouched.
    ///
    /// # Errors
    ///
    /// * [`ModelError::WrongActionCount`] if `actions.len() != n`;
    /// * [`ModelError::HomeNotAllowed`] if a `go`/`recruit` names the home
    ///   nest;
    /// * [`ModelError::UnknownNest`] if a nest id exceeds `k`;
    /// * [`ModelError::NestNotKnown`] if an ant uses a nest it has neither
    ///   visited nor been recruited to (in particular, any non-`search`
    ///   call in round 1).
    pub fn step(&mut self, actions: &[Action]) -> Result<StepReport, ModelError> {
        let mut report = StepReport::default();
        self.step_into(actions, &mut report)?;
        Ok(report)
    }

    /// [`step`](Self::step) into a caller-owned report: the report's
    /// vectors are cleared and refilled, so an executor that passes the
    /// same report every round allocates nothing at steady state. The
    /// random streams are identical to [`step`](Self::step)'s.
    ///
    /// On error the environment *and* the report are left untouched.
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    pub fn step_into(
        &mut self,
        actions: &[Action],
        report: &mut StepReport,
    ) -> Result<(), ModelError> {
        self.validate(actions)?;
        self.step_into_prevalidated(actions, report);
        Ok(())
    }

    /// [`step_into`](Self::step_into) minus the validation pass, for
    /// callers that have already checked every action — the `hh-sim`
    /// executor validates per ant to sandbox illegal actions, so a second
    /// full validation here would be pure duplicated work in the hot
    /// loop.
    ///
    /// Every action **must** satisfy [`check_action`](Self::check_action)
    /// and `actions.len()` must equal `n`; debug builds assert this,
    /// release builds may panic on out-of-range indices or silently
    /// mis-resolve the round otherwise.
    pub fn step_into_prevalidated(&mut self, actions: &[Action], report: &mut StepReport) {
        debug_assert!(self.validate(actions).is_ok(), "caller must pre-validate");
        self.resolve_round(actions, report);
        self.materialize_outcomes(actions, report);
        self.export_pairs(report);
    }

    /// Phases 1–3 of a round: relocation + population tally + recruit
    /// call collection, the pairing, recruitment learning, and the round
    /// counter. Leaves `report.outcomes`/`pairs` untouched.
    ///
    /// Implemented over the same chunk-view primitives the `hh-sim`
    /// worker pool uses ([`relocation_view`](Self::relocation_view) with
    /// one full-range chunk), so the serial and chunked round paths are
    /// one stochastic process by construction.
    fn resolve_round(&mut self, actions: &[Action], report: &mut StepReport) {
        report.recruitment.calls.clear();
        let mut counts = std::mem::take(&mut self.scratch_counts);
        counts.clear();
        counts.resize(self.k() + 1, 0);
        {
            let mut view = self.relocation_view();
            for (idx, action) in actions.iter().enumerate() {
                view.apply(idx, *action, &mut counts, &mut report.recruitment.calls);
            }
        }
        self.merge_counts(std::iter::once(counts.as_slice()));
        self.scratch_counts = counts;
        self.pair_round(&report.recruitment.calls);
    }

    /// The full-colony per-ant relocation view — phase 1 of a chunked
    /// round. Split it into disjoint chunks ([`RelocationChunk::split_at`])
    /// and [`apply`](RelocationChunk::apply) every ant's action exactly
    /// once, tallying populations into per-chunk buffers and collecting
    /// recruit calls into per-chunk vectors (concatenated in chunk order
    /// they reproduce ant order). Then fold the tallies back with
    /// [`merge_counts`](Self::merge_counts) and run
    /// [`pair_round`](Self::pair_round).
    ///
    /// The environment's own population tally is stale while a relocation
    /// view is live; nothing in the view reads it.
    pub fn relocation_view(&mut self) -> RelocationChunk<'_> {
        RelocationChunk {
            start: 0,
            k: self.nests.len(),
            locations: &mut self.locations,
            known: self.known.rows_mut(),
            rngs: &mut self.ant_rngs,
        }
    }

    /// Replaces the population tally with the sum of the per-chunk
    /// tallies produced against [`relocation_view`](Self::relocation_view).
    /// Deltas are summed in iteration order; each slice must have length
    /// `k + 1`.
    ///
    /// # Panics
    ///
    /// Panics if a delta slice's length is not `k + 1`.
    pub fn merge_counts<'a, I>(&mut self, deltas: I)
    where
        I: IntoIterator<Item = &'a [usize]>,
    {
        self.counts.fill(0);
        for delta in deltas {
            assert_eq!(delta.len(), self.counts.len(), "count delta width");
            for (slot, add) in self.counts.iter_mut().zip(delta) {
                *slot += add;
            }
        }
    }

    /// The serial middle of a round: runs Algorithm 1 over the collected
    /// recruit calls (which must be in ant order) on the shared
    /// environment stream, applies recruitment learning, and advances the
    /// round counter. Call between the relocation and outcome phases.
    pub fn pair_round(&mut self, calls: &[RecruitCall]) {
        pair_ants_into(
            calls,
            &mut self.rng,
            &mut self.scratch_pairing,
            &mut self.scratch_perm,
        );
        // Recruited ants learn the nest they were recruited to; only
        // matched pairs can have learned anything, so walk those instead
        // of every participant.
        for &(recruiter, recruited) in self.scratch_pairing.matched_indices() {
            if recruiter != recruited {
                let learned = calls[recruiter as usize].nest;
                self.known
                    .insert(calls[recruited as usize].ant.index(), learned.raw());
            }
        }
        self.round += 1;
    }

    /// Copies the just-paired round's matched pairs into the report —
    /// shared tail of every step variant.
    pub fn export_pairs(&self, report: &mut StepReport) {
        report.recruitment.pairs.clear();
        report
            .recruitment
            .pairs
            .extend_from_slice(self.scratch_pairing.pairs());
    }

    /// The full-colony outcome view — the per-ant delivery phase of a
    /// chunked round. Valid only after [`pair_round`](Self::pair_round);
    /// split the chunk and compute every ant's outcome exactly once, in
    /// ascending ant order within each chunk, threading a call cursor
    /// that starts at the ant's rank among the round's recruiters (0 for
    /// the first chunk; later chunks start at the prefix sum of earlier
    /// chunks' recruit-call counts).
    pub fn outcome_view(&mut self) -> (OutcomeChunk<'_>, OutcomeCtx<'_>) {
        (
            OutcomeChunk {
                start: 0,
                locations: &self.locations,
                noise_rngs: &mut self.noise_rngs,
            },
            OutcomeCtx {
                nests: &self.nests,
                counts: &self.counts,
                noise: self.noise,
                reveal_quality_on_go: self.reveal_quality_on_go,
                pairing: &self.scratch_pairing,
            },
        )
    }

    /// Phase 4 for the materializing step variants.
    fn materialize_outcomes(&mut self, actions: &[Action], report: &mut StepReport) {
        report.outcomes.clear();
        report.outcomes.reserve(actions.len());
        let (mut chunk, ctx) = self.outcome_view();
        let mut call_cursor = 0usize;
        for (idx, action) in actions.iter().enumerate() {
            let outcome = chunk.outcome(&ctx, idx, *action, &mut call_cursor);
            report.outcomes.push(outcome);
        }
    }

    /// Checks whether `ant` may legally perform `action` in the next round
    /// without executing anything.
    ///
    /// The executor in `hh-sim` uses this to sandbox misbehaving agents:
    /// an illegal action is replaced with a no-op instead of aborting the
    /// whole execution.
    ///
    /// # Errors
    ///
    /// Returns the same errors `step` would for this single action.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[inline]
    pub fn check_action(&self, ant: AntId, action: &Action) -> Result<(), ModelError> {
        check_nest_argument(self.k(), ant, action, |nest| {
            self.known.contains(ant.index(), nest.raw())
        })
    }

    fn validate(&self, actions: &[Action]) -> Result<(), ModelError> {
        if actions.len() != self.n() {
            return Err(ModelError::WrongActionCount {
                got: actions.len(),
                expected: self.n(),
            });
        }
        for (idx, action) in actions.iter().enumerate() {
            self.check_action(AntId::new(idx), action)?;
        }
        Ok(())
    }
}

/// The nest-argument legality test — the **single** definition shared
/// by [`Environment::check_action`] and
/// [`RelocationChunk::check_action`], so the serial and chunked
/// executor paths cannot drift apart. `knows` answers whether the ant
/// has visited or been recruited to the nest.
#[inline]
fn check_nest_argument(
    k: usize,
    ant: AntId,
    action: &Action,
    knows: impl FnOnce(NestId) -> bool,
) -> Result<(), ModelError> {
    if let Some(nest) = action.nest() {
        if nest.is_home() {
            return Err(ModelError::HomeNotAllowed { ant });
        }
        if nest.raw() > k {
            return Err(ModelError::UnknownNest { ant, nest });
        }
        if !knows(nest) {
            return Err(ModelError::NestNotKnown { ant, nest });
        }
    }
    Ok(())
}

/// A disjoint, contiguous chunk of the colony's per-ant relocation state
/// — phase 1 of a chunked round.
///
/// Produced by [`Environment::relocation_view`] (the full-range chunk)
/// and [`RelocationChunk::split_at`]. All randomness comes from the
/// chunk's per-ant streams, so processing chunks concurrently (each ant
/// applied exactly once) yields bit-identical state to the serial
/// full-range pass regardless of where the boundaries fall.
#[derive(Debug)]
pub struct RelocationChunk<'a> {
    /// Global ant id of the chunk's first ant.
    start: usize,
    k: usize,
    locations: &'a mut [NestId],
    known: RowBandMut<'a>,
    rngs: &'a mut [SmallRng],
}

impl<'a> RelocationChunk<'a> {
    /// Global ant id of the first ant in the chunk.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of ants in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` if the chunk covers no ants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Splits at global ant id `mid` into `[start, mid)` and
    /// `[mid, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is outside the chunk's range.
    #[must_use]
    pub fn split_at(self, mid: usize) -> (RelocationChunk<'a>, RelocationChunk<'a>) {
        let local = mid - self.start;
        let (loc_a, loc_b) = self.locations.split_at_mut(local);
        let (known_a, known_b) = self.known.split_at(local);
        let (rng_a, rng_b) = self.rngs.split_at_mut(local);
        (
            RelocationChunk {
                start: self.start,
                k: self.k,
                locations: loc_a,
                known: known_a,
                rngs: rng_a,
            },
            RelocationChunk {
                start: mid,
                k: self.k,
                locations: loc_b,
                known: known_b,
                rngs: rng_b,
            },
        )
    }

    /// [`Environment::check_action`] against the chunk's state: whether
    /// ant `idx` (global id, within the chunk) may legally perform
    /// `action` this round.
    ///
    /// # Errors
    ///
    /// Returns the same errors [`Environment::step`] would for this
    /// single action.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the chunk.
    #[inline]
    pub fn check_action(&self, idx: usize, action: &Action) -> Result<(), ModelError> {
        check_nest_argument(self.k, AntId::new(idx), action, |nest| {
            self.known.contains(idx - self.start, nest.raw())
        })
    }

    /// The location-preserving in-place no-op for ant `idx` — the chunk
    /// equivalent of [`noop_action`](crate::faults::noop_action) with
    /// [`CrashStyle::InPlace`](crate::faults::CrashStyle::InPlace), used
    /// to sandbox illegal actions.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the chunk.
    #[must_use]
    pub fn noop_in_place(&self, idx: usize) -> Action {
        let local = idx - self.start;
        crate::faults::in_place_noop(
            self.locations[local],
            self.known.first(local).map(NestId::from_raw),
        )
    }

    /// Applies ant `idx`'s action: relocates the ant, updates its
    /// knowledge set, tallies the end-of-round population into `counts`
    /// (length `k + 1`, raw-nest-indexed), and appends `recruit` calls to
    /// `calls`. Search placement draws from the ant's own stream.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the chunk or the action names an
    /// out-of-range nest (pre-validate with
    /// [`check_action`](Self::check_action)).
    #[inline]
    pub fn apply(
        &mut self,
        idx: usize,
        action: Action,
        counts: &mut [usize],
        calls: &mut Vec<RecruitCall>,
    ) {
        let local = idx - self.start;
        match action {
            Action::Search => {
                let nest = NestId::candidate(self.rngs[local].random_range(1..=self.k));
                self.locations[local] = nest;
                self.known.insert(local, nest.raw());
                counts[nest.raw()] += 1;
            }
            Action::Go(nest) => {
                self.locations[local] = nest;
                counts[nest.raw()] += 1;
            }
            Action::Recruit { active, nest } => {
                self.locations[local] = NestId::HOME;
                counts[0] += 1;
                calls.push(RecruitCall::new(AntId::new(idx), active, nest));
            }
        }
    }

    /// Applies a whole chunk's worth of (pre-validated, pre-sandboxed)
    /// actions at once — functionally identical to calling
    /// [`apply`](Self::apply) for each ant in chunk order.
    ///
    /// The difference is structure, not semantics: search placements are
    /// drawn first in one tight pass that touches only the per-ant RNG
    /// and location columns (each destination comes from that ant's own
    /// [`StreamKind::AgentEnvironment`] stream, so no draw depends on any
    /// other ant), and relocation/knowledge/tally bookkeeping runs as a
    /// second pass. The executor's fast path uses this as its phase-1
    /// inner loop.
    ///
    /// [`StreamKind::AgentEnvironment`]: crate::seeding::StreamKind::AgentEnvironment
    ///
    /// # Panics
    ///
    /// Panics if `actions` is not exactly one action per chunk ant or an
    /// action names an out-of-range nest (pre-validate with
    /// [`check_action`](Self::check_action)).
    pub fn apply_all(
        &mut self,
        actions: &[Action],
        counts: &mut [usize],
        calls: &mut Vec<RecruitCall>,
    ) {
        assert_eq!(actions.len(), self.len(), "one action per chunk ant");
        // Batched per-ant draws.
        for (local, action) in actions.iter().enumerate() {
            if matches!(action, Action::Search) {
                self.locations[local] =
                    NestId::candidate(self.rngs[local].random_range(1..=self.k));
            }
        }
        // Relocate, record knowledge, tally populations, collect calls.
        for (local, action) in actions.iter().enumerate() {
            match *action {
                Action::Search => {
                    let nest = self.locations[local];
                    self.known.insert(local, nest.raw());
                    counts[nest.raw()] += 1;
                }
                Action::Go(nest) => {
                    self.locations[local] = nest;
                    counts[nest.raw()] += 1;
                }
                Action::Recruit { active, nest } => {
                    self.locations[local] = NestId::HOME;
                    counts[0] += 1;
                    calls.push(RecruitCall::new(
                        AntId::new(self.start + local),
                        active,
                        nest,
                    ));
                }
            }
        }
    }
}

/// A disjoint, contiguous chunk of the colony's per-ant outcome state —
/// the delivery phase of a chunked round.
///
/// Produced by [`Environment::outcome_view`] after
/// [`Environment::pair_round`]; split with
/// [`OutcomeChunk::split_at`]. Observation noise draws come from the
/// chunk's per-ant streams, so concurrent chunks reproduce the serial
/// pass bit-identically.
#[derive(Debug)]
pub struct OutcomeChunk<'a> {
    /// Global ant id of the chunk's first ant.
    start: usize,
    locations: &'a [NestId],
    noise_rngs: &'a mut [SmallRng],
}

impl<'a> OutcomeChunk<'a> {
    /// Global ant id of the first ant in the chunk.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of ants in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// `true` if the chunk covers no ants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Splits at global ant id `mid` into `[start, mid)` and
    /// `[mid, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `mid` is outside the chunk's range.
    #[must_use]
    pub fn split_at(self, mid: usize) -> (OutcomeChunk<'a>, OutcomeChunk<'a>) {
        let local = mid - self.start;
        let (loc_a, loc_b) = self.locations.split_at(local);
        let (rng_a, rng_b) = self.noise_rngs.split_at_mut(local);
        (
            OutcomeChunk {
                start: self.start,
                locations: loc_a,
                noise_rngs: rng_a,
            },
            OutcomeChunk {
                start: mid,
                locations: loc_b,
                noise_rngs: rng_b,
            },
        )
    }

    /// Computes ant `idx`'s outcome for the just-paired round, advancing
    /// `call_cursor` past recruit participants. Must be invoked in
    /// ascending ant order within the chunk, with `call_cursor` starting
    /// at the ant's rank among the round's recruiters (see
    /// [`Environment::outcome_view`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the chunk or `action` is not the action
    /// the round was resolved with.
    #[inline]
    pub fn outcome(
        &mut self,
        ctx: &OutcomeCtx<'_>,
        idx: usize,
        action: Action,
        call_cursor: &mut usize,
    ) -> Outcome {
        let local = idx - self.start;
        let rng = &mut self.noise_rngs[local];
        match action {
            Action::Search => {
                let nest = self.locations[local];
                let true_quality =
                    ctx.nests[nest.candidate_index().expect("searched nest")].quality();
                Outcome::Search {
                    nest,
                    quality: ctx.noise.quality.observe(true_quality, rng),
                    count: Outcome::narrow_count(
                        ctx.noise.count.observe(ctx.counts[nest.raw()], rng),
                    ),
                }
            }
            Action::Go(nest) => Outcome::Go {
                count: Outcome::narrow_count(ctx.noise.count.observe(ctx.counts[nest.raw()], rng)),
                quality: if ctx.reveal_quality_on_go {
                    let true_quality =
                        ctx.nests[nest.candidate_index().expect("candidate nest")].quality();
                    Some(ctx.noise.quality.observe(true_quality, rng))
                } else {
                    None
                },
            },
            Action::Recruit { .. } => {
                let assigned = ctx.pairing.assigned_nest(*call_cursor);
                *call_cursor += 1;
                Outcome::Recruit {
                    nest: assigned,
                    home_count: Outcome::narrow_count(ctx.noise.count.observe(ctx.counts[0], rng)),
                }
            }
        }
    }
}

/// The shared, read-only round context for the outcome phase: nests,
/// merged end-of-round populations, the noise model, and the round's
/// pairing. One context serves every [`OutcomeChunk`] concurrently.
#[derive(Debug)]
pub struct OutcomeCtx<'a> {
    nests: &'a [Nest],
    counts: &'a [usize],
    noise: NoiseModel,
    reveal_quality_on_go: bool,
    pairing: &'a Pairing,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QualitySpec;
    use crate::noise::{CountNoise, NoiseModel};

    fn env(n: usize, k: usize, seed: u64) -> Environment {
        let config = ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed);
        Environment::new(&config).expect("valid config")
    }

    #[test]
    fn initial_state_has_all_ants_home() {
        let env = env(10, 3, 0);
        assert_eq!(env.n(), 10);
        assert_eq!(env.k(), 3);
        assert_eq!(env.round(), 0);
        assert_eq!(env.count(NestId::HOME), 10);
        for i in 1..=3 {
            assert_eq!(env.count(NestId::candidate(i)), 0);
        }
        for a in 0..10 {
            assert!(env.location_of(AntId::new(a)).is_home());
            assert_eq!(env.known_nests(AntId::new(a)).count(), 0);
        }
    }

    #[test]
    fn wrong_action_count_is_rejected() {
        let mut env = env(5, 2, 0);
        let err = env.step(&[Action::Search; 3]).unwrap_err();
        assert_eq!(
            err,
            ModelError::WrongActionCount {
                got: 3,
                expected: 5
            }
        );
        assert_eq!(env.round(), 0, "failed step must not advance the round");
    }

    #[test]
    fn round_one_must_search() {
        let mut env = env(2, 2, 0);
        let n1 = NestId::candidate(1);
        let err = env.step(&[Action::Go(n1), Action::Search]).unwrap_err();
        assert_eq!(
            err,
            ModelError::NestNotKnown {
                ant: AntId::new(0),
                nest: n1
            }
        );
        let err = env
            .step(&[Action::recruit_passive(n1), Action::Search])
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::NestNotKnown {
                ant: AntId::new(0),
                nest: n1
            }
        );
    }

    #[test]
    fn home_nest_is_not_a_valid_argument() {
        let mut env = env(1, 2, 0);
        let err = env.step(&[Action::Go(NestId::HOME)]).unwrap_err();
        assert_eq!(err, ModelError::HomeNotAllowed { ant: AntId::new(0) });
    }

    #[test]
    fn out_of_range_nest_is_rejected() {
        let mut env = env(1, 2, 0);
        let err = env.step(&[Action::Go(NestId::candidate(9))]).unwrap_err();
        assert_eq!(
            err,
            ModelError::UnknownNest {
                ant: AntId::new(0),
                nest: NestId::candidate(9)
            }
        );
    }

    #[test]
    fn search_relocates_and_teaches() {
        let mut env = env(6, 4, 7);
        let report = env.step(&[Action::Search; 6]).unwrap();
        assert_eq!(env.round(), 1);
        assert_eq!(env.count(NestId::HOME), 0);
        let mut seen_total = 0;
        for i in 1..=4 {
            seen_total += env.count(NestId::candidate(i));
        }
        assert_eq!(seen_total, 6, "every ant is at some candidate nest");
        for (idx, outcome) in report.outcomes.iter().enumerate() {
            let ant = AntId::new(idx);
            match outcome {
                Outcome::Search {
                    nest,
                    quality,
                    count,
                } => {
                    assert_eq!(env.location_of(ant), *nest);
                    assert!(env.knows(ant, *nest));
                    assert!(quality.is_good());
                    assert_eq!(*count as usize, env.count(*nest), "end-of-round count");
                }
                other => panic!("expected search outcome, got {other:?}"),
            }
        }
    }

    #[test]
    fn go_revisits_known_nest() {
        let mut env = env(1, 2, 3);
        let report = env.step(&[Action::Search]).unwrap();
        let nest = report.outcomes[0].nest().unwrap();
        // Going back home is impossible except via recruit; go to the same
        // nest keeps the ant there.
        let report = env.step(&[Action::Go(nest)]).unwrap();
        assert_eq!(
            report.outcomes[0],
            Outcome::Go {
                count: 1,
                quality: None
            }
        );
        assert_eq!(env.location_of(AntId::new(0)), nest);
    }

    #[test]
    fn recruit_returns_home() {
        let mut env = env(3, 2, 5);
        let report = env.step(&[Action::Search; 3]).unwrap();
        let nests: Vec<NestId> = report.outcomes.iter().map(|o| o.nest().unwrap()).collect();
        let actions: Vec<Action> = nests
            .iter()
            .map(|&nest| Action::recruit_passive(nest))
            .collect();
        let report = env.step(&actions).unwrap();
        assert_eq!(env.count(NestId::HOME), 3);
        for (idx, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                Outcome::Recruit { nest, home_count } => {
                    // Passive-only round: no pair forms, everyone keeps its
                    // own input.
                    assert_eq!(*nest, nests[idx]);
                    assert_eq!(*home_count, 3);
                }
                other => panic!("expected recruit outcome, got {other:?}"),
            }
        }
        assert!(report.recruitment.pairs.is_empty());
        assert_eq!(report.recruitment.calls.len(), 3);
    }

    #[test]
    fn recruited_ant_learns_the_nest() {
        // Ant 0 searches into some nest and then actively recruits; ant 1
        // waits. Repeat rounds until a cross-pair forms, then check ant 1
        // can go() to ant 0's nest.
        let config = ColonyConfig::new(2, QualitySpec::all_good(2)).seed(11);
        let mut env = Environment::new(&config).unwrap();
        let report = env.step(&[Action::Search, Action::Search]).unwrap();
        let nest0 = report.outcomes[0].nest().unwrap();
        let nest1 = report.outcomes[1].nest().unwrap();

        let mut recruited = false;
        for _ in 0..200 {
            let report = env
                .step(&[
                    Action::recruit_active(nest0),
                    Action::recruit_passive(nest1),
                ])
                .unwrap();
            if let Outcome::Recruit { nest, .. } = report.outcomes[1] {
                if nest == nest0 {
                    recruited = true;
                    break;
                }
            }
        }
        // nest0 could equal nest1 with 2 nests; only assert learning when a
        // genuinely new nest was communicated.
        if recruited && nest0 != nest1 {
            assert!(env.knows(AntId::new(1), nest0));
            assert!(env.step(&[Action::Go(nest0), Action::Go(nest0)]).is_ok());
        }
    }

    #[test]
    fn counts_always_sum_to_n() {
        let mut env = env(20, 3, 13);
        env.step(&[Action::Search; 20]).unwrap();
        for round in 0..10 {
            let actions: Vec<Action> = (0..20)
                .map(|a| {
                    let ant = AntId::new(a);
                    let nest = env.first_known(ant).unwrap();
                    if (a + round) % 3 == 0 {
                        Action::Search
                    } else if (a + round) % 3 == 1 {
                        Action::Go(if env.location_of(ant).is_home() {
                            nest
                        } else {
                            env.location_of(ant)
                        })
                    } else {
                        Action::recruit_passive(nest)
                    }
                })
                .collect();
            env.step(&actions).unwrap();
            assert_eq!(env.counts().iter().sum::<usize>(), 20);
        }
    }

    #[test]
    fn search_is_roughly_uniform() {
        let mut env = env(8000, 4, 17);
        env.step(&vec![Action::Search; 8000]).unwrap();
        for i in 1..=4 {
            let c = env.count(NestId::candidate(i));
            assert!(
                (1700..=2300).contains(&c),
                "nest {i} got {c} searchers; expected ≈2000"
            );
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut e = env(50, 3, seed);
            let mut trace = Vec::new();
            e.step(&vec![Action::Search; 50]).unwrap();
            for _ in 0..5 {
                let actions: Vec<Action> = (0..50)
                    .map(|a| Action::recruit_active(e.location_of(AntId::new(a))))
                    .collect();
                // All ants are at candidate nests after searching; recruit
                // from there (legal: they know their own nest).
                let report = e.step(&actions).unwrap();
                trace.push(report.outcomes.clone());
                // Go back out to the assigned nests.
                let back: Vec<Action> = report
                    .outcomes
                    .iter()
                    .map(|o| Action::Go(o.nest().unwrap()))
                    .collect();
                e.step(&back).unwrap();
            }
            trace
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(124));
    }

    #[test]
    fn quality_of_home_is_none() {
        let env = env(1, 2, 0);
        assert_eq!(env.quality_of(NestId::HOME), None);
        assert_eq!(env.quality_of(NestId::candidate(1)), Some(Quality::GOOD));
        assert_eq!(env.quality_of(NestId::candidate(99)), None);
    }

    #[test]
    fn good_nests_lists_good_only() {
        let config = ColonyConfig::new(4, QualitySpec::good_prefix(5, 2)).seed(0);
        let env = Environment::new(&config).unwrap();
        assert_eq!(
            env.good_nests(),
            vec![NestId::candidate(1), NestId::candidate(2)]
        );
    }

    #[test]
    fn noisy_counts_flow_through_outcomes() {
        let noise = NoiseModel {
            count: CountNoise::uniform_relative(0.5).unwrap(),
            quality: Default::default(),
        };
        let config = ColonyConfig::new(1000, QualitySpec::all_good(1))
            .seed(3)
            .noise(noise);
        let mut env = Environment::new(&config).unwrap();
        let report = env.step(&vec![Action::Search; 1000]).unwrap();
        // All ants are in the single nest (true count 1000); with ±50 %
        // uniform noise some observation should differ from the truth.
        let distinct = report.outcomes.iter().any(|o| o.count() != 1000);
        assert!(distinct, "noise should perturb at least one observation");
        // But the true state is unaffected.
        assert_eq!(env.count(NestId::candidate(1)), 1000);
    }

    #[test]
    fn population_fraction() {
        let mut env = env(10, 1, 0);
        env.step(&[Action::Search; 10]).unwrap();
        assert_eq!(env.population_fraction(NestId::candidate(1)), 1.0);
        assert_eq!(env.population_fraction(NestId::HOME), 0.0);
    }
}
