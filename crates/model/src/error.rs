//! Error types for the house-hunting model.

use std::error::Error;
use std::fmt;

use crate::ids::{AntId, NestId};

/// Errors raised when constructing or driving the model.
///
/// Every variant corresponds to a violation of the formal model of
/// Section 2 of the paper, or to an invalid configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A quality value was NaN or outside `[0, 1]`.
    InvalidQuality {
        /// The offending value.
        value: f64,
    },
    /// The colony size `n` must be at least 1.
    EmptyColony,
    /// The environment must have at least one candidate nest (`k ≥ 1`).
    NoCandidateNests,
    /// The paper assumes at least one nest with quality 1; the
    /// configuration had none and did not opt out of the check.
    NoGoodNest,
    /// The number of actions handed to the executor did not match the
    /// number of ants.
    WrongActionCount {
        /// Number of actions supplied.
        got: usize,
        /// Colony size `n`.
        expected: usize,
    },
    /// An action referenced a nest id outside `{1, …, k}`.
    UnknownNest {
        /// The acting ant.
        ant: AntId,
        /// The out-of-range nest.
        nest: NestId,
    },
    /// An ant tried to `go(i)` or `recruit(·, i)` for a nest it neither
    /// visited nor was recruited to, violating the call's precondition.
    NestNotKnown {
        /// The acting ant.
        ant: AntId,
        /// The unknown nest.
        nest: NestId,
    },
    /// A home-nest id was passed where a candidate nest is required
    /// (`go` and `recruit` only accept `i ∈ {1, …, k}`).
    HomeNotAllowed {
        /// The acting ant.
        ant: AntId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidQuality { value } => {
                write!(f, "quality {value} is not in [0, 1]")
            }
            ModelError::EmptyColony => write!(f, "colony must contain at least one ant"),
            ModelError::NoCandidateNests => {
                write!(f, "environment must contain at least one candidate nest")
            }
            ModelError::NoGoodNest => {
                write!(
                    f,
                    "environment has no good nest (the paper assumes at least one)"
                )
            }
            ModelError::WrongActionCount { got, expected } => {
                write!(f, "got {got} actions for a colony of {expected} ants")
            }
            ModelError::UnknownNest { ant, nest } => {
                write!(f, "{ant} referenced nonexistent nest {nest}")
            }
            ModelError::NestNotKnown { ant, nest } => {
                write!(f, "{ant} has neither visited nor been recruited to {nest}")
            }
            ModelError::HomeNotAllowed { ant } => {
                write!(
                    f,
                    "{ant} passed the home nest where a candidate nest is required"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let cases: Vec<ModelError> = vec![
            ModelError::InvalidQuality { value: 1.5 },
            ModelError::EmptyColony,
            ModelError::NoCandidateNests,
            ModelError::NoGoodNest,
            ModelError::WrongActionCount {
                got: 3,
                expected: 5,
            },
            ModelError::UnknownNest {
                ant: AntId::new(1),
                nest: NestId::candidate(9),
            },
            ModelError::NestNotKnown {
                ant: AntId::new(2),
                nest: NestId::candidate(1),
            },
            ModelError::HomeNotAllowed { ant: AntId::new(0) },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
