//! Environment configuration.
//!
//! A [`ColonyConfig`] describes one house-hunting instance: the colony size
//! `n`, the candidate-nest qualities, the observation-noise model, and the
//! base seed from which every random stream of the execution is derived.
//!
//! # Examples
//!
//! ```
//! use hh_model::{ColonyConfig, Environment, QualitySpec};
//!
//! // 100 ants, 8 candidate nests of which nests 1..=4 are good.
//! let config = ColonyConfig::new(100, QualitySpec::good_prefix(8, 4))
//!     .seed(42);
//! let env = Environment::new(&config)?;
//! assert_eq!(env.n(), 100);
//! assert_eq!(env.k(), 8);
//! # Ok::<(), hh_model::ModelError>(())
//! ```

use crate::error::ModelError;
use crate::nest::Quality;
use crate::noise::NoiseModel;

/// A declarative description of the `k` candidate-nest qualities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QualitySpec {
    /// All `k` nests are good (`q = 1`).
    AllGood {
        /// Number of candidate nests.
        k: usize,
    },
    /// Exactly one good nest among `k`; the rest are bad. `good` is the
    /// 1-based index of the good nest. This is the lower-bound setting of
    /// Section 3.
    SingleGood {
        /// Number of candidate nests.
        k: usize,
        /// 1-based index of the unique good nest.
        good: usize,
    },
    /// The first `good` nests (1-based indices `1..=good`) are good, the
    /// remaining `k − good` are bad. Placement is immaterial because
    /// `search()` is uniform over nests.
    GoodPrefix {
        /// Number of candidate nests.
        k: usize,
        /// Number of good nests.
        good: usize,
    },
    /// Explicit per-nest qualities, index 0 ↦ nest `n₁`.
    Explicit(Vec<Quality>),
}

impl QualitySpec {
    /// All `k` nests good.
    #[must_use]
    pub fn all_good(k: usize) -> Self {
        QualitySpec::AllGood { k }
    }

    /// One good nest (1-based index `good`) among `k`.
    #[must_use]
    pub fn single_good(k: usize, good: usize) -> Self {
        QualitySpec::SingleGood { k, good }
    }

    /// The first `good` of `k` nests good, the rest bad.
    #[must_use]
    pub fn good_prefix(k: usize, good: usize) -> Self {
        QualitySpec::GoodPrefix { k, good }
    }

    /// Materializes the per-nest quality vector (index 0 ↦ nest `n₁`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoCandidateNests`] for `k = 0` and
    /// [`ModelError::UnknownNest`]-free variants validate their own
    /// parameters: a `SingleGood` index outside `1..=k` or a `GoodPrefix`
    /// count above `k` yields [`ModelError::NoGoodNest`].
    pub fn materialize(&self) -> Result<Vec<Quality>, ModelError> {
        let qualities = match self {
            QualitySpec::AllGood { k } => vec![Quality::GOOD; *k],
            QualitySpec::SingleGood { k, good } => {
                if *good == 0 || *good > *k {
                    return Err(ModelError::NoGoodNest);
                }
                let mut q = vec![Quality::BAD; *k];
                q[*good - 1] = Quality::GOOD;
                q
            }
            QualitySpec::GoodPrefix { k, good } => {
                if *good > *k {
                    return Err(ModelError::NoGoodNest);
                }
                let mut q = vec![Quality::BAD; *k];
                for slot in q.iter_mut().take(*good) {
                    *slot = Quality::GOOD;
                }
                q
            }
            QualitySpec::Explicit(q) => q.clone(),
        };
        if qualities.is_empty() {
            return Err(ModelError::NoCandidateNests);
        }
        Ok(qualities)
    }
}

/// Configuration of one house-hunting environment instance.
///
/// Construct with [`ColonyConfig::new`] and chain the optional setters
/// (consuming-builder style).
#[derive(Debug, Clone, PartialEq)]
pub struct ColonyConfig {
    n: usize,
    qualities: QualitySpec,
    noise: NoiseModel,
    allow_no_good: bool,
    reveal_quality_on_go: bool,
    seed: u64,
}

impl ColonyConfig {
    /// Creates a configuration for `n` ants and the given nest qualities,
    /// with exact observations and seed 0.
    #[must_use]
    pub fn new(n: usize, qualities: QualitySpec) -> Self {
        Self {
            n,
            qualities,
            noise: NoiseModel::exact(),
            allow_no_good: false,
            reveal_quality_on_go: false,
            seed: 0,
        }
    }

    /// Sets the base seed from which all random streams are derived.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the observation-noise model (Section 6 extension).
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Permits environments with no good nest. The paper assumes at least
    /// one good nest exists; adversarial tests may opt out.
    #[must_use]
    pub fn allow_no_good(mut self) -> Self {
        self.allow_no_good = true;
        self
    }

    /// Enables the "assessing go" model extension: `go(i)` outcomes carry
    /// the nest's quality in addition to its count, letting recruited ants
    /// re-assess where they were taken. The strict Section 2 model returns
    /// only the count; Section 6's non-binary-quality and fault-tolerance
    /// discussions implicitly need this richer sensing (see DESIGN.md).
    #[must_use]
    pub fn reveal_quality_on_go(mut self) -> Self {
        self.reveal_quality_on_go = true;
        self
    }

    /// Returns whether the "assessing go" extension is enabled.
    #[must_use]
    pub fn go_reveals_quality(&self) -> bool {
        self.reveal_quality_on_go
    }

    /// Returns the colony size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns the quality specification.
    #[must_use]
    pub fn qualities(&self) -> &QualitySpec {
        &self.qualities
    }

    /// Returns the observation-noise model.
    #[must_use]
    pub fn noise_model(&self) -> NoiseModel {
        self.noise
    }

    /// Returns whether a good-nest-free environment is permitted.
    #[must_use]
    pub fn no_good_allowed(&self) -> bool {
        self.allow_no_good
    }

    /// Returns the base seed.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Validates the configuration and materializes the quality vector.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyColony`] if `n = 0`;
    /// * [`ModelError::NoCandidateNests`] if `k = 0`;
    /// * [`ModelError::NoGoodNest`] if no nest is good and
    ///   [`allow_no_good`](Self::allow_no_good) was not set.
    pub fn validated_qualities(&self) -> Result<Vec<Quality>, ModelError> {
        if self.n == 0 {
            return Err(ModelError::EmptyColony);
        }
        let qualities = self.qualities.materialize()?;
        if !self.allow_no_good && !qualities.iter().any(|q| q.is_good()) {
            return Err(ModelError::NoGoodNest);
        }
        Ok(qualities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_good_materializes() {
        let q = QualitySpec::all_good(3).materialize().unwrap();
        assert_eq!(q, vec![Quality::GOOD; 3]);
    }

    #[test]
    fn single_good_places_correctly() {
        let q = QualitySpec::single_good(4, 3).materialize().unwrap();
        assert_eq!(q[0], Quality::BAD);
        assert_eq!(q[1], Quality::BAD);
        assert_eq!(q[2], Quality::GOOD);
        assert_eq!(q[3], Quality::BAD);
    }

    #[test]
    fn single_good_validates_index() {
        assert!(QualitySpec::single_good(4, 0).materialize().is_err());
        assert!(QualitySpec::single_good(4, 5).materialize().is_err());
    }

    #[test]
    fn good_prefix_places_correctly() {
        let q = QualitySpec::good_prefix(5, 2).materialize().unwrap();
        assert!(q[0].is_good());
        assert!(q[1].is_good());
        assert!(!q[2].is_good());
        assert!(!q[4].is_good());
    }

    #[test]
    fn good_prefix_validates_count() {
        assert!(QualitySpec::good_prefix(3, 4).materialize().is_err());
        // Zero good nests is representable; whether it is *valid* depends
        // on ColonyConfig::allow_no_good.
        assert!(QualitySpec::good_prefix(3, 0).materialize().is_ok());
    }

    #[test]
    fn zero_nests_rejected() {
        assert_eq!(
            QualitySpec::all_good(0).materialize(),
            Err(ModelError::NoCandidateNests)
        );
        assert_eq!(
            QualitySpec::Explicit(vec![]).materialize(),
            Err(ModelError::NoCandidateNests)
        );
    }

    #[test]
    fn config_validates_n() {
        let config = ColonyConfig::new(0, QualitySpec::all_good(2));
        assert_eq!(config.validated_qualities(), Err(ModelError::EmptyColony));
    }

    #[test]
    fn config_requires_good_nest_by_default() {
        let config = ColonyConfig::new(5, QualitySpec::good_prefix(3, 0));
        assert_eq!(config.validated_qualities(), Err(ModelError::NoGoodNest));
        let config = ColonyConfig::new(5, QualitySpec::good_prefix(3, 0)).allow_no_good();
        assert!(config.validated_qualities().is_ok());
    }

    #[test]
    fn builder_setters_chain() {
        let config = ColonyConfig::new(10, QualitySpec::all_good(2)).seed(77);
        assert_eq!(config.base_seed(), 77);
        assert_eq!(config.n(), 10);
        assert!(config.noise_model().is_exact());
        assert!(!config.no_good_allowed());
    }

    #[test]
    fn explicit_qualities_pass_through() {
        let q = vec![Quality::new(0.2).unwrap(), Quality::new(0.9).unwrap()];
        let spec = QualitySpec::Explicit(q.clone());
        assert_eq!(spec.materialize().unwrap(), q);
    }
}
