//! The three model calls and their return values.
//!
//! Section 2 of the paper gives each ant exactly three ways to interact
//! with the environment, exactly one of which must be invoked per round:
//!
//! * `search()` — jump to a uniformly random candidate nest and observe its
//!   id, quality, and end-of-round population;
//! * `go(i)` — revisit a known candidate nest and observe its end-of-round
//!   population;
//! * `recruit(b, i)` — return to the home nest and participate in the
//!   recruitment pairing, actively (`b = 1`, leading tandem runs toward
//!   nest `i`) or passively (`b = 0`, waiting to be led).
//!
//! [`Action`] is the request an ant submits for a round; [`Outcome`] is the
//! return value the environment hands back at the end of the round.

use std::fmt;

use crate::ids::NestId;
use crate::nest::Quality;

/// The single model call an ant makes in one round.
///
/// # Examples
///
/// ```
/// use hh_model::{Action, NestId};
///
/// let passive = Action::recruit_passive(NestId::candidate(2));
/// assert!(matches!(passive, Action::Recruit { active: false, .. }));
/// assert_eq!(passive.nest(), Some(NestId::candidate(2)));
/// assert_eq!(Action::Search.nest(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// `search()`: move to a uniformly random candidate nest.
    Search,
    /// `go(i)`: revisit candidate nest `i`. Legal only if the ant has
    /// visited `i` or been recruited to it (see the crate-level notes on
    /// the knowledge-set clarification).
    Go(NestId),
    /// `recruit(b, i)`: return home and join the recruitment pairing.
    Recruit {
        /// `b = 1` (lead tandem runs to `nest`) vs `b = 0` (wait).
        active: bool,
        /// The nest this ant advocates; must be known to the ant.
        nest: NestId,
    },
}

impl Action {
    /// Convenience constructor for `recruit(1, nest)`.
    #[must_use]
    pub const fn recruit_active(nest: NestId) -> Self {
        Action::Recruit { active: true, nest }
    }

    /// Convenience constructor for `recruit(0, nest)`.
    #[must_use]
    pub const fn recruit_passive(nest: NestId) -> Self {
        Action::Recruit {
            active: false,
            nest,
        }
    }

    /// Returns the nest argument of the call, if the call takes one.
    #[must_use]
    pub const fn nest(&self) -> Option<NestId> {
        match self {
            Action::Search => None,
            Action::Go(nest) | Action::Recruit { nest, .. } => Some(*nest),
        }
    }

    /// Returns `true` for `recruit(1, ·)` calls.
    #[must_use]
    pub const fn is_active_recruit(&self) -> bool {
        matches!(self, Action::Recruit { active: true, .. })
    }

    /// Returns `true` for `recruit(·, ·)` calls of either kind.
    #[must_use]
    pub const fn is_recruit(&self) -> bool {
        matches!(self, Action::Recruit { .. })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Search => write!(f, "search()"),
            Action::Go(nest) => write!(f, "go({nest})"),
            Action::Recruit { active, nest } => {
                write!(f, "recruit({}, {nest})", u8::from(*active))
            }
        }
    }
}

/// The environment's return value for one ant's call in one round.
///
/// Population counts are *end-of-round* counts `c(i, r)`, as specified in
/// Section 2, and are reported through the configured observation-noise
/// model (exact by default).
///
/// # Field widths
///
/// Counts are stored as `u32` and qualities as a narrow [`Quality`]
/// (`f32`-backed), which packs the whole enum into 16 bytes — the outcome
/// buffer is the engine's dominant per-round write traffic. A population
/// count is bounded by the colony size `n` (a `u32` in every config path)
/// except after multiplicative observation noise, which can scale it
/// arbitrarily; [`Outcome::narrow_count`] therefore **saturates** at
/// `u32::MAX` rather than wrapping. Saturation is unreachable for exact
/// counts and only reachable under noise models that inflate a count past
/// ~4.29 × 10⁹ — far beyond any physical colony.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Return value of `search()`: the triple `⟨i, q(i), c(i, r)⟩`.
    Search {
        /// The nest the ant landed in.
        nest: NestId,
        /// The nest's quality as perceived by this ant (possibly noisy).
        quality: Quality,
        /// The nest's end-of-round population as perceived (possibly noisy).
        count: u32,
    },
    /// Return value of `go(i)`: the count `c(i, r)`.
    Go {
        /// The revisited nest's end-of-round population as perceived.
        count: u32,
        /// The nest's quality, present only under the "assessing go" model
        /// extension (see [`Environment::go_reveals_quality`]); `None` in
        /// the strict Section 2 model.
        ///
        /// [`Environment::go_reveals_quality`]: crate::Environment::go_reveals_quality
        quality: Option<Quality>,
    },
    /// Return value of `recruit(b, i)`: the pair `⟨j, c(0, r)⟩`.
    Recruit {
        /// The nest id `j`: the recruiter's advocated nest if this ant was
        /// recruited, otherwise the ant's own input `i`.
        nest: NestId,
        /// The home nest's end-of-round population as perceived.
        home_count: u32,
    },
}

impl Outcome {
    /// Narrows a population count into the outcome's `u32` field width,
    /// saturating at `u32::MAX`.
    ///
    /// Exact counts are bounded by the colony size and never saturate;
    /// only noise-inflated counts can reach the ceiling, and for those a
    /// pinned maximum is the honest reading of "more ants than the model
    /// can distinguish".
    #[must_use]
    pub const fn narrow_count(count: usize) -> u32 {
        if count > u32::MAX as usize {
            u32::MAX
        } else {
            count as u32
        }
    }

    /// Returns the count carried by the outcome (`c(i, r)` or `c(0, r)`).
    #[must_use]
    pub const fn count(&self) -> u32 {
        match self {
            Outcome::Search { count, .. } | Outcome::Go { count, .. } => *count,
            Outcome::Recruit { home_count, .. } => *home_count,
        }
    }

    /// Returns the nest id carried by the outcome, if any.
    #[must_use]
    pub const fn nest(&self) -> Option<NestId> {
        match self {
            Outcome::Search { nest, .. } | Outcome::Recruit { nest, .. } => Some(*nest),
            Outcome::Go { .. } => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Search {
                nest,
                quality,
                count,
            } => {
                write!(f, "⟨{nest}, q={quality}, c={count}⟩")
            }
            Outcome::Go { count, quality } => match quality {
                Some(q) => write!(f, "⟨c={count}, q={q}⟩"),
                None => write!(f, "⟨c={count}⟩"),
            },
            Outcome::Recruit { nest, home_count } => {
                write!(f, "⟨{nest}, c₀={home_count}⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let n = NestId::candidate(1);
        assert!(Action::recruit_active(n).is_active_recruit());
        assert!(!Action::recruit_passive(n).is_active_recruit());
        assert!(Action::recruit_passive(n).is_recruit());
        assert!(!Action::Search.is_recruit());
        assert!(!Action::Go(n).is_recruit());
    }

    #[test]
    fn nest_accessor() {
        let n = NestId::candidate(4);
        assert_eq!(Action::Go(n).nest(), Some(n));
        assert_eq!(Action::recruit_active(n).nest(), Some(n));
        assert_eq!(Action::Search.nest(), None);
    }

    #[test]
    fn action_display() {
        let n = NestId::candidate(2);
        assert_eq!(Action::Search.to_string(), "search()");
        assert_eq!(Action::Go(n).to_string(), "go(n2)");
        assert_eq!(Action::recruit_active(n).to_string(), "recruit(1, n2)");
        assert_eq!(Action::recruit_passive(n).to_string(), "recruit(0, n2)");
    }

    #[test]
    fn outcome_accessors() {
        let search = Outcome::Search {
            nest: NestId::candidate(1),
            quality: Quality::GOOD,
            count: 10,
        };
        assert_eq!(search.count(), 10);
        assert_eq!(search.nest(), Some(NestId::candidate(1)));

        let go = Outcome::Go {
            count: 3,
            quality: None,
        };
        assert_eq!(go.count(), 3);
        assert_eq!(go.nest(), None);

        let recruit = Outcome::Recruit {
            nest: NestId::candidate(2),
            home_count: 7,
        };
        assert_eq!(recruit.count(), 7);
        assert_eq!(recruit.nest(), Some(NestId::candidate(2)));
    }

    /// The `u32` narrowing contract: in-range counts pass through exactly
    /// and out-of-range counts pin at `u32::MAX` instead of wrapping.
    #[test]
    fn narrow_count_saturates_at_u32_max() {
        assert_eq!(Outcome::narrow_count(0), 0);
        assert_eq!(Outcome::narrow_count(4096), 4096);
        assert_eq!(Outcome::narrow_count(u32::MAX as usize), u32::MAX);
        assert_eq!(Outcome::narrow_count(u32::MAX as usize + 1), u32::MAX);
        assert_eq!(Outcome::narrow_count(usize::MAX), u32::MAX);
    }

    /// The narrowing left `Outcome` a compact `Copy` value: the outcome
    /// buffer is the round loop's dominant write traffic, so the width is
    /// part of the performance contract.
    #[test]
    fn outcome_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Outcome>(), 16);
    }

    #[test]
    fn outcome_display_is_nonempty() {
        let outcomes = [
            Outcome::Search {
                nest: NestId::candidate(1),
                quality: Quality::BAD,
                count: 0,
            },
            Outcome::Go {
                count: 1,
                quality: Some(Quality::GOOD),
            },
            Outcome::Recruit {
                nest: NestId::candidate(1),
                home_count: 2,
            },
        ];
        for o in outcomes {
            assert!(!o.to_string().is_empty());
        }
    }
}
