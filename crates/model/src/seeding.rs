//! Deterministic seed derivation for reproducible executions.
//!
//! A single trial is driven by many independent random streams: the
//! environment (search placement, recruitment pairing, observation noise),
//! each ant's private coin flips, and the perturbation plans (crash
//! schedules, delay draws). To make a whole execution reproducible from one
//! `u64` while keeping the streams statistically independent, every stream
//! seed is derived from the base seed with a SplitMix64 mix, keyed by a
//! stream label.
//!
//! SplitMix64 is the standard seeding generator recommended by the xoshiro
//! authors; its output is equidistributed over `u64`, so distinct
//! `(base, label, index)` triples yield uncorrelated seeds.
//!
//! # Examples
//!
//! ```
//! use hh_model::seeding::{derive_seed, SeedSequence, StreamKind};
//!
//! let base = 42;
//! let env = derive_seed(base, StreamKind::Environment, 0);
//! let ant0 = derive_seed(base, StreamKind::Agent, 0);
//! let ant1 = derive_seed(base, StreamKind::Agent, 1);
//! assert_ne!(env, ant0);
//! assert_ne!(ant0, ant1);
//!
//! // Or draw an open-ended sequence of seeds:
//! let mut seq = SeedSequence::new(base);
//! let (a, b) = (seq.next_seed(), seq.next_seed());
//! assert_ne!(a, b);
//! ```

/// The golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Applies the SplitMix64 output mix to `state`.
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Labels for the independent random streams of one execution.
///
/// Adding a variant is backwards compatible for reproducibility as long as
/// existing discriminants keep their values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StreamKind {
    /// The environment stream: search placement, recruitment pairing.
    Environment,
    /// Observation-noise draws (kept separate from the environment so that
    /// enabling noise does not change where ants search).
    Noise,
    /// One stream per agent, indexed by ant id.
    Agent,
    /// Crash-schedule sampling.
    Crash,
    /// Per-round delay (asynchrony) draws.
    Delay,
    /// Scratch stream for tests and ad-hoc tooling.
    Auxiliary,
    /// One environment stream per ant, indexed by ant id: search
    /// placement and any other environment draw attributable to a single
    /// ant. Keeping these per ant (instead of on one shared environment
    /// stream) makes a round's outcome independent of the order ants are
    /// processed in — the determinism contract behind intra-round
    /// parallelism.
    AgentEnvironment,
    /// One observation-noise stream per ant, indexed by ant id. Separate
    /// from [`StreamKind::AgentEnvironment`] so that enabling noise does
    /// not change where ants search.
    AgentNoise,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Environment => 1,
            StreamKind::Noise => 2,
            StreamKind::Agent => 3,
            StreamKind::Crash => 4,
            StreamKind::Delay => 5,
            StreamKind::Auxiliary => 6,
            StreamKind::AgentEnvironment => 7,
            StreamKind::AgentNoise => 8,
        }
    }
}

/// Derives the seed for stream `(kind, index)` from a base trial seed.
///
/// The derivation is three chained SplitMix64 mixes, so nearby bases and
/// indices map to unrelated seeds.
///
/// # Examples
///
/// ```
/// use hh_model::seeding::{derive_seed, StreamKind};
/// // Deterministic: the same inputs always give the same seed.
/// assert_eq!(
///     derive_seed(7, StreamKind::Agent, 3),
///     derive_seed(7, StreamKind::Agent, 3),
/// );
/// ```
#[must_use]
pub fn derive_seed(base: u64, kind: StreamKind, index: u64) -> u64 {
    let a = splitmix64(base);
    let b = splitmix64(a ^ kind.tag().wrapping_mul(GOLDEN_GAMMA));
    splitmix64(b ^ index.wrapping_mul(GOLDEN_GAMMA))
}

/// A per-row key for counter-based draws.
///
/// Where [`derive_seed`] feeds *stateful* generators (one xoshiro stream
/// per component), a `DrawKey` feeds the stateless keyed hash
/// ([`rand::rngs::CounterRng::hash`]): every draw is a pure function of
/// `(key, counter)`, with the round number as the counter. That makes
/// per-row draws order-independent — a dense column sweep, a chunked
/// parallel pass, and the scalar match-per-ant oracle all issue the same
/// words by construction — and lets a whole column of draws compile down
/// to a branch-free vectorizable loop.
///
/// Keys are `Copy` values, not streams: cloning an agent clones its key,
/// and two agents with the same key make identical draws forever. Derive
/// one key per ant via [`DrawKey::derive`].
///
/// # Examples
///
/// ```
/// use hh_model::seeding::{DrawKey, StreamKind};
///
/// let key = DrawKey::derive(42, StreamKind::Agent, 3);
/// // Draws are pure: the same (key, round) pair always agrees.
/// assert_eq!(key.coin(10, 0.5), key.coin(10, 0.5));
/// // Monotone in p: a draw that passes at p keeps passing at higher p.
/// if key.coin(10, 0.25) {
///     assert!(key.coin(10, 0.75));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DrawKey(u64);

impl DrawKey {
    /// Builds a key directly from an already-mixed stream seed.
    ///
    /// The seed is passed through one extra [`splitmix64`] round so that
    /// callers holding *sequential* raw seeds (tests, ad-hoc tooling)
    /// still get decorrelated keys.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self(splitmix64(seed))
    }

    /// Derives the key for stream `(kind, index)` from a base trial seed,
    /// mirroring [`derive_seed`].
    #[must_use]
    pub fn derive(base: u64, kind: StreamKind, index: u64) -> Self {
        Self::from_seed(derive_seed(base, kind, index))
    }

    /// Returns the raw 64-bit word for draw `counter` under this key.
    #[inline]
    #[must_use]
    pub fn word(self, counter: u64) -> u64 {
        rand::rngs::CounterRng::hash(self.0, counter)
    }

    /// Returns a Bernoulli(`p`) draw for `counter` under this key.
    ///
    /// Uses the same word→unit-interval mapping as
    /// [`rand::RngExt::random_bool`] (top 53 bits), so a keyed draw and a
    /// stream draw from the same word agree bit for bit. `p <= 0.0` (and
    /// NaN) always yields `false`; `p >= 1.0` always yields `true`.
    #[inline]
    #[must_use]
    pub fn coin(self, counter: u64, p: f64) -> bool {
        let unit = (self.word(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// An open-ended sequence of derived seeds.
///
/// Useful when a component needs an unbounded number of sub-streams (for
/// example one seed per trial in a sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Self {
            state: splitmix64(base),
        }
    }

    /// Returns the next seed in the sequence.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        let mut seen = BTreeSet::new();
        for kind in [
            StreamKind::Environment,
            StreamKind::Noise,
            StreamKind::Agent,
            StreamKind::Crash,
            StreamKind::Delay,
            StreamKind::Auxiliary,
            StreamKind::AgentEnvironment,
            StreamKind::AgentNoise,
        ] {
            for index in 0..100 {
                assert!(
                    seen.insert(derive_seed(123, kind, index)),
                    "collision for {kind:?}/{index}"
                );
            }
        }
    }

    #[test]
    fn derive_seed_distinguishes_bases() {
        let a = derive_seed(1, StreamKind::Agent, 0);
        let b = derive_seed(2, StreamKind::Agent, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_yields_distinct_seeds() {
        let mut seq = SeedSequence::new(99);
        let mut seen = BTreeSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(seq.next_seed()));
        }
    }

    #[test]
    fn sequence_is_reproducible() {
        let mut a = SeedSequence::new(5);
        let mut b = SeedSequence::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn draw_key_matches_the_counter_hash() {
        // `word` is exactly the vendored keyed hash over the mixed seed —
        // the bit-identity bridge between scalar agents (which call
        // `coin`) and the dense plane fill (which may batch `word`s).
        let key = DrawKey::from_seed(12345);
        for round in 0..32 {
            assert_eq!(
                key.word(round),
                rand::rngs::CounterRng::hash(splitmix64(12345), round)
            );
        }
    }

    #[test]
    fn draw_key_coin_matches_a_stream_draw_from_the_same_word() {
        use rand::{RngExt, SeedableRng};
        // A CounterRng seeded with the key's internal word replays the
        // same hash sequence, so `random_bool` through the shim and
        // `coin` through the key must agree on every round.
        let key = DrawKey::from_seed(777);
        let mut rng = rand::rngs::CounterRng::seed_from_u64(splitmix64(777));
        for round in 0..256 {
            assert_eq!(
                key.coin(round, 0.37),
                rng.random_bool(0.37),
                "round {round}"
            );
        }
    }

    #[test]
    fn draw_key_coin_handles_degenerate_probabilities() {
        let key = DrawKey::from_seed(9);
        for round in 0..64 {
            assert!(!key.coin(round, 0.0));
            assert!(!key.coin(round, -1.0));
            assert!(!key.coin(round, f64::NAN));
            assert!(key.coin(round, 1.0));
        }
    }

    #[test]
    fn sequential_seeds_give_decorrelated_keys() {
        // Tests seed agents with consecutive integers; the extra mix in
        // `from_seed` must keep their coin flips independent-looking.
        let heads: Vec<usize> = (0..4u64)
            .map(|seed| {
                let key = DrawKey::from_seed(seed);
                (0..2_000).filter(|&round| key.coin(round, 0.5)).count()
            })
            .collect();
        for (seed, &count) in heads.iter().enumerate() {
            assert!(
                (900..=1_100).contains(&count),
                "seed {seed}: {count}/2000 heads"
            );
        }
    }

    #[test]
    fn derive_distinguishes_key_streams() {
        let mut seen = BTreeSet::new();
        for kind in [StreamKind::Agent, StreamKind::AgentEnvironment] {
            for index in 0..100 {
                assert!(seen.insert(DrawKey::derive(123, kind, index)));
            }
        }
    }

    #[test]
    fn seeds_look_uniform_in_low_bits() {
        // Cheap sanity check that derived seeds are not obviously biased:
        // the low bit should be set roughly half the time.
        let ones = (0..10_000)
            .filter(|&i| derive_seed(7, StreamKind::Agent, i) & 1 == 1)
            .count();
        assert!((4_500..=5_500).contains(&ones), "low-bit count {ones}");
    }
}
