//! Deterministic seed derivation for reproducible executions.
//!
//! A single trial is driven by many independent random streams: the
//! environment (search placement, recruitment pairing, observation noise),
//! each ant's private coin flips, and the perturbation plans (crash
//! schedules, delay draws). To make a whole execution reproducible from one
//! `u64` while keeping the streams statistically independent, every stream
//! seed is derived from the base seed with a SplitMix64 mix, keyed by a
//! stream label.
//!
//! SplitMix64 is the standard seeding generator recommended by the xoshiro
//! authors; its output is equidistributed over `u64`, so distinct
//! `(base, label, index)` triples yield uncorrelated seeds.
//!
//! # Examples
//!
//! ```
//! use hh_model::seeding::{derive_seed, SeedSequence, StreamKind};
//!
//! let base = 42;
//! let env = derive_seed(base, StreamKind::Environment, 0);
//! let ant0 = derive_seed(base, StreamKind::Agent, 0);
//! let ant1 = derive_seed(base, StreamKind::Agent, 1);
//! assert_ne!(env, ant0);
//! assert_ne!(ant0, ant1);
//!
//! // Or draw an open-ended sequence of seeds:
//! let mut seq = SeedSequence::new(base);
//! let (a, b) = (seq.next_seed(), seq.next_seed());
//! assert_ne!(a, b);
//! ```

/// The golden-ratio increment used by SplitMix64.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Applies the SplitMix64 output mix to `state`.
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Labels for the independent random streams of one execution.
///
/// Adding a variant is backwards compatible for reproducibility as long as
/// existing discriminants keep their values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StreamKind {
    /// The environment stream: search placement, recruitment pairing.
    Environment,
    /// Observation-noise draws (kept separate from the environment so that
    /// enabling noise does not change where ants search).
    Noise,
    /// One stream per agent, indexed by ant id.
    Agent,
    /// Crash-schedule sampling.
    Crash,
    /// Per-round delay (asynchrony) draws.
    Delay,
    /// Scratch stream for tests and ad-hoc tooling.
    Auxiliary,
    /// One environment stream per ant, indexed by ant id: search
    /// placement and any other environment draw attributable to a single
    /// ant. Keeping these per ant (instead of on one shared environment
    /// stream) makes a round's outcome independent of the order ants are
    /// processed in — the determinism contract behind intra-round
    /// parallelism.
    AgentEnvironment,
    /// One observation-noise stream per ant, indexed by ant id. Separate
    /// from [`StreamKind::AgentEnvironment`] so that enabling noise does
    /// not change where ants search.
    AgentNoise,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Environment => 1,
            StreamKind::Noise => 2,
            StreamKind::Agent => 3,
            StreamKind::Crash => 4,
            StreamKind::Delay => 5,
            StreamKind::Auxiliary => 6,
            StreamKind::AgentEnvironment => 7,
            StreamKind::AgentNoise => 8,
        }
    }
}

/// Derives the seed for stream `(kind, index)` from a base trial seed.
///
/// The derivation is three chained SplitMix64 mixes, so nearby bases and
/// indices map to unrelated seeds.
///
/// # Examples
///
/// ```
/// use hh_model::seeding::{derive_seed, StreamKind};
/// // Deterministic: the same inputs always give the same seed.
/// assert_eq!(
///     derive_seed(7, StreamKind::Agent, 3),
///     derive_seed(7, StreamKind::Agent, 3),
/// );
/// ```
#[must_use]
pub fn derive_seed(base: u64, kind: StreamKind, index: u64) -> u64 {
    let a = splitmix64(base);
    let b = splitmix64(a ^ kind.tag().wrapping_mul(GOLDEN_GAMMA));
    splitmix64(b ^ index.wrapping_mul(GOLDEN_GAMMA))
}

/// An open-ended sequence of derived seeds.
///
/// Useful when a component needs an unbounded number of sub-streams (for
/// example one seed per trial in a sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        Self {
            state: splitmix64(base),
        }
    }

    /// Returns the next seed in the sequence.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        let mut seen = BTreeSet::new();
        for kind in [
            StreamKind::Environment,
            StreamKind::Noise,
            StreamKind::Agent,
            StreamKind::Crash,
            StreamKind::Delay,
            StreamKind::Auxiliary,
            StreamKind::AgentEnvironment,
            StreamKind::AgentNoise,
        ] {
            for index in 0..100 {
                assert!(
                    seen.insert(derive_seed(123, kind, index)),
                    "collision for {kind:?}/{index}"
                );
            }
        }
    }

    #[test]
    fn derive_seed_distinguishes_bases() {
        let a = derive_seed(1, StreamKind::Agent, 0);
        let b = derive_seed(2, StreamKind::Agent, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_yields_distinct_seeds() {
        let mut seq = SeedSequence::new(99);
        let mut seen = BTreeSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(seq.next_seed()));
        }
    }

    #[test]
    fn sequence_is_reproducible() {
        let mut a = SeedSequence::new(5);
        let mut b = SeedSequence::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn seeds_look_uniform_in_low_bits() {
        // Cheap sanity check that derived seeds are not obviously biased:
        // the low bit should be set roughly half the time.
        let ones = (0..10_000)
            .filter(|&i| derive_seed(7, StreamKind::Agent, i) & 1 == 1)
            .count();
        assert!((4_500..=5_500).contains(&ones), "low-bit count {ones}");
    }
}
