//! A compact fixed-capacity bit set.
//!
//! The environment tracks, for every ant, the set of candidate nests the ant
//! *knows* (has visited or been recruited to) in order to enforce the
//! legality of [`go`](crate::Action::Go) calls. Colonies can have tens of
//! thousands of ants, so the per-ant knowledge set is stored as a bit set
//! rather than a hash set.
//!
//! # Examples
//!
//! ```
//! use hh_model::util::BitSet;
//!
//! let mut set = BitSet::new(100);
//! set.insert(3);
//! set.insert(97);
//! assert!(set.contains(3));
//! assert!(!set.contains(4));
//! assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 97]);
//! ```

/// A fixed-capacity set of `usize` values in `0..capacity`, backed by a
/// `Vec<u64>` bit array.
///
/// All operations other than construction are `O(1)` or `O(capacity/64)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hh_model::util::BitSet;
    /// let set = BitSet::new(10);
    /// assert!(set.is_empty());
    /// assert_eq!(set.capacity(), 10);
    /// ```
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Returns the maximum value (exclusive) this set can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of values currently in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit set insert out of range: {value} >= {}",
            self.capacity
        );
        let (word, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `value`, returning `true` if it was present.
    ///
    /// Out-of-range values are reported as absent rather than panicking so
    /// that removal mirrors [`contains`](Self::contains).
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (word, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Returns `true` if `value` is in the set. Out-of-range values are
    /// never contained.
    #[must_use]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Removes all values from the set.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Returns the smallest value in the set, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use hh_model::util::BitSet;
    /// let mut set = BitSet::new(8);
    /// assert_eq!(set.first(), None);
    /// set.insert(5);
    /// set.insert(2);
    /// assert_eq!(set.first(), Some(2));
    /// ```
    #[must_use]
    pub fn first(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Returns an iterator over the values in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for value in iter {
            self.insert(value);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the values of a [`BitSet`] in ascending order.
///
/// Produced by [`BitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

/// A dense matrix of fixed-capacity bit sets: `rows` sets over values in
/// `0..capacity`, backed by **one** contiguous `Vec<u64>`.
///
/// The environment keeps one knowledge set per ant; storing them as
/// per-ant [`BitSet`]s means one heap allocation and one pointer chase
/// per ant — poison for the executor's per-round legality checks and
/// recruitment learning loop. `BitMatrix` packs all rows back to back
/// (for `capacity ≤ 64`, one word per ant), so a colony's entire
/// knowledge state is a single cache-friendly allocation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    capacity: usize,
}

impl BitMatrix {
    /// Creates `rows` empty sets, each able to hold values in
    /// `0..capacity`.
    #[must_use]
    pub fn new(rows: usize, capacity: usize) -> Self {
        let words_per_row = capacity.div_ceil(64).max(1);
        Self {
            words: vec![0; rows * words_per_row],
            words_per_row,
            capacity,
        }
    }

    /// The number of rows (sets).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.words.len() / self.words_per_row
    }

    /// The maximum value (exclusive) each row can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if row `row` contains `value`. Out-of-range values
    /// are never contained.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    #[must_use]
    pub fn contains(&self, row: usize, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[row * self.words_per_row + value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Inserts `value` into row `row`, returning `true` if it was fresh.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, row: usize, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit matrix insert out of range: {value} >= {}",
            self.capacity
        );
        let word = &mut self.words[row * self.words_per_row + value / 64];
        let mask = 1u64 << (value % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Returns the smallest value in row `row`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn first(&self, row: usize) -> Option<usize> {
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .enumerate()
            .find(|(_, &word)| word != 0)
            .map(|(w, &word)| w * 64 + word.trailing_zeros() as usize)
    }

    /// Returns the number of values in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn row_len(&self, row: usize) -> usize {
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .map(|word| word.count_ones() as usize)
            .sum()
    }

    /// A mutable view over all rows, splittable into disjoint row bands
    /// for chunked (parallel) processing — see [`RowBandMut`].
    #[must_use]
    pub fn rows_mut(&mut self) -> RowBandMut<'_> {
        RowBandMut {
            words: &mut self.words,
            words_per_row: self.words_per_row,
            capacity: self.capacity,
        }
    }

    /// Iterates the values of row `row` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| {
                let mut rest = word;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        return None;
                    }
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(w * 64 + bit)
                })
            })
    }
}

/// A mutable view over a contiguous band of [`BitMatrix`] rows.
///
/// Rows are word-aligned (each row owns at least one whole `u64`), so
/// bands over disjoint row ranges never alias: [`RowBandMut::split_at`]
/// partitions a band into two independent bands that can be mutated
/// concurrently. Row indices are band-local (the first row of a band is
/// row 0).
#[derive(Debug)]
pub struct RowBandMut<'a> {
    words: &'a mut [u64],
    words_per_row: usize,
    capacity: usize,
}

impl<'a> RowBandMut<'a> {
    /// The number of rows in this band.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.words.len() / self.words_per_row
    }

    /// Splits the band into `[0, row)` and `[row, rows())`.
    ///
    /// # Panics
    ///
    /// Panics if `row > rows()`.
    #[must_use]
    pub fn split_at(self, row: usize) -> (RowBandMut<'a>, RowBandMut<'a>) {
        let (head, tail) = self.words.split_at_mut(row * self.words_per_row);
        (
            RowBandMut {
                words: head,
                words_per_row: self.words_per_row,
                capacity: self.capacity,
            },
            RowBandMut {
                words: tail,
                words_per_row: self.words_per_row,
                capacity: self.capacity,
            },
        )
    }

    /// Returns `true` if band-local row `row` contains `value`.
    /// Out-of-range values are never contained.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range for the band.
    #[inline]
    #[must_use]
    pub fn contains(&self, row: usize, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[row * self.words_per_row + value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Inserts `value` into band-local row `row`, returning `true` if it
    /// was fresh.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range for the band or
    /// `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, row: usize, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "row band insert out of range: {value} >= {}",
            self.capacity
        );
        let word = &mut self.words[row * self.words_per_row + value / 64];
        let mask = 1u64 << (value % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Returns the smallest value in band-local row `row`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range for the band.
    #[must_use]
    pub fn first(&self, row: usize) -> Option<usize> {
        let start = row * self.words_per_row;
        self.words[start..start + self.words_per_row]
            .iter()
            .enumerate()
            .find(|(_, &word)| word != 0)
            .map(|(w, &word)| w * 64 + word.trailing_zeros() as usize)
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitMatrix")
            .field("rows", &self.rows())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let set = BitSet::new(100);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.capacity(), 100);
        assert_eq!(set.first(), None);
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn insert_and_contains() {
        let mut set = BitSet::new(130);
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "double insert reports not-fresh");
        assert_eq!(set.len(), 4);
        for v in [0, 63, 64, 129] {
            assert!(set.contains(v), "expected {v} present");
        }
        assert!(!set.contains(1));
        assert!(!set.contains(500), "out of range is absent");
    }

    #[test]
    fn remove_values() {
        let mut set = BitSet::new(70);
        set.insert(10);
        set.insert(65);
        assert!(set.remove(10));
        assert!(!set.remove(10), "second remove is a no-op");
        assert!(!set.remove(999), "out of range remove is a no-op");
        assert_eq!(set.len(), 1);
        assert!(set.contains(65));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut set = BitSet::new(300);
        let values = [7usize, 0, 299, 64, 128, 63, 65];
        set.extend(values.iter().copied());
        let mut expected: Vec<usize> = values.to_vec();
        expected.sort_unstable();
        assert_eq!(set.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn first_returns_minimum() {
        let mut set = BitSet::new(200);
        set.insert(150);
        assert_eq!(set.first(), Some(150));
        set.insert(3);
        assert_eq!(set.first(), Some(3));
        set.remove(3);
        assert_eq!(set.first(), Some(150));
    }

    #[test]
    fn clear_empties_the_set() {
        let mut set = BitSet::new(64);
        set.insert(1);
        set.insert(2);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut set = BitSet::new(4);
        set.insert(4);
    }

    #[test]
    fn zero_capacity_set_works() {
        let set = BitSet::new(0);
        assert!(set.is_empty());
        assert!(!set.contains(0));
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn bit_matrix_rows_are_independent() {
        let mut m = BitMatrix::new(4, 70);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.capacity(), 70);
        assert!(m.insert(0, 3));
        assert!(m.insert(0, 65));
        assert!(m.insert(2, 3));
        assert!(!m.insert(0, 3), "double insert reports not-fresh");
        assert!(m.contains(0, 3) && m.contains(0, 65) && m.contains(2, 3));
        assert!(!m.contains(1, 3) && !m.contains(3, 65));
        assert!(!m.contains(0, 500), "out of range is absent");
        assert_eq!(m.first(0), Some(3));
        assert_eq!(m.first(1), None);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), vec![3, 65]);
        assert_eq!(m.iter_row(1).count(), 0);
    }

    #[test]
    fn bit_matrix_matches_bitset_behaviour() {
        let mut matrix = BitMatrix::new(1, 130);
        let mut set = BitSet::new(130);
        for value in [0usize, 63, 64, 129, 7, 64] {
            assert_eq!(matrix.insert(0, value), set.insert(value));
        }
        assert_eq!(
            matrix.iter_row(0).collect::<Vec<_>>(),
            set.iter().collect::<Vec<_>>()
        );
        assert_eq!(matrix.first(0), set.first());
        assert_eq!(matrix.row_len(0), set.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_matrix_insert_out_of_range_panics() {
        let mut m = BitMatrix::new(2, 4);
        m.insert(0, 4);
    }

    #[test]
    fn debug_is_never_empty() {
        let set = BitSet::new(4);
        assert_eq!(format!("{set:?}"), "{}");
        let mut set = BitSet::new(4);
        set.insert(2);
        assert_eq!(format!("{set:?}"), "{2}");
    }
}
