//! Small self-contained utility data structures used by the model.

mod bitset;

pub use bitset::{BitMatrix, BitSet, Iter as BitSetIter, RowBandMut};
