//! The repo-specific rule set. See the crate docs for the determinism
//! contract each rule encodes; this module is the machine-checkable
//! half of that contract.

use crate::lexer::{cfg_test_regions, fn_regions, impl_regions, lex, Lexed, TokenKind};
use crate::report::Diagnostic;

/// The one file allowed to contain the `unsafe` keyword.
pub const UNSAFE_SANCTUARY: &str = "crates/sim/src/pool.rs";

/// The crate whose root declares `#![deny(unsafe_code)]` instead of
/// `#![forbid(unsafe_code)]` (its `pool` module carves out the single
/// reviewed `#[allow]`; `forbid` cannot be overridden).
pub const DENY_UNSAFE_ROOT: &str = "crates/sim/src/lib.rs";

/// Crates whose sources feed deterministic simulation state. The
/// determinism lints (hash containers, wall clock, ambient randomness)
/// apply to non-test code in these path prefixes.
pub const ENGINE_PREFIXES: [&str; 3] = ["crates/model/src/", "crates/core/src/", "crates/sim/src/"];

/// Files whose *entire* non-test body runs under (or dispatches onto)
/// the intra-round worker pool.
pub const CHUNK_PHASE_FILES: [&str; 1] = ["crates/sim/src/executor.rs"];

/// Types whose `impl` blocks are chunk-phase code wherever they live:
/// the per-chunk round views workers iterate in parallel, the SoA
/// snapshot-column bands the executor splits across workers, and the
/// per-algorithm agent-state tables (`hh_core::table`) whose bands run
/// the batched choose/observe passes under the pool. Their impls must
/// draw only from per-ant randomness (the agent tables carry one
/// `DrawKey` per row; keyed draws are pure functions of `(key, round)`,
/// so chunk splits cannot reorder them).
pub const CHUNK_PHASE_TYPES: [&str; 10] = [
    "RelocationChunk",
    "OutcomeChunk",
    "ColumnsMut",
    "SnapshotColumns",
    "AgentColumns",
    "AgentColumnsMut",
    "UrnColumns",
    "UrnColumnsMut",
    "DenseRows",
    "DenseRowsMut",
];

/// Types whose impls form the *batched round bodies* of the
/// per-algorithm agent-state tables: since the round-level draw planes,
/// every coin a batched round consumes must come from the designated
/// plane-fill pass or the shared scalar state machine, never an inline
/// draw call. (The environment's chunk views — `RelocationChunk`,
/// `OutcomeChunk` — draw their per-ant streams in place by design and
/// are deliberately not listed.)
pub const BATCHED_ROUND_TYPES: [&str; 6] = [
    "AgentColumns",
    "AgentColumnsMut",
    "UrnColumns",
    "UrnColumnsMut",
    "DenseRows",
    "DenseRowsMut",
];

/// Method names that advance an RNG stream on their receiver. A call to
/// one of these inside a batched round body (outside the designated
/// fill pass) is raw per-row RNG access: it desynchronizes the row's
/// stream from the scalar oracle's.
pub const RAW_DRAW_METHODS: [&str; 6] = [
    "random_bool",
    "random_range",
    "random_ratio",
    "next_u32",
    "next_u64",
    "fill_bytes",
];

/// Method names of the counter-based `DrawKey` API
/// (`hh_model::seeding::DrawKey::coin`/`word`). Keyed draws are pure —
/// they cannot desynchronize a stream — but an ad-hoc call inside a
/// batched round body duplicates the designated draw site's logic
/// (probability clamp, round-as-counter convention) and diverges from
/// the scalar oracle the first time either copy changes, so they are
/// confined to the same designated sites as the stateful draws.
pub const KEYED_DRAW_METHODS: [&str; 2] = ["coin", "word"];

/// The designated plane-fill passes: the only functions in which
/// batched round bodies may evaluate per-row draws. The fill pass
/// mirrors the scalar oracle's single draw site
/// (`UrnRefMut::recruit_draw`) row by row, so confining draws to it is
/// what keeps the draw planes bit-identical to the oracle by
/// construction.
pub const DRAW_PLANE_FILL_FNS: [&str; 1] = ["fill_draw_plane"];

/// The only `StreamKind` variants chunk-phase code may draw from: one
/// stream per ant, so outcomes cannot depend on ant processing order.
pub const PER_ANT_STREAMS: [&str; 2] = ["AgentEnvironment", "AgentNoise"];

/// Per-file allowlists for the atomic-ordering audit: every
/// `Ordering::<variant>` token in these files must use a listed variant
/// *and* carry an attached `// ordering:` justification comment.
pub const ORDERING_ALLOWLIST: [(&str, &[&str]); 2] = [
    // The fork–join pool's epoch/done protocol is pure release/acquire
    // handshakes (plus one AcqRel swap on the panic flag); SeqCst would
    // paper over a misunderstanding and Relaxed would be a bug.
    (
        "crates/sim/src/pool.rs",
        &["Acquire", "Release", "AcqRel", "Relaxed"],
    ),
    // The trial runner needs acquire/release only for the abort flag;
    // the work-stealing cursor is intentionally relaxed.
    (
        "crates/sim/src/runner.rs",
        &["Acquire", "Release", "Relaxed"],
    ),
];

/// Rules a `hh-lint: allow(<rule>)` comment may waive. Soundness rules
/// (unsafe confinement, ordering audit, headers) are deliberately
/// unwaivable: changing those is a policy edit in this file, reviewed
/// as such.
pub const WAIVABLE_RULES: [&str; 5] = [
    "hash-container",
    "wall-clock",
    "ambient-randomness",
    "shared-stream",
    "raw-row-draw",
];

/// Lints one file's source as if it lived at repo-relative `path`
/// (forward slashes). The path decides which rules apply; fixture tests
/// use virtual paths to exercise every rule.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut diags = Vec::new();
    let test_regions = cfg_test_regions(&lexed);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| a <= line && line <= b);
    let waived = |rule: &str, line: u32| {
        WAIVABLE_RULES.contains(&rule)
            && lexed.attached_comment_contains(line, &format!("hh-lint: allow({rule})"))
    };
    let is_engine = ENGINE_PREFIXES.iter().any(|p| path.starts_with(p));

    unsafe_confinement(path, &lexed, &mut diags);
    lint_header(path, &lexed, &mut diags);
    if is_engine {
        determinism(path, &lexed, &in_test, &waived, &mut diags);
        shared_stream(path, &lexed, &in_test, &waived, &mut diags);
        raw_row_draw(path, &lexed, &in_test, &waived, &mut diags);
    }
    ordering_audit(path, &lexed, &in_test, &mut diags);
    diags
}

/// Rule `unsafe-confinement`: the `unsafe` keyword may appear only in
/// [`UNSAFE_SANCTUARY`] (test code included — there is no such thing as
/// test-only unsafety).
fn unsafe_confinement(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    if path == UNSAFE_SANCTUARY {
        return;
    }
    for tok in &lexed.tokens {
        if tok.kind == TokenKind::Ident && tok.text == "unsafe" {
            diags.push(Diagnostic::new(
                "unsafe-confinement",
                path,
                tok.line,
                format!(
                    "`unsafe` is confined to {UNSAFE_SANCTUARY}; move the code behind the \
                     reviewed pool primitive or make it safe"
                ),
            ));
        }
    }
}

/// Rule `lint-header`: every crate root (`crates/*/src/lib.rs` and the
/// facade `src/lib.rs`) carries the agreed preamble —
/// `#![forbid(unsafe_code)]` (`deny` for hh-sim), `#![warn(missing_docs)]`,
/// and `#![warn(missing_debug_implementations)]`.
fn lint_header(path: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let is_crate_root =
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return;
    }
    let unsafe_level = if path == DENY_UNSAFE_ROOT {
        "deny"
    } else {
        "forbid"
    };
    let required: [(&str, &str); 3] = [
        (unsafe_level, "unsafe_code"),
        ("warn", "missing_docs"),
        ("warn", "missing_debug_implementations"),
    ];
    for (level, lint) in required {
        if !has_inner_attr(lexed, level, lint) {
            diags.push(Diagnostic::new(
                "lint-header",
                path,
                1,
                format!(
                    "crate root is missing `#![{level}({lint})]` from the agreed lint preamble"
                ),
            ));
        }
    }
    // The inverse check: a root that *forbids* when it must deny (or
    // vice versa) gets a targeted message instead of a missing-attr one.
    let wrong_level = if unsafe_level == "deny" {
        "forbid"
    } else {
        "deny"
    };
    if has_inner_attr(lexed, wrong_level, "unsafe_code") {
        diags.push(Diagnostic::new(
            "lint-header",
            path,
            1,
            format!(
                "crate root declares `#![{wrong_level}(unsafe_code)]` but the agreed level \
                 here is `{unsafe_level}`"
            ),
        ));
    }
}

/// Matches the inner-attribute token sequence `# ! [ level ( lint ) ]`.
fn has_inner_attr(lexed: &Lexed, level: &str, lint: &str) -> bool {
    let toks = &lexed.tokens;
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == level
            && w[4].text == "("
            && w[5].text == lint
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Rules `hash-container`, `wall-clock`, `ambient-randomness`: engine
/// crates must not use order-unstable containers, read the wall clock,
/// or draw ambient (unseeded) randomness in non-test code. Test code is
/// exempt from the first two (a test asserting uniqueness via `HashSet`
/// leaks no iteration order into outcomes) but not from ambient
/// randomness — an unseeded test is unreproducible by construction.
fn determinism(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    for tok in &lexed.tokens {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let (rule, message): (&str, String) = match tok.text.as_str() {
            "HashMap" | "HashSet" if !in_test(tok.line) => (
                "hash-container",
                format!(
                    "`{}` iteration order is randomized per process; deterministic paths \
                     must use `BTreeMap`/`BTreeSet`, a `Vec`, or the crate's flat bitsets",
                    tok.text
                ),
            ),
            "Instant" | "SystemTime" if !in_test(tok.line) => (
                "wall-clock",
                format!(
                    "`{}` reads the wall clock; engine outcomes must be a function of \
                     (config, seed) only — time benchmarks belong in hh-bench",
                    tok.text
                ),
            ),
            "thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" => (
                "ambient-randomness",
                format!(
                    "`{}` is ambient randomness; every engine draw must come from a \
                     stream derived via `seeding::derive_seed`",
                    tok.text
                ),
            ),
            _ => continue,
        };
        if !waived(rule, tok.line) {
            diags.push(Diagnostic::new(rule, path, tok.line, message));
        }
    }
}

/// Rule `shared-stream`: inside chunk-phase code (the whole body of
/// [`CHUNK_PHASE_FILES`], and `impl` blocks of [`CHUNK_PHASE_TYPES`]
/// anywhere in the engine), only per-ant streams may be named. A draw
/// from a shared stream inside code that runs under the worker pool
/// would make outcomes depend on ant processing order — exactly the bug
/// class the per-ant stream split (PR 5) exists to rule out.
fn shared_stream(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let whole_file = CHUNK_PHASE_FILES.contains(&path);
    let impl_spans = impl_regions(lexed, &CHUNK_PHASE_TYPES);
    let in_chunk_scope =
        |line: u32| whole_file || impl_spans.iter().any(|&(a, b)| a <= line && line <= b);

    let toks = &lexed.tokens;
    for w in toks.windows(4) {
        let is_stream_path = w[0].kind == TokenKind::Ident
            && w[0].text == "StreamKind"
            && w[1].text == ":"
            && w[2].text == ":"
            && w[3].kind == TokenKind::Ident;
        if !is_stream_path {
            continue;
        }
        let variant = w[3].text.as_str();
        let line = w[0].line;
        if PER_ANT_STREAMS.contains(&variant) || !in_chunk_scope(line) || in_test(line) {
            continue;
        }
        if !waived("shared-stream", line) {
            diags.push(Diagnostic::new(
                "shared-stream",
                path,
                line,
                format!(
                    "`StreamKind::{variant}` is a shared stream; chunk-phase code running \
                     under the worker pool may draw only from the per-ant streams \
                     (`StreamKind::AgentEnvironment`, `StreamKind::AgentNoise`)"
                ),
            ));
        }
    }
}

/// Rule `raw-row-draw`: batched round bodies (the whole body of
/// [`CHUNK_PHASE_FILES`], and `impl` blocks of [`BATCHED_ROUND_TYPES`]
/// anywhere in the engine) must not evaluate per-row draws inline.
/// Every draw a batched round consumes is materialized by the
/// designated fill pass ([`DRAW_PLANE_FILL_FNS`]) or the shared scalar
/// state machine it mirrors. Two hazard classes, one confinement: a
/// stateful [`RAW_DRAW_METHODS`] call desynchronizes a row's stream
/// from the plane (or double-draws it) the moment the pass is split
/// across workers, and an ad-hoc keyed [`KEYED_DRAW_METHODS`] call
/// forks the draw-site logic (probability clamp, round-as-counter
/// convention) away from the scalar oracle's single implementation.
fn raw_row_draw(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    waived: &dyn Fn(&str, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let whole_file = CHUNK_PHASE_FILES.contains(&path);
    let impl_spans = impl_regions(lexed, &BATCHED_ROUND_TYPES);
    let fill_spans = fn_regions(lexed, &DRAW_PLANE_FILL_FNS);
    let in_round_body =
        |line: u32| whole_file || impl_spans.iter().any(|&(a, b)| a <= line && line <= b);
    let in_fill_pass = |line: u32| fill_spans.iter().any(|&(a, b)| a <= line && line <= b);

    let toks = &lexed.tokens;
    for w in toks.windows(2) {
        if w[0].kind != TokenKind::Punct || w[0].text != "." || w[1].kind != TokenKind::Ident {
            continue;
        }
        let method = w[1].text.as_str();
        let stateful = RAW_DRAW_METHODS.contains(&method);
        if !stateful && !KEYED_DRAW_METHODS.contains(&method) {
            continue;
        }
        let line = w[1].line;
        if !in_round_body(line) || in_fill_pass(line) || in_test(line) {
            continue;
        }
        if !waived("raw-row-draw", line) {
            let message = if stateful {
                format!(
                    "`.{method}(...)` advances an RNG stream inline inside a batched round \
                     body; draws consumed by batched rounds must be materialized by the \
                     designated fill pass ({}) so every row's stream advances in the \
                     scalar oracle's order",
                    DRAW_PLANE_FILL_FNS.join(", ")
                )
            } else {
                format!(
                    "`.{method}(...)` evaluates a keyed draw inline inside a batched round \
                     body; counter draws are confined to the designated fill pass ({}) and \
                     the shared scalar state machine so the draw-site logic (probability \
                     clamp, round-as-counter convention) has exactly one implementation",
                    DRAW_PLANE_FILL_FNS.join(", ")
                )
            };
            diags.push(Diagnostic::new("raw-row-draw", path, line, message));
        }
    }
}

/// Rule `atomic-ordering`: every `Ordering::<variant>` token in the
/// audited files must use an allowlisted variant and carry an attached
/// `// ordering:` justification comment (same line, or the own-line
/// comment block directly above). Test code is exempt — test counters
/// are not part of the synchronization protocol under audit.
fn ordering_audit(
    path: &str,
    lexed: &Lexed,
    in_test: &dyn Fn(u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((_, allowed)) = ORDERING_ALLOWLIST.iter().find(|(p, _)| *p == path) else {
        return;
    };
    let toks = &lexed.tokens;
    for w in toks.windows(4) {
        let is_ordering_path = w[0].kind == TokenKind::Ident
            && w[0].text == "Ordering"
            && w[1].text == ":"
            && w[2].text == ":"
            && w[3].kind == TokenKind::Ident;
        if !is_ordering_path {
            continue;
        }
        let variant = w[3].text.as_str();
        let line = w[0].line;
        if in_test(line) {
            continue;
        }
        if !allowed.contains(&variant) {
            diags.push(Diagnostic::new(
                "atomic-ordering",
                path,
                line,
                format!(
                    "`Ordering::{variant}` is not on the audited allowlist for {path} \
                     (allowed: {}); extend the allowlist in hh_lint with a review, or use \
                     a listed ordering",
                    allowed.join(", ")
                ),
            ));
        } else if !lexed.attached_comment_contains(line, "ordering:") {
            diags.push(Diagnostic::new(
                "atomic-ordering",
                path,
                line,
                format!(
                    "`Ordering::{variant}` has no attached `// ordering:` justification \
                     comment; every ordering in the audited files must say why it is \
                     sufficient"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_engine_source_is_clean() {
        let src = "//! Docs.\nfn f(x: u64) -> u64 { x + 1 }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_engine_crates_may_use_hash_containers() {
        let src = "use std::collections::HashMap;\nfn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n";
        assert!(lint_source("crates/analysis/src/x.rs", src).is_empty());
        assert_eq!(lint_source("crates/model/src/x.rs", src).len(), 3);
    }

    #[test]
    fn sanctuary_file_may_be_unsafe_but_sim_root_must_deny() {
        assert!(lint_source(UNSAFE_SANCTUARY, "unsafe { }").is_empty());
        let diags = lint_source("crates/sim/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("agreed level here is `deny`")));
    }

    #[test]
    fn waiver_requires_the_exact_rule_name() {
        let waived = "// hh-lint: allow(hash-container) — census scratch, drained sorted\nuse std::collections::HashMap;\n";
        let wrong = "// hh-lint: allow(wall-clock)\nuse std::collections::HashMap;\n";
        assert!(lint_source("crates/core/src/x.rs", waived).is_empty());
        assert_eq!(lint_source("crates/core/src/x.rs", wrong).len(), 1);
    }

    #[test]
    fn soa_column_impls_are_chunk_phase_scope() {
        // The SoA band types run under the worker pool: a shared-stream
        // draw inside their impls is flagged wherever the impl lives,
        // while per-ant streams stay allowed.
        let shared =
            "impl<'a> ColumnsMut<'a> {\n    fn f(&self) { let _ = StreamKind::Environment; }\n}\n";
        let diags = lint_source("crates/core/src/columns.rs", shared);
        assert!(
            diags.iter().any(|d| d.rule == "shared-stream"),
            "shared draw inside a ColumnsMut impl must be flagged: {diags:?}"
        );
        let per_ant = "impl SnapshotColumns {\n    fn f(&self) { let _ = StreamKind::AgentEnvironment; }\n}\n";
        assert!(lint_source("crates/core/src/columns.rs", per_ant).is_empty());
        // Outside the impl block the shared stream is fine (it is not
        // chunk-phase code).
        let outside = "fn f() { let _ = StreamKind::Environment; }\n";
        assert!(lint_source("crates/core/src/columns.rs", outside).is_empty());
    }

    #[test]
    fn unsafe_is_not_waivable() {
        let src = "// hh-lint: allow(unsafe-confinement)\nunsafe fn f() {}\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src).len(), 1);
    }
}
