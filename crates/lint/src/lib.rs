//! # hh_lint — the workspace determinism-and-soundness analyzer
//!
//! The engine's headline guarantee is that a trial's outcome is a pure
//! function of `(scenario, seed)` — bit-identical at any
//! `round_threads`, any trial-worker count, on any machine. That
//! guarantee is what makes every cached `TrialOutcome` valid forever,
//! and it rests on source-level invariants that the type system cannot
//! express. This crate machine-checks them.
//!
//! ## The determinism contract
//!
//! 1. **Unsafe confinement** (`unsafe-confinement`): the `unsafe`
//!    keyword appears in exactly one file, `crates/sim/src/pool.rs` —
//!    the worker pool's lifetime-erased job dispatch, with its soundness
//!    argument documented in place. Every other crate root forbids
//!    unsafe code outright (`hh-sim` denies it, since `forbid` could
//!    not be overridden by the pool's single reviewed `#[allow]`).
//! 2. **No order-unstable state** (`hash-container`): engine crates
//!    (`hh-model`, `hh-core`, `hh-sim`) never touch `HashMap`/`HashSet`
//!    outside test code — their iteration order is randomized per
//!    process, so any escape into outcomes breaks cross-run
//!    reproducibility even serially.
//! 3. **No wall clock** (`wall-clock`): engine crates never read
//!    `Instant`/`SystemTime` outside test code. Timing belongs to
//!    `hh-bench`, never to anything that can steer a simulation.
//! 4. **No ambient randomness** (`ambient-randomness`): every draw
//!    comes from a stream derived via `hh_model::seeding::derive_seed`;
//!    `thread_rng`/`from_entropy`/`OsRng` never appear, test code
//!    included.
//! 5. **Per-ant streams under the pool** (`shared-stream`): chunk-phase
//!    code — everything that runs under the intra-round worker pool —
//!    may draw only from the per-ant streams
//!    (`StreamKind::AgentEnvironment`, `StreamKind::AgentNoise`). A
//!    shared-stream draw there would make outcomes depend on ant
//!    processing order, which is exactly what `round_threads`
//!    determinism (PR 5) forbids.
//! 6. **Confined row draws** (`raw-row-draw`): batched round bodies —
//!    the agent-state table impls and the executor — never draw a
//!    per-row coin inline. Every draw a table round consumes goes
//!    through the shared urn state machine (`UrnRefMut::recruit_draw`,
//!    the oracle's own draw site) or the designated plane fill pass
//!    (`fill_draw_plane`). The rule covers both hazard classes: a
//!    stateful `.random_bool(...)`-style call would desynchronize a
//!    row's stream from the oracle's, and an ad-hoc keyed
//!    `.coin(...)`/`.word(...)` call would duplicate the draw-site
//!    logic (probability clamp, counter convention) and silently
//!    diverge from the scalar oracle the first time either copy
//!    changes.
//! 7. **Audited atomics** (`atomic-ordering`): every `Ordering::` use
//!    in the pool and the lock-free trial runner sits on an explicit
//!    per-file allowlist and carries a `// ordering:` justification
//!    comment, so the memory-ordering protocol stays reviewable.
//! 8. **Conformant crate roots** (`lint-header`): crate roots carry the
//!    agreed preamble (`#![forbid(unsafe_code)]`,
//!    `#![warn(missing_docs)]`,
//!    `#![warn(missing_debug_implementations)]`).
//! 9. **No doc drift** (`docs-drift`, behind `--docs`): the generated
//!    experiment index in `EXPERIMENTS.md` matches the registry
//!    declared in `hh-bench` — doc drift and source drift report
//!    through this one tool.
//!
//! Rules 2–6 accept an explicit, reviewable waiver: a comment
//! `// hh-lint: allow(<rule>) — <reason>` on the flagged line or the
//! comment block directly above it. Rules 1, 7, and 8 are unwaivable;
//! changing them means editing the policy tables in [`rules`].
//!
//! The analyzer is deliberately zero-dependency and lexical: a small
//! comment/string-aware lexer ([`lexer`]) tokenizes each file, and the
//! rules ([`rules`]) match token patterns scoped by path, `#[cfg(test)]`
//! regions, and chunk-type `impl` blocks. That is coarser than a full
//! semantic analysis (a type alias could smuggle a `HashMap` past rule
//! 2) but has no false negatives on direct use, zero build cost, and no
//! shared failure modes with the code it audits.
//!
//! ## Invocation
//!
//! ```text
//! cargo run -p hh_lint -- --workspace          # lint every tracked .rs file
//! cargo run -p hh_lint -- --workspace --docs   # …plus the EXPERIMENTS.md drift rule
//! cargo run -p hh_lint -- --workspace --json   # machine-readable report
//! cargo run -p hh_lint -- --as crates/sim/src/pool.rs some/file.rs
//! ```
//!
//! Exit status is the number of files with violations clamped to 1 —
//! i.e. `0` iff the tree is clean. The tier-1 facade test
//! (`tests/lint_gate.rs`) shells the `--workspace --docs` invocation,
//! so a violation anywhere fails `cargo test -q`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod docs;
pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{render_json, Diagnostic};
pub use rules::lint_source;

use std::path::{Path, PathBuf};

/// Directory names never descended into during the workspace walk.
/// `vendor/` holds third-party shims outside the repo's authorship (and
/// thus its invariants); `tests/fixtures/` holds deliberate violations.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Collects every lintable `.rs` file under `root`, repo-relative with
/// forward slashes, sorted (the walk itself must be deterministic —
/// `read_dir` order is OS-dependent).
///
/// # Errors
///
/// Returns the first I/O error encountered while walking.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                let is_fixture_dir =
                    name == "fixtures" && dir.file_name().is_some_and(|d| d == "tests");
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') || is_fixture_dir {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`; returns
/// `(checked_file_count, diagnostics)` with diagnostics sorted by
/// (path, line, rule).
///
/// # Errors
///
/// Returns the first I/O error (unreadable tree); individual files that
/// vanish mid-walk are reported as diagnostics, not errors.
pub fn lint_workspace(root: &Path, with_docs: bool) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let files = workspace_files(root)?;
    let mut diags = Vec::new();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(source) => diags.extend(lint_source(rel, &source)),
            Err(err) => diags.push(Diagnostic::new(
                "unreadable-file",
                rel,
                1,
                format!("could not read file: {err}"),
            )),
        }
    }
    let mut checked = files.len();
    if with_docs {
        checked += 1; // EXPERIMENTS.md
        diags.extend(check_docs_at(root));
    }
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok((checked, diags))
}

/// Runs the `docs-drift` rule against the tree at `root`.
#[must_use]
pub fn check_docs_at(root: &Path) -> Vec<Diagnostic> {
    let read = |rel: &str| -> Result<String, Diagnostic> {
        std::fs::read_to_string(root.join(rel)).map_err(|err| {
            Diagnostic::new("docs-drift", rel, 1, format!("could not read file: {err}"))
        })
    };
    match (read(docs::EXPERIMENTS_DOC), read(docs::REGISTRY_SOURCE)) {
        (Ok(doc), Ok(registry)) => docs::check_docs(&doc, &registry),
        (doc, registry) => [doc.err(), registry.err()].into_iter().flatten().collect(),
    }
}

/// The compiled-in default workspace root (two levels above this
/// crate's manifest), so `cargo run -p hh_lint` works from any cwd.
#[must_use]
pub fn default_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_vendor_target_and_fixtures() {
        let files = workspace_files(&default_root()).unwrap();
        assert!(files.iter().any(|f| f == "crates/sim/src/pool.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        assert!(!files.iter().any(|f| f.contains("tests/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be deterministic");
    }
}
