//! A small comment- and string-aware Rust lexer.
//!
//! The rules in this crate match *token* patterns (`unsafe`,
//! `Ordering :: SeqCst`, `StreamKind :: Environment`, …), so the lexer's
//! only job is to split source text into identifiers, punctuation,
//! literals, and comments without ever confusing the three classes: the
//! word `unsafe` inside a doc comment or a string literal must not trip
//! the unsafe-confinement rule, and a `{` inside a char literal must not
//! derail brace matching. It is not a full Rust lexer — shebangs, raw
//! identifiers, and exotic literal suffixes are handled just well enough
//! to never misclassify a comment or string boundary.
//!
//! Comments are kept (with their line spans) because two rules read
//! them: the atomic-ordering audit requires a `// ordering:`
//! justification next to every `Ordering::` use, and the waiver
//! mechanism recognizes `hh-lint: allow(<rule>)` markers.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `foo`).
    Ident,
    /// A single punctuation character (`:`, `{`, `#`, …).
    Punct,
    /// A string or byte-string literal; `text` holds the *cooked*
    /// contents (common escapes resolved), without quotes.
    Str,
    /// A char or byte literal (contents not cooked; rules never read it).
    Char,
    /// A numeric literal (possibly with a type suffix).
    Number,
    /// A lifetime (`'a`), including the quote.
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (cooked contents for [`TokenKind::Str`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block, doc or plain) with its line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// `true` if nothing but whitespace precedes the comment on its
    /// first line — i.e. the comment owns the line rather than trailing
    /// code. Justification/waiver lookup walks upward only over
    /// own-line comments.
    pub own_line: bool,
}

/// A lexed source file: code tokens plus comments, both in order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// `true` if some comment touching `line` (trailing or own-line) or
    /// the contiguous run of own-line comments directly above `line`
    /// contains `needle`. This is the attachment rule for both
    /// `// ordering:` justifications and `hh-lint: allow(...)` waivers.
    pub fn attached_comment_contains(&self, line: u32, needle: &str) -> bool {
        // Trailing (or wrapping block) comment on the same line.
        if self
            .comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line && c.text.contains(needle))
        {
            return true;
        }
        // Walk upward over own-line comments immediately above.
        let mut cursor = line;
        loop {
            let Some(above) = self
                .comments
                .iter()
                .find(|c| c.own_line && c.end_line + 1 == cursor)
            else {
                return false;
            };
            if above.text.contains(needle) {
                return true;
            }
            cursor = above.line;
        }
    }
}

/// Lexes `source` into tokens and comments. Never fails: on malformed
/// input (unterminated string, stray byte) it degrades to per-character
/// punctuation tokens, which at worst produces an extra diagnostic —
/// never a silently skipped file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Does any non-whitespace token/comment precede the current column
    // on this line? (Tracks the `own_line` flag for comments.)
    let mut line_has_code = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_has_code = false;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: chars[start..i].iter().collect(),
                own_line: !line_has_code,
            });
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let own_line = !line_has_code;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: chars[start..i].iter().collect(),
                own_line,
            });
            line_has_code = true; // code may follow `*/` on this line
        } else if c == '"' {
            let (text, consumed, newlines) = cooked_string(&chars[i..]);
            out.tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
            });
            i += consumed;
            line += newlines;
            line_has_code = true;
        } else if c == '\'' {
            // Char literal or lifetime. A char literal is 'x' or an
            // escape '\..'; anything else ('a, 'static) is a lifetime.
            if chars.get(i + 1) == Some(&'\\') {
                let start = i;
                i += 2; // quote + backslash
                if i < chars.len() {
                    i += 1; // the escaped char (or x/u introducer)
                }
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1; // closing quote
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line,
                });
            } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                out.tokens.push(Token {
                    kind: TokenKind::Char,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
            } else {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            line_has_code = true;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            // Raw/byte string prefixes: r"..", r#".."#, b"..", br#".."#.
            let is_raw_prefix = matches!(ident.as_str(), "r" | "b" | "br");
            if is_raw_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                let mut hashes = 0usize;
                let mut j = i;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Raw (or plain byte) string: scan to `"` + hashes.
                    let content_start = j + 1;
                    let mut k = content_start;
                    let mut newlines = 0u32;
                    'scan: while k < chars.len() {
                        if chars[k] == '\n' {
                            newlines += 1;
                        }
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while chars.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h >= hashes {
                                break 'scan;
                            }
                        }
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text: chars[content_start..k.min(chars.len())].iter().collect(),
                        line,
                    });
                    i = (k + 1 + hashes).min(chars.len());
                    line += newlines;
                } else {
                    // `r#ident` raw identifier: emit the ident without
                    // consuming the hashes specially.
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: ident,
                        line,
                    });
                }
            } else if ident == "b" && chars.get(i) == Some(&'\'') {
                // Byte literal b'x': delegate to the char branch by
                // emitting nothing and letting the quote be re-scanned.
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: ident,
                    line,
                });
            } else {
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: ident,
                    line,
                });
            }
            line_has_code = true;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
            line_has_code = true;
        } else {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
            line_has_code = true;
        }
    }
    out
}

/// Scans a cooked string literal starting at `chars[0] == '"'`. Returns
/// (cooked contents, chars consumed, newlines crossed).
fn cooked_string(chars: &[char]) -> (String, usize, u32) {
    let mut text = String::new();
    let mut i = 1usize;
    let mut newlines = 0u32;
    while i < chars.len() {
        match chars[i] {
            '"' => {
                i += 1;
                break;
            }
            '\\' => {
                match chars.get(i + 1) {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('r') => text.push('\r'),
                    Some('0') => text.push('\0'),
                    Some('\\') => text.push('\\'),
                    Some('"') => text.push('"'),
                    Some('\'') => text.push('\''),
                    // \x.., \u{..}, line-continuations: keep raw; no
                    // rule reads escaped contents byte-exactly.
                    Some(other) => {
                        text.push('\\');
                        text.push(*other);
                    }
                    None => {}
                }
                i += 2;
            }
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, newlines)
}

/// Returns the 1-based inclusive line ranges covered by `#[cfg(test)]`
/// items (in this workspace: always `mod tests { … }` blocks). Found by
/// matching the attribute token sequence, then brace-matching the next
/// block; an attribute followed by a `;` before any `{` covers a
/// single-line item instead.
pub fn cfg_test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_attr = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Find the item's opening brace (or terminating semicolon).
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text == ";" {
            let end = toks.get(j).map_or(start_line, |t| t.line);
            regions.push((start_line, end));
            i = j + 1;
            continue;
        }
        let close = match_brace(toks, j);
        regions.push((start_line, toks[close.min(toks.len() - 1)].line));
        i = close + 1;
    }
    regions
}

/// Returns the line ranges of `impl … <Type> … { … }` blocks whose
/// pre-brace tokens mention any identifier in `types` (e.g. the
/// chunk-phase view types `RelocationChunk` / `OutcomeChunk`).
pub fn impl_regions(lexed: &Lexed, types: &[&str]) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "impl" {
            let mut j = i + 1;
            let mut hit = false;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                if toks[j].kind == TokenKind::Ident && types.contains(&toks[j].text.as_str()) {
                    hit = true;
                }
                j += 1;
            }
            if hit && j < toks.len() && toks[j].text == "{" {
                let close = match_brace(toks, j);
                regions.push((toks[i].line, toks[close.min(toks.len() - 1)].line));
                i = close + 1;
                continue;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Returns the line ranges of `fn <name> … { … }` items whose name is
/// listed in `names` (e.g. the designated draw-plane fill pass a
/// batched round body is allowed to advance per-row streams in).
/// Function signatures cannot contain `{`, so the first brace after the
/// matched name opens the body; trait-declaration stubs ending in `;`
/// span no lines.
pub fn fn_regions(lexed: &Lexed, names: &[&str]) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        let is_named_fn = toks[i].kind == TokenKind::Ident
            && toks[i].text == "fn"
            && toks[i + 1].kind == TokenKind::Ident
            && names.contains(&toks[i + 1].text.as_str());
        if !is_named_fn {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j < toks.len() && toks[j].text == "{" {
            let close = match_brace(toks, j);
            regions.push((toks[i].line, toks[close.min(toks.len() - 1)].line));
            i = close + 1;
        } else {
            i = j + 1;
        }
    }
    regions
}

/// Index of the `}` matching the `{` at `open` (or the last token on
/// unbalanced input — malformed files degrade, they don't panic).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_keywords() {
        let src = r##"
// unsafe in a line comment
/* unsafe in a /* nested */ block */
let s = "unsafe in a string";
let r = r#"unsafe in a raw string"#;
let ok = true;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "ids: {ids:?}");
        assert!(ids.contains(&"ok".to_string()));
    }

    #[test]
    fn real_unsafe_is_a_token() {
        let ids = idents("unsafe { core::ptr::null::<u8>(); }");
        assert_eq!(ids.iter().filter(|t| *t == "unsafe").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn braces_in_literals_do_not_break_matching() {
        let src = "mod m { const A: char = '{'; const B: &str = \"}}}\"; fn f() {} }";
        let lexed = lex(src);
        let opens = lexed.tokens.iter().filter(|t| t.text == "{").count();
        let closes = lexed.tokens.iter().filter(|t| t.text == "}").count();
        assert_eq!(opens, closes);
        assert_eq!(opens, 2);
    }

    #[test]
    fn string_contents_are_cooked() {
        let lexed = lex(r#"let s = "a\n\"b\"";"#);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.text, "a\n\"b\"");
    }

    #[test]
    fn token_lines_are_tracked() {
        let lexed = lex("a\n\nb /* c\nd */ e");
        let a = &lexed.tokens[0];
        let b = &lexed.tokens[1];
        let e = &lexed.tokens[2];
        assert_eq!((a.line, b.line, e.line), (1, 3, 4));
        assert_eq!(lexed.comments[0].line, 3);
        assert_eq!(lexed.comments[0].end_line, 4);
    }

    #[test]
    fn cfg_test_region_spans_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(cfg_test_regions(&lexed), vec![(2, 5)]);
    }

    #[test]
    fn impl_region_finds_named_types() {
        let src = "impl<'a> Foo<'a> {\n fn a() {}\n}\nimpl Bar {\n fn b() {}\n}\n";
        let lexed = lex(src);
        assert_eq!(impl_regions(&lexed, &["Bar"]), vec![(4, 6)]);
    }

    #[test]
    fn fn_region_finds_named_bodies() {
        let src = "fn fill_draw_plane(x: u8) {\n  x;\n}\nfn other() {\n  ();\n}\n";
        let lexed = lex(src);
        assert_eq!(fn_regions(&lexed, &["fill_draw_plane"]), vec![(1, 3)]);
        // A trait stub ending in `;` spans nothing.
        let stub = lex("trait T { fn fill_draw_plane(&mut self); }\nfn g() {}\n");
        assert_eq!(fn_regions(&stub, &["fill_draw_plane"]), vec![]);
    }

    #[test]
    fn attached_comment_walks_upward() {
        let src = "// ordering: top\n// more\nlet x = 1; // trailing\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(lexed.attached_comment_contains(3, "ordering:"));
        assert!(lexed.attached_comment_contains(3, "trailing"));
        assert!(!lexed.attached_comment_contains(4, "ordering:"));
    }

    #[test]
    fn own_line_flag_distinguishes_trailing_comments() {
        let src = "let x = 1; // trailing\n// own\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }
}
