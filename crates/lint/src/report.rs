//! Diagnostics and report rendering (human text and `--json`).

/// One finding: a rule violation at a file:line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Kebab-case rule id (`unsafe-confinement`, `atomic-ordering`, …).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(rule: &'static str, path: &str, line: u32, message: impl Into<String>) -> Self {
        Self {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders the machine-readable report: a single JSON object with the
/// file count and one entry per diagnostic, stable field order, sorted
/// the same as the text output (path, then line, then rule).
#[must_use]
pub fn render_json(checked_files: usize, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"checked_files\": {checked_files},\n"));
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(d.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\"", escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed() {
        let diags = vec![Diagnostic::new(
            "wall-clock",
            "crates/model/src/x.rs",
            7,
            "uses \"Instant\"\nbadly",
        )];
        let json = render_json(3, &diags);
        assert!(json.contains("\"checked_files\": 3"));
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\\\"Instant\\\"\\nbadly"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_report_has_empty_array() {
        let json = render_json(0, &[]);
        assert!(json.contains("\"diagnostics\": []"));
    }

    #[test]
    fn display_is_path_line_rule() {
        let d = Diagnostic::new("r", "a/b.rs", 3, "msg");
        assert_eq!(d.to_string(), "a/b.rs:3: [r] msg");
    }
}
