//! The `hh_lint` command-line front end; see the library crate docs for
//! the rule set. Exit status 0 iff no diagnostics.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use hh_lint::{check_docs_at, default_root, lint_source, lint_workspace, render_json, Diagnostic};

const USAGE: &str = "\
usage: hh_lint [--workspace] [--docs] [--json] [--root DIR] [--as PATH] [FILES...]

  --workspace   lint every .rs file under the workspace root
                (skips target/, vendor/, tests/fixtures/)
  --docs        also run the docs-drift rule (EXPERIMENTS.md vs the
                experiment registry source)
  --json        emit the machine-readable report on stdout
  --root DIR    workspace root (default: compiled-in repo root)
  --as PATH     lint the given FILES as if they lived at this
                repo-relative path (rule scoping is path-driven;
                used by fixture tests and ad-hoc checks)
  FILES         repo-relative .rs files to lint instead of the walk
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("hh_lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut docs = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut virtual_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--docs" => docs = true,
            "--json" => json = true,
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--as" => virtual_path = Some(it.next().ok_or("--as needs a value")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}\n{USAGE}")),
            file => files.push(file.to_string()),
        }
    }
    if !workspace && !docs && files.is_empty() {
        return Err(format!("nothing to lint\n{USAGE}"));
    }
    if virtual_path.is_some() && files.len() != 1 {
        return Err("--as applies to exactly one file".to_string());
    }
    let root = root.unwrap_or_else(default_root);

    let (checked, diags) = if workspace {
        lint_workspace(&root, docs).map_err(|err| format!("walking {}: {err}", root.display()))?
    } else {
        let mut diags: Vec<Diagnostic> = Vec::new();
        for file in &files {
            let source = std::fs::read_to_string(root.join(file))
                .or_else(|_| std::fs::read_to_string(file))
                .map_err(|err| format!("reading {file}: {err}"))?;
            let as_path = virtual_path.as_deref().unwrap_or(file.as_str());
            diags.extend(lint_source(as_path, &source));
        }
        if docs {
            diags.extend(check_docs_at(&root));
        }
        (files.len() + usize::from(docs), diags)
    };

    if json {
        print!("{}", render_json(checked, &diags));
    } else {
        for diag in &diags {
            println!("{diag}");
        }
        eprintln!(
            "hh_lint: {checked} file(s) checked, {} violation(s)",
            diags.len()
        );
    }
    Ok(if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
