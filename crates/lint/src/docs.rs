//! Rule `docs-drift` (`--docs`): the generated experiment-registry
//! index embedded in `EXPERIMENTS.md` must match the registry declared
//! in `crates/bench/src/experiments/mod.rs`.
//!
//! This folds the old `crates/bench/tests/docs_drift.rs` check into the
//! linter so doc drift and source drift report through one tool. The
//! old test linked `hh-bench` and called `experiments_index_markdown()`;
//! hh_lint is zero-dependency, so instead it *statically* extracts the
//! `id:`/`title:` string literals from `all_experiments()` — the only
//! `id:`-followed-by-string-literal sites in that file — and regenerates
//! the exact `| id | title |` table `experiments_index_markdown()`
//! renders. The two generators agree byte-for-byte as long as the table
//! shape stays `| {id} | {title} |`; the `docs` CLI smoke test pins
//! that agreement against the checked-in file.

use crate::lexer::{lex, TokenKind};
use crate::report::Diagnostic;

/// Marker opening the generated block in `EXPERIMENTS.md`.
pub const BEGIN: &str = "<!-- BEGIN GENERATED: experiment registry index -->";
/// Marker closing the generated block.
pub const END: &str = "<!-- END GENERATED: experiment registry index -->";

/// The registry source of truth, relative to the repo root.
pub const REGISTRY_SOURCE: &str = "crates/bench/src/experiments/mod.rs";
/// The documented index, relative to the repo root.
pub const EXPERIMENTS_DOC: &str = "EXPERIMENTS.md";

/// Extracts `(id, title)` pairs, in declaration order, from the
/// experiments registry source. An `id:` field must be followed (before
/// the next `id:`) by its `title:` field, mirroring the `Experiment`
/// literal layout.
#[must_use]
pub fn registry_entries(source: &str) -> Vec<(String, String)> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut entries = Vec::new();
    let mut pending_id: Option<String> = None;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        let field = &toks[i];
        let is_field = field.kind == TokenKind::Ident
            && toks[i + 1].text == ":"
            && toks[i + 2].kind == TokenKind::Str;
        if is_field && field.text == "id" {
            pending_id = Some(toks[i + 2].text.clone());
            i += 3;
        } else if is_field && field.text == "title" {
            if let Some(id) = pending_id.take() {
                entries.push((id, toks[i + 2].text.clone()));
            }
            i += 3;
        } else {
            i += 1;
        }
    }
    entries
}

/// Renders the index table exactly as `experiments_index_markdown()`
/// does (and as embedded between the markers).
#[must_use]
pub fn render_index(entries: &[(String, String)]) -> String {
    let mut out = String::from("| id | title |\n|----|-------|\n");
    for (id, title) in entries {
        out.push_str(&format!("| {id} | {title} |\n"));
    }
    out
}

/// Checks `EXPERIMENTS.md` (contents in `doc`) against the registry
/// source (contents in `registry_src`). Returns one diagnostic per
/// drift: missing markers, a stale embedded table, or an experiment id
/// absent from the document prose.
#[must_use]
pub fn check_docs(doc: &str, registry_src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let entries = registry_entries(registry_src);
    if entries.is_empty() {
        diags.push(Diagnostic::new(
            "docs-drift",
            REGISTRY_SOURCE,
            1,
            "no `id:`/`title:` experiment entries found in the registry source; \
             the --docs extractor no longer matches `all_experiments()`",
        ));
        return diags;
    }

    let begin = doc.find(BEGIN);
    let end = doc.find(END);
    let (Some(begin), Some(end)) = (begin, end) else {
        diags.push(Diagnostic::new(
            "docs-drift",
            EXPERIMENTS_DOC,
            1,
            format!("missing the generated-index markers (`{BEGIN}` … `{END}`)"),
        ));
        return diags;
    };
    let marker_line = line_of(doc, begin);
    if begin >= end {
        diags.push(Diagnostic::new(
            "docs-drift",
            EXPERIMENTS_DOC,
            marker_line,
            "generated-index markers are out of order",
        ));
        return diags;
    }

    let embedded = doc[begin + BEGIN.len()..end].trim();
    let expected = render_index(&entries);
    if embedded != expected.trim() {
        diags.push(Diagnostic::new(
            "docs-drift",
            EXPERIMENTS_DOC,
            marker_line,
            "embedded experiment-registry index is stale; regenerate with \
             `cargo run --release -p hh-bench --bin experiments -- --index`",
        ));
    }
    for (id, title) in &entries {
        if !doc.contains(&format!("| {id} |")) {
            diags.push(Diagnostic::new(
                "docs-drift",
                EXPERIMENTS_DOC,
                marker_line,
                format!("experiment {id} ({title}) is not documented in EXPERIMENTS.md"),
            ));
        }
    }
    diags
}

/// 1-based line number of byte offset `at` in `text`.
fn line_of(text: &str, at: usize) -> u32 {
    u32::try_from(text[..at].bytes().filter(|&b| b == b'\n').count() + 1).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REGISTRY: &str = r#"
        pub struct Experiment { pub id: &'static str, pub title: &'static str }
        pub fn all_experiments() -> Vec<Experiment> {
            vec![
                Experiment { id: "F1", title: "Theorem — Ω(log n)", run: noop },
                Experiment { id: "T2", title: "Throughput", run: noop },
            ]
        }
    "#;

    fn doc_with(index: &str) -> String {
        format!("# Experiments\n\n{BEGIN}\n{index}\n{END}\n")
    }

    #[test]
    fn extracts_entries_in_order() {
        assert_eq!(
            registry_entries(REGISTRY),
            vec![
                ("F1".to_string(), "Theorem — Ω(log n)".to_string()),
                ("T2".to_string(), "Throughput".to_string()),
            ]
        );
    }

    #[test]
    fn matching_doc_is_clean() {
        let doc = doc_with(render_index(&registry_entries(REGISTRY)).trim());
        assert!(check_docs(&doc, REGISTRY).is_empty());
    }

    #[test]
    fn stale_table_is_flagged() {
        let doc = doc_with("| id | title |\n|----|-------|\n| F1 | Old title |");
        let diags = check_docs(&doc, REGISTRY);
        assert!(diags.iter().any(|d| d.message.contains("stale")));
    }

    #[test]
    fn missing_markers_are_flagged() {
        let diags = check_docs("# No markers here", REGISTRY);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("markers"));
    }
}
