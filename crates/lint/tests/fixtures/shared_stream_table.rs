// Fixture: a shared-stream draw inside an agent-state-table impl. The
// `UrnColumnsMut` band below runs the batched choose/observe passes
// under the worker pool, so its `StreamKind::Noise` draw (line 13) is
// order-dependent and must be flagged; the per-row draw (line 14) and
// the gather helper's shared draw outside any table impl (line 20)
// must not.
pub struct UrnColumnsMut<'a> {
    pub rows: &'a [u64],
}

impl<'a> UrnColumnsMut<'a> {
    pub fn choose(&mut self, base: u64, row: u64) -> (u64, u64) {
        let shared = derive_seed(base, StreamKind::Noise, 0);
        let per_row = derive_seed(base, StreamKind::AgentNoise, row);
        (shared, per_row)
    }
}

pub fn gather(base: u64) -> u64 {
    derive_seed(base, StreamKind::Noise, 0)
}
