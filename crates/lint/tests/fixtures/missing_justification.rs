// Fixture: allowlisted orderings in the audited runner file, one with
// the required `// ordering:` justification (line 8, clean) and one
// without (line 9, flagged).
use std::sync::atomic::{AtomicBool, Ordering};

pub fn check(abort: &AtomicBool) -> (bool, bool) {
    // ordering: Acquire — pairs with the release store on abort.
    let a = abort.load(Ordering::Acquire);
    let b = abort.load(Ordering::Acquire);
    (a, b)
}
