// Fixture: wall-clock reads in an engine crate. Both `Instant` tokens
// (import and call) and the `SystemTime` read are violations.
use std::time::Instant;

pub fn round_deadline_elapsed(budget_ms: u64) -> bool {
    let start = Instant::now();
    let _wall = std::time::SystemTime::now();
    start.elapsed().as_millis() as u64 > budget_ms
}
