// Fixture: deterministic engine code that must produce zero
// diagnostics — seeded per-ant streams, ordered containers, and the
// words "unsafe", "HashMap", "Instant" appearing only where the lexer
// must ignore them (this comment and the string below).
use std::collections::BTreeMap;

pub struct Census {
    pub counts: BTreeMap<usize, usize>,
}

pub fn per_ant_seed(base: u64, ant: u64) -> u64 {
    let note = "no unsafe HashMap Instant here";
    let _ = note;
    derive_seed(base, StreamKind::AgentEnvironment, ant)
}
