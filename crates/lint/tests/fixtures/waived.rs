// Fixture: a determinism violation silenced by an explicit waiver —
// the marker must name the exact rule and sits in the comment block
// directly above the flagged line.
use std::collections::BTreeMap;

pub fn scratch() -> usize {
    // hh-lint: allow(hash-container) — insert-only membership probe;
    // nothing ever iterates it, so no ordering can leak into outcomes.
    let scratch: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let ordered: BTreeMap<u64, u64> = BTreeMap::new();
    scratch.len() + ordered.len()
}
