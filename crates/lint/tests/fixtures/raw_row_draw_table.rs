// Fixture: raw per-row RNG access inside a batched round body. The
// `DenseRowsMut` band below runs the batched choose pass under the
// worker pool: its inline `.random_bool` draw in `choose` (line 19)
// bypasses the round's draw plane and must be flagged, while the same
// per-row draw inside the designated `fill_draw_plane` pass (line 14)
// and the free helper outside any table impl (line 24) must not.
pub struct DenseRowsMut<'a> {
    pub rng: &'a mut [PerRowRng],
}

impl<'a> DenseRowsMut<'a> {
    pub fn fill_draw_plane(&mut self, draws: &mut [bool], p: f64) {
        for (index, slot) in draws.iter_mut().enumerate() {
            *slot = self.rng[index].random_bool(p);
        }
    }

    pub fn choose(&mut self, index: usize, p: f64) -> bool {
        self.rng[index].random_bool(p)
    }
}

pub fn helper(rng: &mut PerRowRng, p: f64) -> bool {
    rng.random_bool(p)
}
