// Fixture: ambient randomness in an engine crate — a draw that no
// (config, seed) pair can reproduce.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    // Ambient randomness is flagged even in test code: an unseeded
    // test is unreproducible by construction.
    #[test]
    fn jitter_is_nonzero() {
        let mut rng = rand::thread_rng();
        assert_ne!(rng.next_u64(), 0);
    }
}
