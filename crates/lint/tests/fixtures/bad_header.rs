//! Fixture: a crate root missing the agreed lint preamble — it warns
//! on missing docs but neither forbids unsafe code nor warns on missing
//! Debug implementations.

#![warn(missing_docs)]

pub fn noop() {}
