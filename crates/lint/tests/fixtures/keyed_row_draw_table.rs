// Fixture: ad-hoc keyed (counter-based) draws inside a batched round
// body. The `UrnColumnsMut` band below runs the batched choose pass
// under the worker pool: its inline `.coin` draw in `choose` (line 20)
// and raw `.word` access in `peek` (line 24) fork the draw-site logic
// away from the scalar oracle and must be flagged, while the same keyed
// draw inside the designated `fill_draw_plane` pass (line 14) and the
// free helper outside any table impl (line 29) must not.
pub struct UrnColumnsMut<'a> {
    pub key: &'a [DrawKey],
}

impl<'a> UrnColumnsMut<'a> {
    pub fn fill_draw_plane(&self, round: u64, draws: &mut [bool], p: f64) {
        for (index, slot) in draws.iter_mut().enumerate() {
            *slot = self.key[index].coin(round, p);
        }
    }

    pub fn choose(&self, index: usize, round: u64, p: f64) -> bool {
        self.key[index].coin(round, p)
    }

    pub fn peek(&self, index: usize, round: u64) -> u64 {
        self.key[index].word(round)
    }
}

pub fn helper(key: DrawKey, round: u64, p: f64) -> bool {
    key.coin(round, p)
}
