// Fixture: a shared-stream draw inside chunk-phase code. The
// `RelocationChunk` impl below runs under the worker pool, so its
// `StreamKind::Environment` draw (line 12) is order-dependent and must
// be flagged; the per-ant draw (line 13) and the constructor's shared
// draw outside any chunk impl (line 19) must not.
pub struct RelocationChunk<'a> {
    pub seeds: &'a [u64],
}

impl<'a> RelocationChunk<'a> {
    pub fn process(&mut self, base: u64, ant: u64) -> (u64, u64) {
        let shared = derive_seed(base, StreamKind::Environment, 0);
        let per_ant = derive_seed(base, StreamKind::AgentEnvironment, ant);
        (shared, per_ant)
    }
}

pub fn build_environment(base: u64) -> u64 {
    derive_seed(base, StreamKind::Environment, 0)
}
