// Fixture: HashMap iteration in an engine crate — the canonical
// order-instability bug. `BTreeMap` in the same file must not be
// flagged.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn tally(commitments: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let ordered: BTreeMap<usize, usize> = BTreeMap::new();
    let _ = ordered;
    commitments.iter().map(|(&nest, &count)| (nest, count)).collect()
}
