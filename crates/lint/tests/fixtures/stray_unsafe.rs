// Fixture: the `unsafe` keyword outside crates/sim/src/pool.rs.
// The mentions in this comment and in the string below must NOT trip
// the rule; only the real keyword on line 8 may.
pub fn grow(buffer: &mut Vec<u8>, extra: usize) {
    let note = "unsafe in a string is fine";
    let _ = note;
    buffer.reserve(extra);
    unsafe {
        buffer.set_len(buffer.len() + extra);
    }
}
