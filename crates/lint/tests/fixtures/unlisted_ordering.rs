// Fixture: an `Ordering::SeqCst` in the audited pool file. SeqCst is
// not on the allowlist, so even a justification comment cannot save it.
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(epoch: &AtomicUsize) -> usize {
    // ordering: SeqCst because I could not decide (this justification
    // must not rescue an unlisted variant).
    epoch.fetch_add(1, Ordering::SeqCst)
}
