//! Fixture conformance for the rule set: every fixture under
//! `tests/fixtures/` deliberately violates exactly one rule (or none),
//! and each must produce exactly its expected diagnostics — rule id,
//! line, and nothing else. The fixtures directory is excluded from the
//! `--workspace` walk precisely so these violations can exist in-tree.

use hh_lint::lint_source;

/// Reads a fixture and lints it under a virtual repo path (rule scoping
/// is path-driven).
fn lint_fixture(fixture: &str, virtual_path: &str) -> Vec<(String, u32)> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_source(virtual_path, &source)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn stray_unsafe_is_confined() {
    let diags = lint_fixture("stray_unsafe.rs", "crates/core/src/colony.rs");
    assert_eq!(diags, vec![("unsafe-confinement".to_string(), 8)]);
}

#[test]
fn stray_unsafe_is_fine_in_the_sanctuary() {
    let diags = lint_fixture("stray_unsafe.rs", "crates/sim/src/pool.rs");
    assert!(diags.is_empty(), "sanctuary must allow unsafe: {diags:?}");
}

#[test]
fn hash_containers_are_flagged_in_engine_crates() {
    let diags = lint_fixture("hash_iteration.rs", "crates/model/src/nest.rs");
    assert_eq!(
        diags,
        vec![
            ("hash-container".to_string(), 5),
            ("hash-container".to_string(), 7),
        ]
    );
}

#[test]
fn hash_containers_are_fine_outside_the_engine() {
    let diags = lint_fixture("hash_iteration.rs", "crates/analysis/src/stats.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_reads_are_flagged() {
    let diags = lint_fixture("wall_clock.rs", "crates/sim/src/metrics.rs");
    assert_eq!(
        diags,
        vec![
            ("wall-clock".to_string(), 3),
            ("wall-clock".to_string(), 6),
            ("wall-clock".to_string(), 7),
        ]
    );
}

#[test]
fn ambient_randomness_is_flagged_even_in_tests() {
    let diags = lint_fixture("ambient_rng.rs", "crates/core/src/agent.rs");
    assert_eq!(
        diags,
        vec![
            ("ambient-randomness".to_string(), 4),
            ("ambient-randomness".to_string(), 14),
        ]
    );
}

#[test]
fn shared_stream_draws_in_chunk_impls_are_flagged() {
    let diags = lint_fixture("shared_stream_chunk.rs", "crates/model/src/env.rs");
    assert_eq!(diags, vec![("shared-stream".to_string(), 12)]);
}

#[test]
fn every_shared_stream_is_flagged_in_chunk_phase_files() {
    // As executor.rs the whole file is chunk-phase: the constructor's
    // draw on line 19 is now also in scope.
    let diags = lint_fixture("shared_stream_chunk.rs", "crates/sim/src/executor.rs");
    assert_eq!(
        diags,
        vec![
            ("shared-stream".to_string(), 12),
            ("shared-stream".to_string(), 19),
        ]
    );
}

#[test]
fn shared_stream_draws_in_agent_table_impls_are_flagged() {
    // The per-algorithm agent-state tables (`hh_core::table`) are
    // chunk-phase types: their bands run the batched choose/observe
    // passes under the worker pool, so a shared-stream draw inside one
    // of their impls is order-dependent even though the file lives in
    // hh-core, outside `CHUNK_PHASE_FILES`.
    let diags = lint_fixture("shared_stream_table.rs", "crates/core/src/table.rs");
    assert_eq!(diags, vec![("shared-stream".to_string(), 13)]);
}

#[test]
fn raw_row_draws_in_batched_round_bodies_are_flagged() {
    // Since the round-level draw planes, a batched round body may only
    // advance per-row RNG streams inside the designated fill pass: the
    // inline draw in `choose` is flagged, the fill-pass draw and the
    // free helper are not.
    let diags = lint_fixture("raw_row_draw_table.rs", "crates/core/src/table.rs");
    assert_eq!(diags, vec![("raw-row-draw".to_string(), 19)]);
}

#[test]
fn every_raw_row_draw_is_flagged_in_chunk_phase_files() {
    // As executor.rs the whole file is a batched round body: the free
    // helper's draw on line 24 is now also in scope; the fill pass
    // stays exempt.
    let diags = lint_fixture("raw_row_draw_table.rs", "crates/sim/src/executor.rs");
    assert_eq!(
        diags,
        vec![
            ("raw-row-draw".to_string(), 19),
            ("raw-row-draw".to_string(), 24),
        ]
    );
}

#[test]
fn keyed_row_draws_in_batched_round_bodies_are_flagged() {
    // The counter migration adds a second hazard class: an ad-hoc keyed
    // `.coin`/`.word` call inside a batched round body forks the
    // draw-site logic away from the scalar oracle. Both inline sites in
    // the table impl are flagged; the designated fill pass and the free
    // helper are not.
    let diags = lint_fixture("keyed_row_draw_table.rs", "crates/core/src/table.rs");
    assert_eq!(
        diags,
        vec![
            ("raw-row-draw".to_string(), 20),
            ("raw-row-draw".to_string(), 24),
        ]
    );
}

#[test]
fn every_keyed_row_draw_is_flagged_in_chunk_phase_files() {
    // As executor.rs the whole file is a batched round body: the free
    // helper's keyed draw on line 29 is now also in scope; the fill
    // pass stays exempt.
    let diags = lint_fixture("keyed_row_draw_table.rs", "crates/sim/src/executor.rs");
    assert_eq!(
        diags,
        vec![
            ("raw-row-draw".to_string(), 20),
            ("raw-row-draw".to_string(), 24),
            ("raw-row-draw".to_string(), 29),
        ]
    );
}

#[test]
fn unlisted_ordering_is_flagged_despite_justification() {
    let diags = lint_fixture("unlisted_ordering.rs", "crates/sim/src/pool.rs");
    assert_eq!(diags, vec![("atomic-ordering".to_string(), 8)]);
}

#[test]
fn missing_ordering_justification_is_flagged() {
    let diags = lint_fixture("missing_justification.rs", "crates/sim/src/runner.rs");
    assert_eq!(diags, vec![("atomic-ordering".to_string(), 9)]);
}

#[test]
fn orderings_outside_audited_files_are_not_flagged() {
    let diags = lint_fixture("missing_justification.rs", "crates/sim/src/convergence.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bad_crate_root_header_is_flagged() {
    let diags = lint_fixture("bad_header.rs", "crates/rumor/src/lib.rs");
    assert_eq!(
        diags,
        vec![
            ("lint-header".to_string(), 1),
            ("lint-header".to_string(), 1),
        ]
    );
}

#[test]
fn waiver_with_reason_silences_a_determinism_rule() {
    let diags = lint_fixture("waived.rs", "crates/core/src/colony.rs");
    assert!(diags.is_empty(), "waiver must apply: {diags:?}");
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    for path in [
        "crates/model/src/census.rs",
        "crates/sim/src/executor.rs",
        "crates/analysis/src/table.rs",
    ] {
        let diags = lint_fixture("clean.rs", path);
        assert!(
            diags.is_empty(),
            "clean fixture flagged at {path}: {diags:?}"
        );
    }
}
