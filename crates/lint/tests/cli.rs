//! End-to-end tests of the `hh_lint` binary: exit codes, `--json`
//! output shape, and `--as` virtual-path scoping — the same interface
//! CI's `lint-analysis` job and the tier-1 facade gate consume.

use std::process::Command;

fn hh_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hh_lint"))
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_tree_is_clean_and_exits_zero() {
    let output = hh_lint()
        .args(["--workspace", "--docs"])
        .output()
        .expect("run hh_lint");
    assert!(
        output.status.success(),
        "workspace must lint clean:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn violation_fixture_exits_nonzero_with_span() {
    let output = hh_lint()
        .args([
            "--as",
            "crates/core/src/colony.rs",
            &fixture("stray_unsafe.rs"),
        ])
        .output()
        .expect("run hh_lint");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("crates/core/src/colony.rs:8: [unsafe-confinement]"),
        "diagnostic must carry the virtual file:line span, got:\n{stdout}"
    );
}

#[test]
fn json_report_shape_is_stable() {
    let output = hh_lint()
        .args([
            "--json",
            "--as",
            "crates/sim/src/runner.rs",
            &fixture("missing_justification.rs"),
        ])
        .output()
        .expect("run hh_lint");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"violations\": 1"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"atomic-ordering\""), "{stdout}");
    assert!(stdout.contains("\"line\": 9"), "{stdout}");
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());
}

#[test]
fn unknown_flags_are_usage_errors() {
    let output = hh_lint().arg("--frobnicate").output().expect("run hh_lint");
    assert_eq!(output.status.code(), Some(2));
}
