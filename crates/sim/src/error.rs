//! Error type for the execution harness.

use std::error::Error;
use std::fmt;

use hh_model::ModelError;

/// Errors raised when constructing or driving a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A model-level error surfaced by the environment.
    Model(ModelError),
    /// The colony handed to the simulation does not match the
    /// environment's ant count.
    AgentCountMismatch {
        /// Number of agents supplied.
        agents: usize,
        /// Environment colony size `n`.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model(err) => write!(f, "model error: {err}"),
            SimError::AgentCountMismatch { agents, n } => {
                write!(f, "got {agents} agents for an environment of {n} ants")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(err) => Some(err),
            SimError::AgentCountMismatch { .. } => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(err: ModelError) -> Self {
        SimError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err = SimError::from(ModelError::EmptyColony);
        assert!(err.to_string().contains("model error"));
        assert!(err.source().is_some());

        let err = SimError::AgentCountMismatch { agents: 3, n: 5 };
        assert!(err.to_string().contains("3 agents"));
        assert!(err.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
