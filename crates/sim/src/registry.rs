//! The scenario registry: named, composable workloads as data.
//!
//! Every "with high probability" claim in the paper is a statement over a
//! *family* of instances — colony size × nest-quality profile × fault
//! schedule — and every experiment, bench, and example needs concrete
//! members of those families. This module turns them into data instead of
//! code: a [`Scenario`] is assembled from three composable axes,
//!
//! * [`QualityProfile`] — all-good, good-prefix, single-good, or an
//!   adversarial non-binary tie;
//! * [`FaultSchedule`] — none, crash, delay, or mixed perturbations;
//! * [`ColonyMix`] — a uniform colony of one [`Algorithm`], an
//!   idle-fraction colony (Afek–Gordon–Sulamy's idle ants), a colony with
//!   planted Byzantine recruiters, or a heterogeneous two-algorithm mix;
//!
//! plus a convergence rule and a round budget. The named catalog
//! ([`all_scenarios`], [`lookup`], [`with_tag`]) spans colony sizes 16 to
//! 4096 across all three axes, and the repository's
//! `tests/registry_conformance.rs` harness runs *every* entry — so adding
//! a scenario automatically adds its tests.
//!
//! # Examples
//!
//! ```
//! use hh_sim::registry::{self, Tag};
//!
//! // Run a catalog scenario by name.
//! let scenario = registry::lookup("baseline-16").expect("registered");
//! let outcome = scenario.run(scenario.base_seed())?;
//! assert!(outcome.solved.is_some());
//!
//! // Filter the catalog by tag.
//! assert!(!registry::with_tag(Tag::Crash).is_empty());
//!
//! // Or compose a custom scenario from the same axes.
//! use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
//! let custom = Scenario::custom(
//!     "my-workload",
//!     64,
//!     QualityProfile::GoodPrefix { k: 4, good: 2 },
//!     FaultSchedule::None,
//!     ColonyMix::Uniform(Algorithm::Simple),
//! );
//! assert!(custom.run(1)?.solved.is_some());
//! # Ok::<(), hh_sim::SimError>(())
//! ```

use hh_core::{colony, Colony, SpreadStrategy};
use hh_model::faults::{CrashPlan, CrashStyle, DelayPlan};
use hh_model::seeding::{derive_seed, StreamKind};
use hh_model::{ColonyConfig, NoiseModel, Quality, QualitySpec};

use crate::convergence::ConvergenceRule;
use crate::error::SimError;
use crate::executor::{EngineKind, Perturbations, RunOutcome, Simulation};
use crate::runner::{run_trials_with_workers, TrialOutcome};
use crate::scenario::ScenarioSpec;

/// Which algorithm a (sub-)colony runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Algorithm {
    /// The optimal `O(log n)` algorithm (Section 4); deterministic agents.
    Optimal,
    /// The paper-faithful simple `O(k log n)` algorithm (Section 5).
    Simple,
    /// The simple algorithm hardened with arrival re-assessment: carried
    /// ants re-check the quality of the nest they were taken to, which
    /// blunts bad-nest kidnappers (needs the "assessing go" extension,
    /// enabled automatically).
    HardenedSimple,
    /// The adaptive-recruitment-rate variant (Section 6).
    Adaptive,
    /// The non-binary quality-weighted variant (Section 6) with
    /// selectivity exponent `gamma`; requires the "assessing go" model
    /// extension, which [`Scenario`] enables automatically.
    Quality {
        /// Selectivity exponent `γ` of the `(count/n)·qᵞ` rule.
        gamma: f64,
    },
    /// The Section 3 lower-bound spreading process: no quality sensing,
    /// pure rumor spreading under one of the [`SpreadStrategy`] regimes.
    Spreader {
        /// How ignorant spreaders behave while uninformed.
        strategy: SpreadStrategy,
    },
}

impl Algorithm {
    /// A short static name for reporting.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Optimal => "optimal",
            // Hardened agents are SimpleAnts with different options and
            // share their label.
            Algorithm::Simple | Algorithm::HardenedSimple => "simple",
            Algorithm::Adaptive => "adaptive",
            Algorithm::Quality { .. } => "quality",
            Algorithm::Spreader { strategy } => strategy.label(),
        }
    }

    /// Builds a uniform colony of `n` agents running this algorithm.
    #[must_use]
    pub fn build(&self, n: usize, seed: u64) -> Colony {
        match self {
            Algorithm::Optimal => colony::optimal(n),
            Algorithm::Simple => colony::simple(n, seed),
            Algorithm::HardenedSimple => colony::simple_with_options(
                n,
                seed,
                hh_core::UrnOptions {
                    reassess_on_arrival: true,
                    ..hh_core::UrnOptions::default()
                },
            ),
            Algorithm::Adaptive => colony::adaptive(n, seed),
            Algorithm::Quality { gamma } => colony::quality(n, seed, *gamma),
            Algorithm::Spreader { strategy } => colony::spreaders(n, seed, *strategy),
        }
    }

    /// Returns `true` if the algorithm needs quality revealed on `go`.
    #[must_use]
    fn needs_quality_on_go(&self) -> bool {
        matches!(self, Algorithm::Quality { .. } | Algorithm::HardenedSimple)
    }
}

/// The nest-quality axis: which `k`-nest habitat the colony faces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QualityProfile {
    /// All `k` nests good: pure symmetry breaking, the hardest race.
    AllGood {
        /// Number of candidate nests.
        k: usize,
    },
    /// The first `good` of `k` nests good, the rest bad.
    GoodPrefix {
        /// Number of candidate nests.
        k: usize,
        /// Number of good nests.
        good: usize,
    },
    /// Exactly one good nest among `k` — the needle-in-a-haystack
    /// lower-bound setting of Section 3.
    SingleGood {
        /// Number of candidate nests.
        k: usize,
        /// 1-based index of the unique good nest.
        good: usize,
    },
    /// An adversarial non-binary tie: two rival nests of quality 0.9 and
    /// `k − 2` mediocre decoys at 0.45. Non-binary agents must both break
    /// the tie and reject the decoys (Section 6's quality extension).
    AdversarialTie {
        /// Number of candidate nests (≥ 2).
        k: usize,
    },
    /// Explicit per-nest qualities (non-binary).
    Explicit(Vec<Quality>),
}

impl QualityProfile {
    /// The number of candidate nests.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            QualityProfile::AllGood { k }
            | QualityProfile::GoodPrefix { k, .. }
            | QualityProfile::SingleGood { k, .. }
            | QualityProfile::AdversarialTie { k } => *k,
            QualityProfile::Explicit(qualities) => qualities.len(),
        }
    }

    /// `true` for profiles whose qualities are not binary 0/1, which need
    /// the "assessing go" model extension and quality-aware agents to be
    /// meaningful.
    #[must_use]
    pub fn is_non_binary(&self) -> bool {
        matches!(
            self,
            QualityProfile::AdversarialTie { .. } | QualityProfile::Explicit(_)
        )
    }

    /// Materializes the profile into the model's [`QualitySpec`].
    ///
    /// # Panics
    ///
    /// Panics if an `AdversarialTie` has `k < 2` (catalog-definition bug).
    #[must_use]
    pub fn spec(&self) -> QualitySpec {
        match self {
            QualityProfile::AllGood { k } => QualitySpec::all_good(*k),
            QualityProfile::GoodPrefix { k, good } => QualitySpec::good_prefix(*k, *good),
            QualityProfile::SingleGood { k, good } => QualitySpec::single_good(*k, *good),
            QualityProfile::AdversarialTie { k } => {
                assert!(*k >= 2, "an adversarial tie needs at least two nests");
                let rival = Quality::new(0.9).expect("valid quality");
                let decoy = Quality::new(0.45).expect("valid quality");
                let mut qualities = vec![decoy; *k];
                qualities[0] = rival;
                qualities[1] = rival;
                QualitySpec::Explicit(qualities)
            }
            QualityProfile::Explicit(qualities) => QualitySpec::Explicit(qualities.clone()),
        }
    }
}

/// The fault/asynchrony axis: which Section 6 perturbations apply.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultSchedule {
    /// The unperturbed baseline model.
    None,
    /// A `fraction` of the colony crash-stops at `round`.
    Crash {
        /// Fraction of the colony that crashes, in `[0, 1]`.
        fraction: f64,
        /// The (inclusive) crash round.
        round: u64,
        /// Where crashed ants come to rest.
        style: CrashStyle,
    },
    /// Independent per-(ant, round) delays with this probability.
    Delay {
        /// Per-step delay probability, in `[0, 1]`.
        probability: f64,
    },
    /// Crashes and delays at once.
    Mixed {
        /// Fraction of the colony that crashes, in `[0, 1]`.
        crash_fraction: f64,
        /// The (inclusive) crash round.
        crash_round: u64,
        /// Per-step delay probability, in `[0, 1]`.
        delay_probability: f64,
    },
}

impl FaultSchedule {
    /// `true` if the schedule perturbs nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, FaultSchedule::None)
    }

    /// Materializes the schedule into executor [`Perturbations`] for a
    /// colony of `n`, with victim selection and delay draws derived from
    /// `seed`. Returns `None` for the unperturbed baseline.
    #[must_use]
    pub fn perturbations(&self, n: usize, seed: u64) -> Option<Perturbations> {
        match *self {
            FaultSchedule::None => None,
            FaultSchedule::Crash {
                fraction,
                round,
                style,
            } => Some(Perturbations {
                crash: CrashPlan::fraction(n, fraction, round, style, seed),
                delay: DelayPlan::never(),
            }),
            FaultSchedule::Delay { probability } => Some(Perturbations {
                crash: CrashPlan::none(n),
                delay: DelayPlan::new(probability, seed),
            }),
            FaultSchedule::Mixed {
                crash_fraction,
                crash_round,
                delay_probability,
            } => Some(Perturbations {
                crash: CrashPlan::fraction(
                    n,
                    crash_fraction,
                    crash_round,
                    CrashStyle::InPlace,
                    seed,
                ),
                delay: DelayPlan::new(delay_probability, seed),
            }),
        }
    }
}

/// The colony-composition axis: who the `n` ants actually are.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ColonyMix {
    /// Every ant runs the same algorithm.
    Uniform(Algorithm),
    /// An `idle` fraction of the colony are [`IdlerAnt`]s that do no work
    /// and rely on being carried; the rest run `algorithm`.
    ///
    /// [`IdlerAnt`]: hh_core::IdlerAnt
    IdleFraction {
        /// The working majority's algorithm.
        algorithm: Algorithm,
        /// Fraction of the colony that idles, in `[0, 1]`.
        idle: f64,
    },
    /// `adversaries` Byzantine bad-nest recruiters planted among an
    /// honest colony running `algorithm`.
    Byzantine {
        /// The honest majority's algorithm.
        algorithm: Algorithm,
        /// Number of planted adversaries.
        adversaries: usize,
    },
    /// A heterogeneous colony: a `fraction_b` share runs `b`, the rest
    /// runs `a`. Both sub-colonies are honest.
    Heterogeneous {
        /// The majority algorithm.
        a: Algorithm,
        /// The minority algorithm.
        b: Algorithm,
        /// Fraction of the colony running `b`, in `[0, 1]`.
        fraction_b: f64,
    },
}

impl ColonyMix {
    /// The algorithm run by the honest working majority.
    #[must_use]
    pub fn primary_algorithm(&self) -> &Algorithm {
        match self {
            ColonyMix::Uniform(algorithm)
            | ColonyMix::IdleFraction { algorithm, .. }
            | ColonyMix::Byzantine { algorithm, .. } => algorithm,
            ColonyMix::Heterogeneous { a, .. } => a,
        }
    }

    /// The number of non-primary agents this mix plants at the tail of
    /// the colony: idlers, adversaries, or the minority sub-colony
    /// (0 for a uniform mix). Fractions are rounded, clamped so a
    /// nonzero remainder of primary agents always survives.
    #[must_use]
    pub fn planted_count(&self, n: usize) -> usize {
        match self {
            ColonyMix::Uniform(_) => 0,
            ColonyMix::IdleFraction { idle, .. } => share(n, *idle),
            ColonyMix::Byzantine { adversaries, .. } => (*adversaries).min(n),
            ColonyMix::Heterogeneous { fraction_b, .. } => share(n, *fraction_b),
        }
    }

    /// Builds the colony of `n` agents for base seed `seed`.
    #[must_use]
    pub fn build(&self, n: usize, seed: u64) -> Colony {
        match self {
            ColonyMix::Uniform(algorithm) => algorithm.build(n, seed),
            ColonyMix::IdleFraction { algorithm, .. } => {
                let mut agents = algorithm.build(n, seed);
                colony::plant_idlers(&mut agents, self.planted_count(n));
                agents
            }
            ColonyMix::Byzantine {
                algorithm,
                adversaries,
            } => {
                let mut agents = algorithm.build(n, seed);
                colony::plant_adversaries(&mut agents, *adversaries, |_| {
                    hh_core::BadNestRecruiter::new()
                });
                agents
            }
            ColonyMix::Heterogeneous { a, b, .. } => {
                let mut agents = a.build(n, seed);
                // The minority sub-colony draws from its own derived seed
                // stream so the two algorithms never share coins.
                let b_seed = derive_seed(seed, StreamKind::Auxiliary, 0xB);
                let count = self.planted_count(n);
                let start = n - count;
                for (slot, agent) in b.build(n, b_seed).into_iter().enumerate().skip(start) {
                    agents.replace(slot, agent);
                }
                agents
            }
        }
    }

    /// Returns `true` if any sub-colony needs quality revealed on `go`.
    fn needs_quality_on_go(&self) -> bool {
        match self {
            ColonyMix::Uniform(algorithm)
            | ColonyMix::IdleFraction { algorithm, .. }
            | ColonyMix::Byzantine { algorithm, .. } => algorithm.needs_quality_on_go(),
            ColonyMix::Heterogeneous { a, b, .. } => {
                a.needs_quality_on_go() || b.needs_quality_on_go()
            }
        }
    }
}

/// Rounds a fractional share of the colony to a head-count, clamped so a
/// nonzero fraction below one never consumes the whole colony.
fn share(n: usize, fraction: f64) -> usize {
    let fraction = fraction.clamp(0.0, 1.0);
    let count = ((n as f64) * fraction).round() as usize;
    if fraction < 1.0 {
        count.min(n.saturating_sub(1))
    } else {
        n
    }
}

/// Catalog tags, derived from a scenario's axes: one size band, one
/// quality tag, one fault tag, and one mix tag per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Tag {
    /// Colony size below 64.
    Tiny,
    /// Colony size in `64..256`.
    Small,
    /// Colony size in `256..1024`.
    Medium,
    /// Colony size 1024 or above.
    Large,
    /// All nests good.
    AllGood,
    /// A good prefix among bad nests.
    GoodPrefix,
    /// Exactly one good nest.
    SingleGood,
    /// The adversarial non-binary tie.
    Tie,
    /// Explicit non-binary qualities.
    NonBinary,
    /// No perturbations.
    Clean,
    /// Crash-stop faults.
    Crash,
    /// Per-round delays (partial asynchrony).
    Delay,
    /// Crashes and delays combined.
    MixedFaults,
    /// A uniform single-algorithm colony.
    Uniform,
    /// An idle-fraction colony.
    Idle,
    /// Planted Byzantine recruiters.
    Byzantine,
    /// A heterogeneous two-algorithm colony.
    Hetero,
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Tag::Tiny => "tiny",
            Tag::Small => "small",
            Tag::Medium => "medium",
            Tag::Large => "large",
            Tag::AllGood => "all-good",
            Tag::GoodPrefix => "good-prefix",
            Tag::SingleGood => "single-good",
            Tag::Tie => "tie",
            Tag::NonBinary => "non-binary",
            Tag::Clean => "clean",
            Tag::Crash => "crash",
            Tag::Delay => "delay",
            Tag::MixedFaults => "mixed-faults",
            Tag::Uniform => "uniform",
            Tag::Idle => "idle",
            Tag::Byzantine => "byzantine",
            Tag::Hetero => "hetero",
        };
        f.write_str(name)
    }
}

/// One named workload: axes + convergence rule + round budget.
///
/// Catalog entries come from [`all_scenarios`]/[`lookup`]; bespoke
/// workloads are assembled with [`Scenario::custom`] from the same axes,
/// so sweeps in experiments and examples stay data-driven.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    summary: String,
    n: usize,
    profile: QualityProfile,
    faults: FaultSchedule,
    mix: ColonyMix,
    noise: NoiseModel,
    rule: ConvergenceRule,
    max_rounds: u64,
    base_seed: u64,
    tags: Vec<Tag>,
    expect_convergence: bool,
    round_threads: usize,
    engine: EngineKind,
}

impl Scenario {
    /// Assembles a scenario from the three axes.
    ///
    /// The convergence rule defaults to the natural one for the axes (see
    /// [`Scenario::default_rule`]), the round budget to 40 000, the base
    /// seed to a hash of `name`, and the tags to the derived tags; all are
    /// overridable with the builder setters.
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        n: usize,
        profile: QualityProfile,
        faults: FaultSchedule,
        mix: ColonyMix,
    ) -> Self {
        let name = name.into();
        let rule = Self::default_rule(&profile, &faults, &mix);
        let base_seed = name_seed(&name);
        let mut scenario = Self {
            name,
            summary: String::new(),
            n,
            profile,
            faults,
            mix,
            noise: NoiseModel::exact(),
            rule,
            max_rounds: 40_000,
            base_seed,
            tags: Vec::new(),
            expect_convergence: true,
            round_threads: 1,
            engine: EngineKind::default(),
        };
        scenario.tags = scenario.derived_tags();
        scenario
    }

    /// The natural success rule for a combination of axes: quorum rules
    /// where unanimity is unattainable (idlers, Byzantine kidnappers),
    /// any-nest commitment for non-binary habitats, a stability window
    /// under faults, and plain commitment consensus otherwise.
    #[must_use]
    pub fn default_rule(
        profile: &QualityProfile,
        faults: &FaultSchedule,
        mix: &ColonyMix,
    ) -> ConvergenceRule {
        match mix {
            ColonyMix::Byzantine { .. } => ConvergenceRule::quorum(0.9, 8),
            ColonyMix::IdleFraction { .. } => ConvergenceRule::quorum(0.7, 8),
            _ if profile.is_non_binary() => ConvergenceRule::commitment_any(),
            _ if !faults.is_none() => ConvergenceRule::stable_commitment(8),
            _ => ConvergenceRule::commitment(),
        }
    }

    /// Sets the one-line human summary.
    #[must_use]
    pub fn summary(mut self, summary: impl Into<String>) -> Self {
        self.summary = summary.into();
        self
    }

    /// Overrides the convergence rule.
    #[must_use]
    pub fn rule(mut self, rule: ConvergenceRule) -> Self {
        self.rule = rule;
        self
    }

    /// Overrides the convergence round budget.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides the base seed (trial seeds derive from it).
    #[must_use]
    pub fn base_seed_value(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the observation-noise model (exact by default).
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Declares the catalog tags explicitly. The conformance suite checks
    /// declared tags against [`Scenario::derived_tags`], so a typo here is
    /// a test failure, not silent misfiling.
    #[must_use]
    pub fn tags_declared(mut self, tags: &[Tag]) -> Self {
        self.tags = tags.to_vec();
        self
    }

    /// Marks the scenario as one that must *not* converge within its
    /// budget (e.g. an all-crash colony).
    #[must_use]
    pub fn expect_no_convergence(mut self) -> Self {
        self.expect_convergence = false;
        self
    }

    /// Sets the intra-round thread count every simulation this scenario
    /// builds runs with (default 1, the serial engine). Outcomes are
    /// bit-identical for every setting — see
    /// [`Simulation::with_round_threads`] — so this is purely a
    /// performance knob; the conformance suite holds the whole catalog
    /// to that contract.
    ///
    /// **Perturbed scenarios ignore this setting at execution time**:
    /// crash/delay rounds always run on the serial scalar path, so the
    /// setting is remembered but inert — bit-identical to the serial run
    /// by construction (pinned by
    /// `perturbed_round_threads_is_bit_identical_to_serial`).
    #[must_use]
    pub fn round_threads(mut self, threads: usize) -> Self {
        self.round_threads = threads;
        self
    }

    /// The configured intra-round thread count.
    #[must_use]
    pub fn intra_round_threads(&self) -> usize {
        self.round_threads
    }

    /// Selects the round engine every simulation this scenario builds
    /// runs with (default [`EngineKind::Soa`]). The scalar engine is the
    /// distribution-identity oracle — outcomes are bit-identical to the
    /// SoA engine's for equal seeds, and `tests/soa_equivalence.rs`
    /// holds the whole catalog to that contract.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The configured round engine.
    #[must_use]
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// The scenario's registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The one-line human summary.
    #[must_use]
    pub fn summary_text(&self) -> &str {
        &self.summary
    }

    /// Colony size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of candidate nests `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.profile.k()
    }

    /// The quality axis.
    #[must_use]
    pub fn profile(&self) -> &QualityProfile {
        &self.profile
    }

    /// The fault axis.
    #[must_use]
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The colony-mix axis.
    #[must_use]
    pub fn mix(&self) -> &ColonyMix {
        &self.mix
    }

    /// The success rule.
    #[must_use]
    pub fn convergence_rule(&self) -> ConvergenceRule {
        self.rule
    }

    /// The convergence round budget.
    #[must_use]
    pub fn round_budget(&self) -> u64 {
        self.max_rounds
    }

    /// The base seed from which trial seeds derive.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The declared tags.
    #[must_use]
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Whether the scenario is expected to converge within its budget
    /// (under its base seed).
    #[must_use]
    pub fn expects_convergence(&self) -> bool {
        self.expect_convergence
    }

    /// Recomputes the tags from the axes: size band, quality profile,
    /// fault schedule, colony mix — always exactly four.
    #[must_use]
    pub fn derived_tags(&self) -> Vec<Tag> {
        let size = match self.n {
            n if n < 64 => Tag::Tiny,
            n if n < 256 => Tag::Small,
            n if n < 1024 => Tag::Medium,
            _ => Tag::Large,
        };
        let quality = match self.profile {
            QualityProfile::AllGood { .. } => Tag::AllGood,
            QualityProfile::GoodPrefix { .. } => Tag::GoodPrefix,
            QualityProfile::SingleGood { .. } => Tag::SingleGood,
            QualityProfile::AdversarialTie { .. } => Tag::Tie,
            QualityProfile::Explicit(_) => Tag::NonBinary,
        };
        let fault = match self.faults {
            FaultSchedule::None => Tag::Clean,
            FaultSchedule::Crash { .. } => Tag::Crash,
            FaultSchedule::Delay { .. } => Tag::Delay,
            FaultSchedule::Mixed { .. } => Tag::MixedFaults,
        };
        let mix = match self.mix {
            ColonyMix::Uniform(_) => Tag::Uniform,
            ColonyMix::IdleFraction { .. } => Tag::Idle,
            ColonyMix::Byzantine { .. } => Tag::Byzantine,
            ColonyMix::Heterogeneous { .. } => Tag::Hetero,
        };
        vec![size, quality, fault, mix]
    }

    /// The seed for trial `trial` of this scenario.
    #[must_use]
    pub fn trial_seed(&self, trial: usize) -> u64 {
        derive_seed(self.base_seed, StreamKind::Auxiliary, trial as u64)
    }

    /// Materializes the declarative spec for one trial seed.
    #[must_use]
    pub fn spec_for(&self, seed: u64) -> ScenarioSpec {
        let mut config = ColonyConfig::new(self.n, self.profile.spec())
            .seed(seed)
            .noise(self.noise);
        if self.profile.is_non_binary() || self.mix.needs_quality_on_go() {
            config = config.reveal_quality_on_go();
        }
        if matches!(self.profile, QualityProfile::Explicit(_)) {
            // Explicit habitats may legitimately contain no binary-good
            // nest; the registry does not second-guess them.
            config = config.allow_no_good();
        }
        let mut spec = ScenarioSpec::from_config(config);
        if let Some(perturbations) = self.faults.perturbations(self.n, seed) {
            spec = spec.perturbations(perturbations);
        }
        spec
    }

    /// Builds the colony for one trial seed.
    #[must_use]
    pub fn colony_for(&self, seed: u64) -> Colony {
        self.mix.build(self.n, seed)
    }

    /// Builds a ready-to-run simulation for one trial seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn build(&self, seed: u64) -> Result<Simulation, SimError> {
        Ok(self
            .spec_for(seed)
            .build_simulation(self.colony_for(seed))?
            .with_engine(self.engine)
            .with_round_threads(self.round_threads))
    }

    /// Builds and runs one trial to the scenario's rule and budget.
    ///
    /// # Errors
    ///
    /// Propagates build and execution failures.
    pub fn run(&self, seed: u64) -> Result<RunOutcome, SimError> {
        self.build(seed)?
            .run_to_convergence(self.rule, self.max_rounds)
    }

    /// Runs `trials` independent trials (seeds derived per trial) on the
    /// default worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the first build or execution failure.
    pub fn run_trials(&self, trials: usize) -> Result<Vec<TrialOutcome>, SimError> {
        crate::runner::run_trials(trials, self.max_rounds, self.rule, |trial| {
            self.build(self.trial_seed(trial))
        })
    }

    /// Runs `trials` independent trials on an explicit worker count —
    /// outcomes are bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first build or execution failure.
    pub fn run_trials_with_workers(
        &self,
        trials: usize,
        workers: usize,
    ) -> Result<Vec<TrialOutcome>, SimError> {
        run_trials_with_workers(trials, self.max_rounds, self.rule, workers, |trial| {
            self.build(self.trial_seed(trial))
        })
    }
}

/// Hashes a scenario name into a stable base seed (FNV-1a folded through
/// the model's seed derivation).
fn name_seed(name: &str) -> u64 {
    let h = name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    derive_seed(h, StreamKind::Auxiliary, 0)
}

/// The full named catalog, spanning colony sizes 16–4096, all four
/// quality profiles, all four fault schedules, and all four colony mixes.
#[must_use]
pub fn all_scenarios() -> Vec<Scenario> {
    use Algorithm::{Adaptive, Optimal, Simple};
    vec![
        Scenario::custom(
            "baseline-16",
            16,
            QualityProfile::GoodPrefix { k: 2, good: 1 },
            FaultSchedule::None,
            ColonyMix::Uniform(Simple),
        )
        .summary("the smallest healthy colony: 16 simple ants, one good nest of two")
        .max_rounds(6_000)
        .tags_declared(&[Tag::Tiny, Tag::GoodPrefix, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "baseline-128",
            128,
            QualityProfile::GoodPrefix { k: 6, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Simple),
        )
        .summary("the quickstart habitat: 128 simple ants, 6 nests, 2 good")
        .max_rounds(20_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "all-good-race-256",
            256,
            QualityProfile::AllGood { k: 4 },
            FaultSchedule::None,
            ColonyMix::Uniform(Simple),
        )
        .summary("pure symmetry breaking: every nest good, the colony must just agree")
        .max_rounds(30_000)
        .tags_declared(&[Tag::Medium, Tag::AllGood, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "single-good-needle-128",
            128,
            QualityProfile::SingleGood { k: 8, good: 5 },
            FaultSchedule::None,
            ColonyMix::Uniform(Simple),
        )
        .summary("the Section 3 lower-bound habitat: one good nest hidden among 8")
        .max_rounds(40_000)
        .tags_declared(&[Tag::Small, Tag::SingleGood, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "optimal-1024",
            1024,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Optimal),
        )
        .summary("the O(log n) algorithm at scale, run to its all-final termination point")
        .rule(ConvergenceRule::all_final())
        .max_rounds(20_000)
        .tags_declared(&[Tag::Large, Tag::GoodPrefix, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "mega-colony-4096",
            4096,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Optimal),
        )
        .summary("the largest catalog colony: 4096 ants under the optimal algorithm")
        .rule(ConvergenceRule::all_final())
        .max_rounds(20_000)
        .tags_declared(&[Tag::Large, Tag::GoodPrefix, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "adaptive-many-nests-512",
            512,
            QualityProfile::AllGood { k: 16 },
            FaultSchedule::None,
            ColonyMix::Uniform(Adaptive),
        )
        .summary("the adaptive-rate variant where it shines: many competing nests")
        .max_rounds(60_000)
        .tags_declared(&[Tag::Medium, Tag::AllGood, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "quality-tie-128",
            128,
            QualityProfile::AdversarialTie { k: 4 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Quality { gamma: 2.0 }),
        )
        .summary("non-binary qualities: two 0.9 rivals and two 0.45 decoys")
        .max_rounds(40_000)
        .tags_declared(&[Tag::Small, Tag::Tie, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "spreader-rumor-512",
            512,
            QualityProfile::SingleGood { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Spreader {
                strategy: SpreadStrategy::WaitAtHome,
            }),
        )
        .summary("the Section 3 rumor-spreading process: 512 wait-at-home spreaders")
        .rule(ConvergenceRule::all_final())
        .max_rounds(20_000)
        .tags_declared(&[Tag::Medium, Tag::SingleGood, Tag::Clean, Tag::Uniform]),
        Scenario::custom(
            "crash-quarter-128",
            128,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::Crash {
                fraction: 0.25,
                round: 10,
                style: CrashStyle::InPlace,
            },
            ColonyMix::Uniform(Simple),
        )
        .summary("a quarter of the colony crash-stops in place at round 10")
        .max_rounds(30_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Crash, Tag::Uniform]),
        Scenario::custom(
            "crash-at-home-64",
            64,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::Crash {
                fraction: 0.15,
                round: 8,
                style: CrashStyle::AtHome,
            },
            ColonyMix::Uniform(Simple),
        )
        .summary("crashed ants walk home and idle there (the transportable crash style)")
        .max_rounds(30_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Crash, Tag::Uniform]),
        Scenario::custom(
            "delay-light-128",
            128,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::Delay { probability: 0.10 },
            ColonyMix::Uniform(Simple),
        )
        .summary("partial asynchrony: every (ant, round) step delayed with p = 0.1")
        .max_rounds(40_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Delay, Tag::Uniform]),
        Scenario::custom(
            "mixed-faults-128",
            128,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::Mixed {
                crash_fraction: 0.10,
                crash_round: 10,
                delay_probability: 0.05,
            },
            ColonyMix::Uniform(Simple),
        )
        .summary("crashes and delays at once, both in survivable doses")
        .max_rounds(40_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::MixedFaults, Tag::Uniform]),
        Scenario::custom(
            "idle-quarter-128",
            128,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::IdleFraction {
                algorithm: Simple,
                idle: 0.25,
            },
        )
        .summary("a quarter of the colony idles and is carried (Afek–Gordon–Sulamy)")
        .max_rounds(40_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Clean, Tag::Idle]),
        Scenario::custom(
            "idle-third-256",
            256,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::IdleFraction {
                algorithm: Simple,
                idle: 0.30,
            },
        )
        .summary("the low end of Afek–Gordon–Sulamy's studied idle range: 30% carried")
        .max_rounds(60_000)
        .tags_declared(&[Tag::Medium, Tag::GoodPrefix, Tag::Clean, Tag::Idle]),
        Scenario::custom(
            "idle-half-256",
            256,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::IdleFraction {
                algorithm: Simple,
                idle: 0.50,
            },
        )
        .summary("half the colony idles; the working half must carry everyone")
        .max_rounds(80_000)
        .tags_declared(&[Tag::Medium, Tag::GoodPrefix, Tag::Clean, Tag::Idle]),
        Scenario::custom(
            "idle-seventy-256",
            256,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::IdleFraction {
                algorithm: Simple,
                idle: 0.70,
            },
        )
        .summary("the high end of the Afek–Gordon–Sulamy range: a 30% working minority")
        .rule(ConvergenceRule::quorum(0.6, 8))
        .max_rounds(100_000)
        .tags_declared(&[Tag::Medium, Tag::GoodPrefix, Tag::Clean, Tag::Idle]),
        Scenario::custom(
            "byzantine-handful-96",
            96,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Byzantine {
                algorithm: Simple,
                adversaries: 4,
            },
        )
        .summary("four bad-nest recruiters against an honest simple colony")
        .max_rounds(30_000)
        .tags_declared(&[Tag::Small, Tag::GoodPrefix, Tag::Clean, Tag::Byzantine]),
        Scenario::custom(
            "hetero-simple-adaptive-256",
            256,
            QualityProfile::AllGood { k: 8 },
            FaultSchedule::None,
            ColonyMix::Heterogeneous {
                a: Simple,
                b: Adaptive,
                fraction_b: 0.5,
            },
        )
        .summary("half simple, half adaptive: mixed recruitment rates must still agree")
        .max_rounds(60_000)
        .tags_declared(&[Tag::Medium, Tag::AllGood, Tag::Clean, Tag::Hetero]),
        Scenario::custom(
            "all-crash-collapse-32",
            32,
            QualityProfile::GoodPrefix { k: 2, good: 1 },
            FaultSchedule::Crash {
                fraction: 1.0,
                round: 1,
                style: CrashStyle::InPlace,
            },
            ColonyMix::Uniform(Simple),
        )
        .summary("the degenerate bound: everyone crashes at round 1, nothing can converge")
        .max_rounds(300)
        .expect_no_convergence()
        .tags_declared(&[Tag::Tiny, Tag::GoodPrefix, Tag::Crash, Tag::Uniform]),
    ]
}

/// Looks a catalog scenario up by name.
#[must_use]
pub fn lookup(name: &str) -> Option<Scenario> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

/// All catalog scenarios carrying `tag`.
#[must_use]
pub fn with_tag(tag: Tag) -> Vec<Scenario> {
    all_scenarios()
        .into_iter()
        .filter(|s| s.tags().contains(&tag))
        .collect()
}

/// The catalog's scenario names, in registry order.
#[must_use]
pub fn names() -> Vec<String> {
    all_scenarios()
        .into_iter()
        .map(|s| s.name().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::Agent;

    #[test]
    fn catalog_is_large_and_uniquely_named() {
        let scenarios = all_scenarios();
        assert!(scenarios.len() >= 12, "catalog has {}", scenarios.len());
        let mut names: Vec<_> = scenarios.iter().map(Scenario::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
    }

    #[test]
    fn catalog_spans_all_three_axes() {
        let scenarios = all_scenarios();
        let has = |tag: Tag| scenarios.iter().any(|s| s.tags().contains(&tag));
        // Quality axis.
        assert!(has(Tag::AllGood) && has(Tag::GoodPrefix) && has(Tag::SingleGood) && has(Tag::Tie));
        // Fault axis.
        assert!(has(Tag::Clean) && has(Tag::Crash) && has(Tag::Delay) && has(Tag::MixedFaults));
        // Mix axis.
        assert!(has(Tag::Uniform) && has(Tag::Idle) && has(Tag::Byzantine) && has(Tag::Hetero));
        // Size bands from 16 to 4096.
        assert!(has(Tag::Tiny) && has(Tag::Large));
        let ns: Vec<_> = scenarios.iter().map(Scenario::n).collect();
        assert!(ns.contains(&16) && ns.contains(&4096));
    }

    #[test]
    fn lookup_and_tag_filtering() {
        let s = lookup("baseline-16").expect("registered");
        assert_eq!(s.n(), 16);
        assert_eq!(s.k(), 2);
        assert!(lookup("no-such-scenario").is_none());
        let crashes = with_tag(Tag::Crash);
        assert!(crashes.iter().all(|s| s.tags().contains(&Tag::Crash)));
        assert!(!crashes.is_empty());
        assert_eq!(names().len(), all_scenarios().len());
    }

    #[test]
    fn default_rules_follow_axes() {
        let clean = Scenario::custom(
            "t-clean",
            32,
            QualityProfile::AllGood { k: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Simple),
        );
        assert_eq!(clean.convergence_rule(), ConvergenceRule::commitment());
        let faulty = Scenario::custom(
            "t-faulty",
            32,
            QualityProfile::AllGood { k: 2 },
            FaultSchedule::Delay { probability: 0.1 },
            ColonyMix::Uniform(Algorithm::Simple),
        );
        assert_eq!(
            faulty.convergence_rule(),
            ConvergenceRule::stable_commitment(8)
        );
        let byz = Scenario::custom(
            "t-byz",
            32,
            QualityProfile::AllGood { k: 2 },
            FaultSchedule::None,
            ColonyMix::Byzantine {
                algorithm: Algorithm::Simple,
                adversaries: 2,
            },
        );
        assert_eq!(byz.convergence_rule(), ConvergenceRule::quorum(0.9, 8));
    }

    #[test]
    fn spec_and_colony_are_deterministic_per_seed() {
        let s = lookup("crash-quarter-128").expect("registered");
        assert_eq!(s.spec_for(5).config(), s.spec_for(5).config());
        let a = s.colony_for(5);
        let b = s.colony_for(5);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.label() == y.label() && x.is_honest() == y.is_honest()));
    }

    #[test]
    fn mixes_build_the_advertised_composition() {
        let idle = ColonyMix::IdleFraction {
            algorithm: Algorithm::Simple,
            idle: 0.25,
        }
        .build(16, 3);
        assert_eq!(idle.iter().filter(|a| a.label() == "idler").count(), 4);
        let byz = ColonyMix::Byzantine {
            algorithm: Algorithm::Simple,
            adversaries: 3,
        }
        .build(16, 3);
        assert_eq!(byz.iter().filter(|a| !a.is_honest()).count(), 3);
        let hetero = ColonyMix::Heterogeneous {
            a: Algorithm::Simple,
            b: Algorithm::Adaptive,
            fraction_b: 0.5,
        }
        .build(16, 3);
        assert_eq!(hetero.iter().filter(|a| a.label() == "simple").count(), 8);
        assert_eq!(hetero.iter().filter(|a| a.label() == "adaptive").count(), 8);
    }

    #[test]
    fn share_never_consumes_the_whole_colony_below_one() {
        assert_eq!(share(4, 0.0), 0);
        assert_eq!(share(4, 0.5), 2);
        assert_eq!(share(4, 0.99), 3, "clamped below n");
        assert_eq!(share(4, 1.0), 4);
    }

    #[test]
    fn adversarial_tie_materializes_two_rivals() {
        let spec = QualityProfile::AdversarialTie { k: 4 }.spec();
        let qualities = spec.materialize().unwrap();
        assert_eq!(qualities.iter().filter(|q| q.is_good()).count(), 2);
        assert!(qualities[0].is_good() && qualities[1].is_good());
        assert!(!qualities[2].is_good() && !qualities[3].is_good());
    }

    #[test]
    fn baseline_runs_and_solves() {
        let s = lookup("baseline-16").expect("registered");
        let outcome = s.run(s.base_seed()).unwrap();
        assert!(outcome.solved.is_some());
    }

    #[test]
    fn name_seeds_differ_across_names() {
        assert_ne!(name_seed("baseline-16"), name_seed("baseline-128"));
        assert_eq!(name_seed("x"), name_seed("x"));
    }
}
