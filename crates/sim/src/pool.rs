//! A persistent fork–join worker pool for deterministic intra-round
//! parallelism.
//!
//! [`WorkerPool`] spawns its threads **once** (per [`Simulation`]) and
//! reuses them every round. A dispatch ([`WorkerPool::run`]) publishes a
//! job — a `Fn(usize)` processing one part index — bumps an epoch, runs
//! part 0 on the calling thread while the workers run parts
//! `1..=workers`, and returns only after every part completed. Between
//! rounds workers spin briefly and then park with a timeout, so an idle
//! simulation stops burning CPU within microseconds and a missed
//! wake-up can only delay a round by the park timeout, never deadlock
//! it.
//!
//! Work distribution happens through [`scatter`]: each part's work
//! package sits in its own mutex slot, taken exactly once by the thread
//! that owns the part. In the steady state the only synchronization per
//! round is two epoch/done handshakes and one uncontended lock per part
//! — the per-ant loops themselves run lock-free on disjoint state.
//!
//! ## The one `unsafe`
//!
//! Sending a *borrowed* closure to persistent threads requires erasing
//! its lifetime (this is the same irreducible unsafety at the core of
//! `crossbeam::scope` and rayon). It is sound here because
//! [`WorkerPool::run`] does not return while any worker can still touch
//! the job: workers bump `done` only after their last use of the job
//! reference (panicking jobs are caught and still count), and `run`
//! blocks until `done` equals the worker count.
//! Everything else in the crate is `#![deny(unsafe_code)]`-clean.
//!
//! [`Simulation`]: crate::Simulation

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on intra-round parts (the main thread plus spawned
/// workers). Chunk bounds, scratch slots, and package arrays are sized
/// to this.
pub(crate) const MAX_ROUND_THREADS: usize = 16;

/// How long a waiter spins before escalating. Long enough to catch a
/// dispatch that is microseconds away (the common case on a hot round
/// loop with free cores), short enough that an oversubscribed machine —
/// e.g. a single-CPU CI container — degrades to scheduler hand-offs
/// instead of burning whole quanta in spin loops.
const SPINS_BEFORE_YIELD: u32 = 1 << 12;

/// How many yields a worker offers after spinning before parking.
const YIELDS_BEFORE_PARK: u32 = 64;

/// Park timeout: an upper bound on wake-up latency after a long idle
/// stretch, and the self-healing interval against any missed unpark.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// State shared between the owning thread and the pool workers.
struct Shared {
    /// Bumped once per dispatch (and once for shutdown); workers run one
    /// job per observed bump.
    epoch: AtomicUsize,
    /// Parts completed for the current epoch.
    done: AtomicUsize,
    /// Set if any worker's job panicked (the owning thread re-panics).
    panicked: AtomicBool,
    /// Terminal flag, observed at the next epoch bump.
    shutdown: AtomicBool,
    /// The current dispatch's job. Published before the epoch bump
    /// (release) and read after observing it (acquire); the `'static` is
    /// a lie the `done` protocol makes harmless — see the module docs.
    job: Mutex<Option<&'static (dyn Fn(usize) + Sync)>>,
}

/// A persistent fork–join pool; see the module docs.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (the pool then serves
    /// `workers + 1` parts per dispatch, part 0 running on the caller).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            job: Mutex::new(None),
        });
        let handles = (1..=workers)
            .map(|part| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hh-round-{part}"))
                    .spawn(move || worker_loop(&shared, part))
                    .expect("spawn round worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// The number of spawned workers (parts per dispatch minus one).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(part)` for every part: 0 on the calling thread,
    /// `1..=workers()` on the pool. Returns once all parts completed.
    ///
    /// Takes `&mut self` so the compiler enforces the one-dispatch-at-a-
    /// time invariant the epoch/done protocol (and thus the `unsafe`
    /// soundness argument) rests on — `WorkerPool` is otherwise `Sync`.
    ///
    /// # Panics
    ///
    /// Re-panics on the calling thread if any worker's part panicked.
    pub(crate) fn run(&mut self, job: &(dyn Fn(usize) + Sync)) {
        let shared = &*self.shared;
        // SAFETY: the job reference outlives every use. Workers read it
        // only between observing this dispatch's epoch bump and bumping
        // `done` for it, and this function does not return until `done`
        // reaches the worker count — so the erased lifetime can never
        // actually dangle.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
        *shared.job.lock().expect("pool poisoned") = Some(erased);
        // ordering: Relaxed — the reset needs no ordering of its own:
        // it is published by the epoch release-bump just below, and
        // workers only touch `done` through RMWs issued after acquiring
        // that bump, so they can never observe the previous dispatch's
        // count. (Loosened from Release by the PR 6 audit.)
        shared.done.store(0, Ordering::Relaxed);
        // ordering: Release — the dispatch publication point: makes the
        // job slot write and the `done` reset visible to every worker
        // whose epoch load acquires this bump.
        shared.epoch.fetch_add(1, Ordering::Release);
        for handle in &self.handles {
            handle.thread().unpark();
        }

        // The completion barrier must hold on EVERY exit path: if the
        // caller's part-0 job panics, unwinding out of `run` before the
        // workers finished would free the job's stack frame while they
        // still call through the erased reference. The guard's drop
        // waits out the barrier (and clears the job slot) first.
        let barrier = BarrierGuard {
            shared,
            workers: self.handles.len(),
        };
        job(0);
        drop(barrier);

        // ordering: AcqRel — the acquire half pairs with a panicking
        // worker's release store so the flag read here is current; the
        // release half orders the reset before the next dispatch's
        // epoch bump (the barrier has already completed, so no worker
        // store can race this swap).
        if shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("a round worker panicked; the simulation state is inconsistent");
        }
    }
}

/// Waits for every worker's `done` bump and clears the published job —
/// on drop, so the wait also runs while unwinding a part-0 panic (the
/// load-bearing half of the `unsafe` soundness argument).
struct BarrierGuard<'a> {
    shared: &'a Shared,
    workers: usize,
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        let mut spins = 0u32;
        // ordering: Acquire — pairs with each worker's release
        // increment, so once the count is reached every worker's job
        // side effects (and its last use of the erased job reference)
        // happen-before this thread proceeds. This load IS the
        // completion barrier the module's `unsafe` soundness argument
        // rests on; do not weaken it.
        while self.shared.done.load(Ordering::Acquire) < self.workers {
            spins = spins.saturating_add(1);
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                // Oversubscribed (or a long part): hand the CPU to the
                // workers instead of burning a quantum polling.
                std::thread::yield_now();
            }
        }
        if let Ok(mut job) = self.shared.job.lock() {
            *job = None;
        }
        if std::thread::panicking() {
            // Part 0 is already unwinding; clear any concurrent worker
            // flag so the next dispatch does not double-report it.
            // ordering: Release — defensive; the barrier above already
            // ordered every worker store before this reset, and the
            // next dispatch's epoch bump would publish it anyway.
            self.shared.panicked.store(false, Ordering::Release);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // ordering: Release — the shutdown flag must be visible to any
        // worker that acquires the epoch bump below; the bump's release
        // is what actually publishes it.
        self.shared.shutdown.store(true, Ordering::Release);
        // ordering: Release — same publication point as a dispatch: a
        // worker that acquires this bump observes `shutdown = true`.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for handle in &self.handles {
            handle.thread().unpark();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, part: usize) {
    let mut seen = 0usize;
    loop {
        // Wait for the next epoch: spin briefly (rounds are hot), then
        // park with a timeout (idle pools must not burn CPU; the timeout
        // also self-heals any conceivable missed unpark).
        let mut spins = 0u32;
        loop {
            // ordering: Acquire — pairs with the dispatcher's release
            // bump: observing a new epoch makes the published job slot
            // and the `done` reset visible before this worker reads
            // them.
            let epoch = shared.epoch.load(Ordering::Acquire);
            if epoch != seen {
                seen = epoch;
                break;
            }
            spins = spins.saturating_add(1);
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else if spins < SPINS_BEFORE_YIELD + YIELDS_BEFORE_PARK {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        }
        // ordering: Acquire — ordered after the epoch acquire above;
        // acquire (rather than relaxed) so the flag read cannot be
        // hoisted before the epoch observation that published it.
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let job = shared
            .job
            .lock()
            .expect("pool poisoned")
            .expect("dispatch published a job before bumping the epoch");
        // Catch panics so the worker thread (and thus the pool) survives
        // a panicking job; the dispatcher re-raises after the barrier.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(part))).is_err() {
            // ordering: Release — pairs with the dispatcher's AcqRel
            // swap; also ordered before the `done` release increment
            // below, so the flag is always visible once the barrier
            // completes.
            shared.panicked.store(true, Ordering::Release);
        }
        // ordering: Release — the worker's completion publication: all
        // of this part's job side effects (and its last touch of the
        // erased job reference) happen-before a dispatcher that
        // acquire-reads the full count. The other half of the barrier.
        shared.done.fetch_add(1, Ordering::Release);
    }
}

/// Runs one work package per part: serially in part order when `pool` is
/// `None` (the `round_threads = 1` path — the same code, trivially
/// scheduled), otherwise scattered across the pool. Slots must be
/// pre-filled with `slots[part] = package` for every part that has work;
/// each slot is taken exactly once by the thread owning that part.
pub(crate) fn scatter<P: Send>(
    pool: Option<&mut WorkerPool>,
    parts: usize,
    slots: &[Mutex<Option<P>>],
    work: impl Fn(usize, P) + Sync,
) {
    let take_and_work = |part: usize| {
        let package = slots[part].lock().expect("scatter slot poisoned").take();
        if let Some(package) = package {
            work(part, package);
        }
    };
    match pool {
        None => {
            for part in 0..parts {
                take_and_work(part);
            }
        }
        Some(pool) => {
            debug_assert!(pool.workers() + 1 >= parts, "more parts than pool threads");
            pool.run(&take_and_work);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_part_every_dispatch() {
        let mut pool = WorkerPool::new(3);
        let hits = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(&|part| {
                hits.fetch_add(1 << (8 * part), Ordering::Relaxed);
            });
        }
        // 100 dispatches × 4 parts, one count per byte lane.
        assert_eq!(hits.load(Ordering::Relaxed), 0x6464_6464);
    }

    #[test]
    fn pool_survives_idle_gaps() {
        let mut pool = WorkerPool::new(2);
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // Long enough that every worker has parked.
        std::thread::sleep(Duration::from_millis(10));
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn scatter_without_pool_runs_in_part_order() {
        let order = Mutex::new(Vec::new());
        let slots: [Mutex<Option<usize>>; 4] = std::array::from_fn(|i| Mutex::new(Some(i * 10)));
        scatter(None, 4, &slots, |part, package| {
            order.lock().unwrap().push((part, package));
        });
        assert_eq!(
            order.into_inner().unwrap(),
            vec![(0, 0), (1, 10), (2, 20), (3, 30)]
        );
    }

    #[test]
    fn scatter_with_pool_consumes_every_slot() {
        let mut pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        let slots: [Mutex<Option<u64>>; 4] = std::array::from_fn(|i| Mutex::new(Some(i as u64)));
        scatter(Some(&mut pool), 4, &slots, |_, package| {
            sum.fetch_add(package + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
        assert!(slots.iter().all(|s| s.lock().unwrap().is_none()));
    }

    #[test]
    fn part_zero_panic_still_waits_for_workers() {
        // A panic in the dispatcher's own part must not unwind past the
        // completion barrier: the workers' side effects for the same
        // dispatch must all be visible once `run` has exited, and the
        // pool must stay usable.
        let mut pool = WorkerPool::new(3);
        let hits = AtomicU64::new(0);
        for _ in 0..20 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(&|part| {
                    if part == 0 {
                        panic!("boom in part 0");
                    }
                    // Give the dispatcher every chance to win the race.
                    std::thread::sleep(Duration::from_micros(50));
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }));
            assert!(result.is_err());
        }
        assert_eq!(
            hits.load(Ordering::Relaxed),
            60,
            "every worker part must have completed before run() unwound"
        );
        // And the pool still dispatches.
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn worker_panic_propagates_to_the_dispatcher() {
        let mut pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|part| {
                assert_ne!(part, 1, "boom");
            });
        }));
        assert!(result.is_err(), "worker panic must reach the dispatcher");
        // The pool remains usable for the next dispatch.
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
