//! Per-round metrics capture for experiments and examples.
//!
//! A [`SeriesRecorder`] snapshots the observable state after each round:
//! true nest populations, honest commitment histograms (total and
//! active-role only), and the role census. The experiment harness derives
//! its figures from these series — e.g. Lemma 4.2's per-cycle nest
//! drop-out rate (experiment F8) needs the active-commitment histogram at
//! consecutive competition rounds.

use hh_core::AgentRole;

use crate::executor::{RoleCensus, Simulation};

/// One round's observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSnapshot {
    /// The round this snapshot describes (after execution).
    pub round: u64,
    /// True populations indexed by raw nest id (0 = home).
    pub nest_populations: Vec<usize>,
    /// Honest commitment histogram over candidate nests (index 0 ↦ n₁).
    pub committed: Vec<usize>,
    /// Honest *active-role* commitment histogram over candidate nests.
    pub active_committed: Vec<usize>,
    /// Honest role census.
    pub roles: RoleCensus,
}

impl RoundSnapshot {
    /// Captures the simulation's current state from the engine's cached
    /// per-agent snapshots (no agent dispatch).
    #[must_use]
    pub fn capture(sim: &Simulation) -> Self {
        let k = sim.env().k();
        let mut committed = vec![0usize; k];
        let mut active_committed = vec![0usize; k];
        for snapshot in sim.iter_snapshots() {
            if !snapshot.honest {
                continue;
            }
            if let Some(idx) = snapshot.committed.and_then(|n| n.candidate_index()) {
                if idx < k {
                    committed[idx] += 1;
                    if snapshot.role == AgentRole::Active {
                        active_committed[idx] += 1;
                    }
                }
            }
        }
        Self {
            round: sim.round(),
            nest_populations: sim.env().counts().to_vec(),
            committed,
            active_committed,
            roles: sim.role_census(),
        }
    }

    /// Number of nests with at least one active-committed honest ant —
    /// the "competing nests" count of Section 4.2.
    #[must_use]
    pub fn competing_nests(&self) -> usize {
        self.active_committed.iter().filter(|&&c| c > 0).count()
    }

    /// Number of honest ants committed anywhere.
    #[must_use]
    pub fn total_committed(&self) -> usize {
        self.committed.iter().sum()
    }
}

/// Records a [`RoundSnapshot`] per executed round.
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{ConvergenceRule, SeriesRecorder, Simulation};
/// use hh_model::{ColonyConfig, Environment, QualitySpec};
///
/// let n = 16;
/// let env = Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(2)).seed(3))?;
/// let mut sim = Simulation::new(env, colony::simple(n, 3))?;
/// let mut recorder = SeriesRecorder::new();
/// sim.run_observed(ConvergenceRule::commitment(), 1_000, |sim, _| recorder.record(sim))?;
/// assert!(!recorder.snapshots().is_empty());
/// # Ok::<(), hh_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeriesRecorder {
    snapshots: Vec<RoundSnapshot>,
}

impl SeriesRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures the simulation state for the round just executed.
    pub fn record(&mut self, sim: &Simulation) {
        self.snapshots.push(RoundSnapshot::capture(sim));
    }

    /// The recorded series.
    #[must_use]
    pub fn snapshots(&self) -> &[RoundSnapshot] {
        &self.snapshots
    }

    /// The competing-nest count per recorded round.
    #[must_use]
    pub fn competing_series(&self) -> Vec<usize> {
        self.snapshots
            .iter()
            .map(RoundSnapshot::competing_nests)
            .collect()
    }

    /// The population series of one nest across recorded rounds.
    ///
    /// The argument is the **raw nest id**, exactly as
    /// [`RoundSnapshot::nest_populations`] is indexed: `0` is the home
    /// nest and candidate `nᵢ` is `i` (so for candidates the raw id and
    /// the 1-based candidate number coincide — by construction, not by
    /// accident). Out-of-range ids read as an all-zero series.
    ///
    /// # Examples
    ///
    /// ```
    /// use hh_core::colony;
    /// use hh_sim::{ConvergenceRule, SeriesRecorder, Simulation};
    /// use hh_model::{ColonyConfig, Environment, NestId, QualitySpec};
    ///
    /// let n = 16;
    /// let env = Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(1)).seed(3))?;
    /// let mut sim = Simulation::new(env, colony::simple(n, 3))?;
    /// let mut recorder = SeriesRecorder::new();
    /// sim.run_observed(ConvergenceRule::commitment(), 1_000, |sim, _| recorder.record(sim))?;
    ///
    /// // Raw id 0 is the home nest, raw id 1 is candidate n₁ — and the
    /// // two series describe different nests: with a single candidate,
    /// // home + n₁ always account for every searching-phase ant.
    /// let home = recorder.population_series(NestId::HOME.raw());
    /// let candidate = recorder.population_series(NestId::candidate(1).raw());
    /// assert_eq!(home.len(), candidate.len());
    /// // After round 1 every ant has left home for the only candidate.
    /// assert_eq!(home[0], 0);
    /// assert_eq!(candidate[0], n);
    /// # Ok::<(), hh_sim::SimError>(())
    /// ```
    #[must_use]
    pub fn population_series(&self, nest_id: usize) -> Vec<usize> {
        self.snapshots
            .iter()
            .map(|s| s.nest_populations.get(nest_id).copied().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ConvergenceRule;
    use hh_core::colony;
    use hh_model::{ColonyConfig, Environment, QualitySpec};

    fn run_recorded(n: usize, k: usize, seed: u64) -> SeriesRecorder {
        let env =
            Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed)).unwrap();
        let mut sim = Simulation::new(env, colony::simple(n, seed)).unwrap();
        let mut recorder = SeriesRecorder::new();
        sim.run_observed(ConvergenceRule::commitment(), 2_000, |sim, _| {
            recorder.record(sim)
        })
        .unwrap();
        recorder
    }

    #[test]
    fn snapshots_cover_every_round() {
        let recorder = run_recorded(24, 2, 1);
        let snaps = recorder.snapshots();
        assert!(!snaps.is_empty());
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.round, i as u64 + 1);
            assert_eq!(snap.nest_populations.iter().sum::<usize>(), 24);
        }
    }

    #[test]
    fn commitment_histograms_grow_to_consensus() {
        let recorder = run_recorded(24, 2, 2);
        let last = recorder.snapshots().last().unwrap();
        // At the detected consensus, all 24 ants are committed to one nest.
        assert_eq!(last.total_committed(), 24);
        assert_eq!(last.committed.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn competing_series_is_bounded_by_k() {
        let recorder = run_recorded(48, 4, 3);
        for &competing in &recorder.competing_series() {
            assert!(competing <= 4);
        }
        // Round 1 has everyone searching → competition starts at 0 or
        // more; by the end exactly one nest competes.
        assert_eq!(*recorder.competing_series().last().unwrap(), 1);
    }

    #[test]
    fn population_series_reads_one_nest() {
        let recorder = run_recorded(24, 2, 4);
        let series = recorder.population_series(1);
        assert_eq!(series.len(), recorder.snapshots().len());
        let out_of_range = recorder.population_series(99);
        assert!(out_of_range.iter().all(|&c| c == 0));
    }
}
