//! The multi-trial runner: "with high probability" made measurable.
//!
//! Every theorem in the paper is a statement over random executions, so
//! every experiment runs many independent trials and aggregates.
//! [`run_trials`] fans trials out over OS threads (std scoped threads; an
//! atomic cursor hands out trial indices), each trial building its own
//! simulation from the caller's factory — nothing is shared but the
//! factory, so runs are embarrassingly parallel and results are
//! bit-identical regardless of thread count.
//!
//! The fan-out is lock-free: workers claim indices from an
//! [`AtomicUsize`] cursor, collect outcomes locally, and stop early via
//! an [`AtomicBool`] abort flag on the first error; the coordinator then
//! scatters each worker's batch into preallocated per-trial result slots.
//! No mutex is ever taken and no post-hoc sort is needed — trial order
//! falls out of the slot indices.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::convergence::{ConvergenceRule, Solved};
use crate::error::SimError;
use crate::executor::Simulation;

/// One trial's result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Trial index (0-based).
    pub trial: usize,
    /// The detected convergence, if the trial solved in time.
    pub solved: Option<Solved>,
    /// Rounds executed.
    pub rounds_run: u64,
    /// Actions replaced by crash/delay no-ops.
    pub replaced_actions: u64,
    /// Illegal agent actions sandboxed.
    pub illegal_actions: u64,
}

/// Runs `trials` independent simulations in parallel, each built by
/// `build(trial_index)` and executed until `rule` fires or `max_rounds`
/// elapse. Results are returned in trial order.
///
/// # Errors
///
/// Returns the first build or execution error encountered (remaining
/// trials are abandoned).
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{run_trials, success_rate, ConvergenceRule, Simulation};
/// use hh_model::{ColonyConfig, Environment, QualitySpec};
///
/// let outcomes = run_trials(8, 5_000, ConvergenceRule::commitment(), |trial| {
///     let seed = 1_000 + trial as u64;
///     let config = ColonyConfig::new(16, QualitySpec::all_good(2)).seed(seed);
///     let env = Environment::new(&config)?;
///     Simulation::new(env, colony::simple(16, seed))
/// })?;
/// assert_eq!(outcomes.len(), 8);
/// assert!(success_rate(&outcomes) > 0.9);
/// # Ok::<(), hh_sim::SimError>(())
/// ```
pub fn run_trials<F>(
    trials: usize,
    max_rounds: u64,
    rule: ConvergenceRule,
    build: F,
) -> Result<Vec<TrialOutcome>, SimError>
where
    F: Fn(usize) -> Result<Simulation, SimError> + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    run_trials_with_workers(trials, max_rounds, rule, workers, build)
}

/// [`run_trials`] with an explicit worker-thread count (clamped to
/// `1..=trials`).
///
/// The determinism contract is that the outcome vector depends only on
/// the factory, never on scheduling: `run_trials_with_workers(t, m, r,
/// 1, f)` and `run_trials_with_workers(t, m, r, w, f)` are bit-identical
/// for every `w`. The registry conformance suite and the runner property
/// tests enforce this.
///
/// # Errors
///
/// Returns the lowest-indexed build or execution error encountered
/// (remaining trials are abandoned via the abort flag).
pub fn run_trials_with_workers<F>(
    trials: usize,
    max_rounds: u64,
    rule: ConvergenceRule,
    workers: usize,
    build: F,
) -> Result<Vec<TrialOutcome>, SimError>
where
    F: Fn(usize) -> Result<Simulation, SimError> + Sync,
{
    if trials == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.clamp(1, trials);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let mut slots: Vec<Option<TrialOutcome>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || None);
    let mut first_error: Option<(usize, SimError)> = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut batch: Vec<(usize, TrialOutcome)> = Vec::new();
                    let mut error: Option<(usize, SimError)> = None;
                    loop {
                        // ordering: Acquire — pairs with the release
                        // store of the erroring worker; stronger than a
                        // pure early-exit hint needs, kept so observing
                        // the flag also orders this worker after the
                        // error it is yielding to.
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        // ordering: Relaxed — the cursor only hands out
                        // disjoint indices; no payload is published
                        // through it (results travel through the scope
                        // join), so the RMW's atomicity is all that is
                        // needed.
                        let trial = cursor.fetch_add(1, Ordering::Relaxed);
                        if trial >= trials {
                            break;
                        }
                        let run = build(trial).and_then(|mut sim| {
                            let outcome = sim.run_to_convergence(rule, max_rounds)?;
                            Ok(TrialOutcome {
                                trial,
                                solved: outcome.solved,
                                rounds_run: outcome.rounds_run,
                                replaced_actions: outcome.replaced_actions,
                                illegal_actions: outcome.illegal_actions,
                            })
                        });
                        match run {
                            Ok(outcome) => batch.push((trial, outcome)),
                            Err(err) => {
                                error = Some((trial, err));
                                // ordering: Release — pairs with the
                                // acquire load at the top of the loop;
                                // publishes the abort to the other
                                // workers' next iteration.
                                abort.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                    (batch, error)
                })
            })
            .collect();
        for handle in handles {
            let (batch, error) = handle.join().expect("trial worker panicked");
            for (trial, outcome) in batch {
                slots[trial] = Some(outcome);
            }
            if let Some((trial, err)) = error {
                if first_error.as_ref().is_none_or(|&(first, _)| trial < first) {
                    first_error = Some((trial, err));
                }
            }
        }
    });

    if let Some((_, err)) = first_error {
        return Err(err);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every trial index was claimed and completed"))
        .collect())
}

/// Fraction of trials that solved.
#[must_use]
pub fn success_rate(outcomes: &[TrialOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.solved.is_some()).count() as f64 / outcomes.len() as f64
}

/// The convergence rounds of the solved trials, as `f64`s ready for
/// statistics.
#[must_use]
pub fn solved_rounds(outcomes: &[TrialOutcome]) -> Vec<f64> {
    outcomes
        .iter()
        .filter_map(|o| o.solved.as_ref().map(|s| s.round as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::colony;
    use hh_model::{ColonyConfig, Environment, ModelError, QualitySpec};

    fn build_simple(trial: usize) -> Result<Simulation, SimError> {
        let seed = 10 + trial as u64;
        let config = ColonyConfig::new(16, QualitySpec::good_prefix(2, 1)).seed(seed);
        let env = Environment::new(&config)?;
        Simulation::new(env, colony::simple(16, seed))
    }

    #[test]
    fn zero_trials_is_empty() {
        let outcomes = run_trials(0, 100, ConvergenceRule::commitment(), build_simple).unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(success_rate(&outcomes), 0.0);
    }

    #[test]
    fn trials_return_in_order() {
        let outcomes = run_trials(12, 5_000, ConvergenceRule::commitment(), build_simple).unwrap();
        assert_eq!(outcomes.len(), 12);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.trial, i);
        }
        assert!(success_rate(&outcomes) > 0.8);
        assert_eq!(
            solved_rounds(&outcomes).len(),
            outcomes.iter().filter(|o| o.solved.is_some()).count()
        );
    }

    #[test]
    fn parallel_matches_trial_seeding() {
        // Same factory twice: identical results (determinism is per-trial,
        // independent of scheduling).
        let a = run_trials(6, 5_000, ConvergenceRule::commitment(), build_simple).unwrap();
        let b = run_trials(6, 5_000, ConvergenceRule::commitment(), build_simple).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_does_not_change_outcomes() {
        let serial =
            run_trials_with_workers(6, 5_000, ConvergenceRule::commitment(), 1, build_simple)
                .unwrap();
        for workers in [2usize, 3, 8, 64] {
            let parallel = run_trials_with_workers(
                6,
                5_000,
                ConvergenceRule::commitment(),
                workers,
                build_simple,
            )
            .unwrap();
            assert_eq!(serial, parallel, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn worker_count_is_clamped() {
        // 0 workers must still run everything (clamped to 1).
        let outcomes =
            run_trials_with_workers(3, 5_000, ConvergenceRule::commitment(), 0, build_simple)
                .unwrap();
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn build_errors_propagate() {
        let result = run_trials(4, 100, ConvergenceRule::commitment(), |_| {
            Err(SimError::Model(ModelError::EmptyColony))
        });
        assert_eq!(result, Err(SimError::Model(ModelError::EmptyColony)));
    }

    #[test]
    fn unsolvable_trials_report_no_solution() {
        // All-bad environment (opted in): simple ants all turn passive and
        // nothing ever converges.
        let outcomes = run_trials(2, 50, ConvergenceRule::commitment(), |trial| {
            let config = ColonyConfig::new(8, QualitySpec::good_prefix(2, 0))
                .allow_no_good()
                .seed(trial as u64);
            let env = Environment::new(&config)?;
            Simulation::new(env, colony::simple(8, trial as u64))
        })
        .unwrap();
        assert_eq!(success_rate(&outcomes), 0.0);
        assert!(outcomes.iter().all(|o| o.rounds_run == 50));
    }
}
