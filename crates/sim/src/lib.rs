//! # hh-sim — the execution harness for house-hunting colonies
//!
//! Drives colonies of `hh-core` agents against `hh-model` environments:
//!
//! * [`Simulation`] — the synchronous executor, with crash/delay
//!   perturbations ([`Perturbations`]) and sandboxing of illegal agent
//!   actions;
//! * [`ConvergenceRule`] / [`Detector`] — when is HouseHunting solved
//!   (commitment, all-final, or literal location consensus, each with
//!   stability windows);
//! * [`SeriesRecorder`] — per-round metrics for the experiment figures;
//! * [`run_trials`] — the parallel multi-trial runner behind every
//!   "with high probability" measurement;
//! * [`ScenarioSpec`] — declarative construction of (possibly perturbed)
//!   simulations;
//! * [`registry`] — the named scenario catalog (quality profiles × fault
//!   schedules × colony mixes) that experiments, benches, and examples
//!   pull their workloads from.
//!
//! # Examples
//!
//! ```
//! use hh_core::colony;
//! use hh_sim::{run_trials, solved_rounds, success_rate, ConvergenceRule, ScenarioSpec};
//! use hh_model::QualitySpec;
//!
//! // Theorem 5.11 in miniature: the simple algorithm solves 16-ant,
//! // 2-nest instances with high probability.
//! let outcomes = run_trials(8, 4_000, ConvergenceRule::commitment(), |trial| {
//!     let seed = 500 + trial as u64;
//!     ScenarioSpec::new(16, QualitySpec::good_prefix(2, 1))
//!         .seed(seed)
//!         .build_simulation(colony::simple(16, seed))
//! })?;
//! assert!(success_rate(&outcomes) >= 0.75);
//! assert!(!solved_rounds(&outcomes).is_empty());
//! # Ok::<(), hh_sim::SimError>(())
//! ```

// Deny, not forbid: the worker pool behind intra-round parallelism
// (`pool`) carries the crate's single reviewed `#[allow(unsafe_code)]`
// for its lifetime-erased job dispatch. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod convergence;
mod error;
mod executor;
mod metrics;
mod pool;
mod runner;
mod scenario;

pub mod registry;

pub use convergence::{ConvergenceRule, Detector, Solved};
pub use error::SimError;
pub use executor::{EngineKind, Perturbations, RoleCensus, RunOutcome, Simulation};
pub use metrics::{RoundSnapshot, SeriesRecorder};
pub use registry::Scenario;
pub use runner::{run_trials, run_trials_with_workers, solved_rounds, success_rate, TrialOutcome};
pub use scenario::ScenarioSpec;
