//! Convergence detection: when has the colony solved HouseHunting?
//!
//! The problem statement (Section 2) requires all ants located at one good
//! nest for all `r ≥ T`. The paper evaluates its algorithms on absorbing
//! commitment states instead (Section 4.2's "we consider the algorithm to
//! terminate once all ants have reached the final state"), and perturbed
//! executions can flicker in and out of agreement — so detection is a
//! *rule*:
//!
//! * [`ConvergenceRule::commitment`] — every honest agent committed to the
//!   same good nest (the standard rule for both algorithms; absorbing in
//!   unperturbed runs);
//! * [`ConvergenceRule::commitment_any`] — same without the binary "good"
//!   requirement (for non-binary-quality colonies);
//! * [`ConvergenceRule::all_final`] — additionally every honest agent is
//!   in its final/settled state (Algorithm 2's termination point);
//! * [`ConvergenceRule::location`] — the literal problem statement:
//!   every honest ant physically at the same good nest for a window of
//!   consecutive rounds.
//!
//! Crashed ants are excluded from every rule: a crash-stop ant's state
//! machine is frozen, so the Section 6 fault-tolerance claim — the colony
//! keeps working despite a few crash faults — is a statement about the
//! *live* honest colony.
//!
//! The detector is fed by the executor's incrementally maintained
//! live-honest tally (commitment counts per nest, uncommitted/final
//! counters), so a per-round check reads O(k) cached state instead of
//! re-dispatching into all n agents. Only the [`Location`]
//! (`ConvergenceRule::Location`) rule still walks the colony — it asks
//! about physical positions, which live in the environment, and even
//! there the honest/live membership test comes from cached flags.

use hh_model::{AntId, NestId};

use crate::executor::Simulation;

/// What counts as "solved", plus how long it must hold.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConvergenceRule {
    /// All honest agents committed to the same nest for `stable_rounds`
    /// consecutive rounds; `require_good` additionally demands a good
    /// nest.
    Commitment {
        /// Consecutive rounds the agreement must hold (≥ 1).
        stable_rounds: u64,
        /// Demand a good nest.
        require_good: bool,
    },
    /// Commitment consensus on a good nest with every honest agent final.
    AllFinal,
    /// All honest ants physically located at the same good candidate nest
    /// for `stable_rounds` consecutive rounds.
    Location {
        /// Consecutive rounds the co-location must hold (≥ 1).
        stable_rounds: u64,
    },
    /// A quorum of the live honest colony committed to one good nest —
    /// the biological success notion (the paper's introduction describes
    /// real Temnothorax deciding by quorum thresholds). Under active
    /// adversaries unanimity is unattainable (a Byzantine recruiter can
    /// always kidnap one more ant), so robustness experiments use this
    /// rule.
    Quorum {
        /// Fraction of live honest ants that must agree, in `(0, 1]`.
        fraction: f64,
        /// Consecutive rounds the quorum must hold (≥ 1).
        stable_rounds: u64,
    },
}

impl ConvergenceRule {
    /// Commitment consensus on a good nest, detected immediately.
    #[must_use]
    pub fn commitment() -> Self {
        ConvergenceRule::Commitment {
            stable_rounds: 1,
            require_good: true,
        }
    }

    /// Commitment consensus on any nest (non-binary-quality colonies).
    #[must_use]
    pub fn commitment_any() -> Self {
        ConvergenceRule::Commitment {
            stable_rounds: 1,
            require_good: false,
        }
    }

    /// Commitment consensus held for `stable_rounds` consecutive rounds —
    /// the robust choice under perturbations, where agreement can
    /// flicker.
    #[must_use]
    pub fn stable_commitment(stable_rounds: u64) -> Self {
        ConvergenceRule::Commitment {
            stable_rounds: stable_rounds.max(1),
            require_good: true,
        }
    }

    /// Good-nest consensus with every honest agent final.
    #[must_use]
    pub fn all_final() -> Self {
        ConvergenceRule::AllFinal
    }

    /// The literal problem statement over a stability window.
    #[must_use]
    pub fn location(stable_rounds: u64) -> Self {
        ConvergenceRule::Location {
            stable_rounds: stable_rounds.max(1),
        }
    }

    /// Quorum commitment on a good nest over a stability window.
    ///
    /// Invalid fractions are sanitized rather than silently accepted:
    /// `NaN` and non-positive values snap to `0.5` (a simple majority,
    /// the smallest quorum that still means agreement), values above 1
    /// clamp to `1.0`. The old behavior let `NaN` through (`f64::clamp`
    /// propagates it, corrupting the detector's threshold arithmetic)
    /// and turned `0.0` into `f64::MIN_POSITIVE`, where a single
    /// committed ant satisfied the "quorum".
    #[must_use]
    pub fn quorum(fraction: f64, stable_rounds: u64) -> Self {
        ConvergenceRule::Quorum {
            fraction: sanitize_quorum_fraction(fraction),
            stable_rounds: stable_rounds.max(1),
        }
    }
}

/// Snaps an invalid quorum fraction to a sane value: `NaN` and
/// non-positive fractions become `0.5` (simple majority), fractions
/// above 1 become `1.0` (unanimity). Valid fractions pass through.
fn sanitize_quorum_fraction(fraction: f64) -> f64 {
    if fraction.is_nan() || fraction <= 0.0 {
        0.5
    } else {
        fraction.min(1.0)
    }
}

/// A successful detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Solved {
    /// First round of the stable window — the `T` of the problem
    /// statement as observed.
    pub round: u64,
    /// The winning nest.
    pub nest: NestId,
    /// Whether the winning nest is good (always `true` under
    /// good-requiring rules).
    pub good: bool,
}

/// Streak-tracking state for a rule; feed it the simulation after every
/// round.
#[derive(Debug, Clone)]
pub struct Detector {
    rule: ConvergenceRule,
    candidate: Option<NestId>,
    streak: u64,
}

impl Detector {
    /// Creates a fresh detector for `rule`.
    #[must_use]
    pub fn new(rule: ConvergenceRule) -> Self {
        Self {
            rule,
            candidate: None,
            streak: 0,
        }
    }

    /// Checks the simulation's current state; returns the detection once
    /// the rule's window is satisfied.
    pub fn check(&mut self, sim: &Simulation) -> Option<Solved> {
        let tally = sim.live_tally();
        let (agreed, window) = match self.rule {
            ConvergenceRule::Commitment {
                stable_rounds,
                require_good,
            } => {
                let nest = tally
                    .consensus()
                    .filter(|&nest| !require_good || is_good(sim, nest));
                (nest, stable_rounds)
            }
            ConvergenceRule::AllFinal => {
                let nest = tally
                    .consensus()
                    .filter(|&nest| is_good(sim, nest))
                    .filter(|_| tally.all_final());
                (nest, 1)
            }
            ConvergenceRule::Location { stable_rounds } => (
                honest_colocation(sim).filter(|&nest| is_good(sim, nest)),
                stable_rounds,
            ),
            ConvergenceRule::Quorum {
                fraction,
                stable_rounds,
            } => (
                // Re-sanitize: the variant's fields are public, so a
                // hand-built rule can bypass the constructor.
                tally.quorum(sanitize_quorum_fraction(fraction), |nest| {
                    is_good(sim, nest)
                }),
                stable_rounds,
            ),
        };

        match agreed {
            Some(nest) if self.candidate == Some(nest) => self.streak += 1,
            Some(nest) => {
                self.candidate = Some(nest);
                self.streak = 1;
            }
            None => {
                self.candidate = None;
                self.streak = 0;
            }
        }

        // Hand-built rules can carry `stable_rounds: 0` (the variant
        // fields are public); snap to the constructors' minimum window
        // so a zero-streak round never "satisfies" it.
        let window = window.max(1);
        if self.streak >= window {
            let nest = self.candidate.expect("streak implies candidate");
            Some(Solved {
                round: sim.round() + 1 - self.streak,
                nest,
                good: is_good(sim, nest),
            })
        } else {
            None
        }
    }
}

fn is_good(sim: &Simulation, nest: NestId) -> bool {
    sim.env()
        .quality_of(nest)
        .is_some_and(|quality| quality.is_good())
}

/// The candidate nest all live honest ants stand at, if they all stand
/// at one. Membership comes from cached honesty/crash flags; locations
/// from the environment.
fn honest_colocation(sim: &Simulation) -> Option<NestId> {
    let mut at: Option<NestId> = None;
    for idx in 0..sim.env().n() {
        if !sim.is_live_honest(idx) {
            continue;
        }
        let loc = sim.env().location_of(AntId::new(idx));
        if loc.is_home() {
            return None;
        }
        match at {
            None => at = Some(loc),
            Some(existing) if existing == loc => {}
            Some(_) => return None,
        }
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use hh_core::colony;
    use hh_core::UrnOptions;
    use hh_model::{ColonyConfig, Environment, QualitySpec};

    fn sim(n: usize, spec: QualitySpec, seed: u64, agents: hh_core::Colony) -> Simulation {
        let env = Environment::new(&ColonyConfig::new(n, spec).seed(seed)).unwrap();
        Simulation::new(env, agents).unwrap()
    }

    #[test]
    fn constructors_clamp_windows() {
        assert_eq!(
            ConvergenceRule::stable_commitment(0),
            ConvergenceRule::Commitment {
                stable_rounds: 1,
                require_good: true
            }
        );
        assert_eq!(
            ConvergenceRule::location(0),
            ConvergenceRule::Location { stable_rounds: 1 }
        );
    }

    #[test]
    fn commitment_detects_simple_convergence() {
        let mut s = sim(24, QualitySpec::good_prefix(3, 1), 1, colony::simple(24, 1));
        let outcome = s
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.unwrap();
        assert_eq!(solved.nest, hh_model::NestId::candidate(1));
        assert!(solved.good);
    }

    #[test]
    fn stable_commitment_waits_for_window() {
        // Run two identically-seeded simulations with windows 1 and 20:
        // the windowed detection must land at the same first-stable round
        // but fire later.
        let run = |window: u64| {
            let mut s = sim(24, QualitySpec::good_prefix(3, 1), 3, colony::simple(24, 3));
            let outcome = s
                .run_to_convergence(ConvergenceRule::stable_commitment(window), 5_000)
                .unwrap();
            let solved = outcome.solved.unwrap();
            (solved.round, outcome.rounds_run)
        };
        let (first_round_w1, fired_w1) = run(1);
        let (first_round_w20, fired_w20) = run(20);
        // Unperturbed commitment consensus is absorbing, so the window
        // start agrees and the larger window fires later.
        assert_eq!(first_round_w1, first_round_w20);
        assert!(fired_w20 >= fired_w1 + 19);
    }

    #[test]
    fn all_final_requires_final_states() {
        // Simple ants without settlement never report final, so the
        // AllFinal rule must not fire for them even after consensus.
        let mut s = sim(16, QualitySpec::all_good(2), 5, colony::simple(16, 5));
        let outcome = s
            .run_to_convergence(ConvergenceRule::all_final(), 400)
            .unwrap();
        assert!(outcome.solved.is_none());

        // With settlement they do settle.
        let agents = colony::simple_with_options(
            16,
            5,
            UrnOptions {
                settle_at_full_count: true,
                ..UrnOptions::default()
            },
        );
        let mut s = sim(16, QualitySpec::all_good(2), 5, agents);
        let outcome = s
            .run_to_convergence(ConvergenceRule::all_final(), 5_000)
            .unwrap();
        assert!(outcome.solved.is_some());
    }

    #[test]
    fn location_rule_detects_physical_consensus() {
        let agents = colony::simple_with_options(
            16,
            7,
            UrnOptions {
                settle_at_full_count: true,
                ..UrnOptions::default()
            },
        );
        let mut s = sim(16, QualitySpec::all_good(2), 7, agents);
        let outcome = s
            .run_to_convergence(ConvergenceRule::location(5), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("settled colony co-locates");
        assert!(solved.good);
        // And it is genuinely stable: all ants remain there.
        assert_eq!(s.env().count(solved.nest), 16);
    }

    #[test]
    fn quorum_rule_tolerates_stragglers() {
        // Strict commitment and a 90% quorum on the same converging
        // colony: the quorum can only fire at or before unanimity.
        let mut strict = sim(
            24,
            QualitySpec::good_prefix(3, 1),
            21,
            colony::simple(24, 21),
        );
        let strict_round = strict
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap()
            .solved
            .unwrap()
            .round;
        let mut quorum = sim(
            24,
            QualitySpec::good_prefix(3, 1),
            21,
            colony::simple(24, 21),
        );
        let quorum_round = quorum
            .run_to_convergence(ConvergenceRule::quorum(0.9, 1), 5_000)
            .unwrap()
            .solved
            .unwrap()
            .round;
        assert!(quorum_round <= strict_round);
    }

    #[test]
    fn quorum_constructor_clamps() {
        match ConvergenceRule::quorum(5.0, 0) {
            ConvergenceRule::Quorum {
                fraction,
                stable_rounds,
            } => {
                assert_eq!(fraction, 1.0);
                assert_eq!(stable_rounds, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn quorum_fraction(rule: ConvergenceRule) -> f64 {
        match rule {
            ConvergenceRule::Quorum { fraction, .. } => fraction,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quorum_rejects_nan_fraction() {
        // The old `f64::clamp` let NaN straight through.
        assert_eq!(quorum_fraction(ConvergenceRule::quorum(f64::NAN, 1)), 0.5);
    }

    #[test]
    fn quorum_rejects_non_positive_fractions() {
        // The old clamp snapped 0.0 to `f64::MIN_POSITIVE`, a "quorum"
        // one single ant satisfies.
        assert_eq!(quorum_fraction(ConvergenceRule::quorum(0.0, 1)), 0.5);
        assert_eq!(quorum_fraction(ConvergenceRule::quorum(-3.0, 1)), 0.5);
    }

    #[test]
    fn hand_built_zero_window_does_not_panic() {
        // `stable_rounds: 0` via the public fields: the first check has
        // streak 0 and no candidate; the window must snap to 1 instead
        // of reporting a detection out of nothing (or panicking).
        for rule in [
            ConvergenceRule::Quorum {
                fraction: 0.7,
                stable_rounds: 0,
            },
            ConvergenceRule::Commitment {
                stable_rounds: 0,
                require_good: true,
            },
            ConvergenceRule::Location { stable_rounds: 0 },
        ] {
            let mut fresh = sim(8, QualitySpec::good_prefix(2, 1), 5, colony::simple(8, 5));
            let mut detector = Detector::new(rule);
            assert!(
                detector.check(&fresh).is_none(),
                "{rule:?}: detected before any round ran"
            );
            // And the rule still works as a window-1 rule.
            let outcome = fresh.run_to_convergence(rule, 5_000).unwrap();
            assert!(outcome.solved.is_some(), "{rule:?}: never converged");
        }
    }

    #[test]
    fn nan_quorum_detects_at_simple_majority() {
        // End to end: a hand-built NaN-fraction rule must behave exactly
        // like the sanitized 0.5 rule rather than silently corrupting
        // the detector's threshold.
        let run = |rule: ConvergenceRule| {
            let mut s = sim(
                24,
                QualitySpec::good_prefix(3, 1),
                13,
                colony::simple(24, 13),
            );
            s.run_to_convergence(rule, 5_000).unwrap().solved
        };
        let nan = run(ConvergenceRule::Quorum {
            fraction: f64::NAN,
            stable_rounds: 1,
        });
        let majority = run(ConvergenceRule::quorum(0.5, 1));
        assert_eq!(nan, majority);
        assert!(nan.is_some());
    }

    #[test]
    fn zero_quorum_needs_more_than_one_ant() {
        // With a 24-ant colony just starting out, a single early commit
        // must not satisfy a (sanitized) zero quorum: run one round and
        // check nothing fires before half the colony agrees.
        let mut s = sim(
            24,
            QualitySpec::good_prefix(3, 1),
            17,
            colony::simple(24, 17),
        );
        let mut detector = Detector::new(ConvergenceRule::quorum(0.0, 1));
        s.step().unwrap();
        let census = s.role_census();
        if let Some(solved) = detector.check(&s) {
            let committed: usize = census.active + census.passive + census.final_count;
            assert!(
                committed * 2 >= 24,
                "quorum fired at round 1 with only {committed} committed ants ({solved:?})"
            );
        }
    }

    #[test]
    fn commitment_any_ignores_quality() {
        use hh_model::Quality;
        let spec =
            QualitySpec::Explicit(vec![Quality::new(0.3).unwrap(), Quality::new(0.4).unwrap()]);
        let env = Environment::new(
            &ColonyConfig::new(16, spec)
                .seed(9)
                .allow_no_good()
                .reveal_quality_on_go(),
        )
        .unwrap();
        let mut s = Simulation::new(env, colony::quality(16, 9, 2.0)).unwrap();
        let outcome = s
            .run_to_convergence(ConvergenceRule::commitment_any(), 8_000)
            .unwrap();
        let solved = outcome.solved.expect("quality colony agrees on some nest");
        // Neither nest is 'good' in the binary sense.
        assert!(!solved.good);
    }
}
