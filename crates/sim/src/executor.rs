//! The synchronous executor: drives a colony of agents against an
//! environment, applying fault and asynchrony perturbations.
//!
//! [`Simulation`] owns an [`Environment`] plus one [`BoxedAgent`] per ant
//! and advances them in lockstep rounds:
//!
//! 1. every live, undelayed agent chooses its action for the round;
//! 2. crashed and delayed ants get a location-preserving no-op instead
//!    (and, being skipped, never observe the round — the paper's
//!    synchrony-fragility experiments rest on exactly this);
//! 3. illegal actions (a Byzantine agent probing, or an agent bug) are
//!    sandboxed: replaced by a no-op and counted, never aborting the run;
//! 4. the environment resolves the round; every agent whose own action
//!    ran receives its outcome.

use hh_core::{Agent, BoxedAgent};
use hh_model::faults::{noop_action, CrashPlan, CrashStyle, DelayPlan};
use hh_model::{AntId, Environment, StepReport};

use crate::convergence::{ConvergenceRule, Detector, Solved};
use crate::error::SimError;

/// The fault/asynchrony plans applied to one execution (Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbations {
    /// Permanent crash-stop schedule.
    pub crash: CrashPlan,
    /// Per-(ant, round) delay plan (partial asynchrony).
    pub delay: DelayPlan,
}

impl Perturbations {
    /// No perturbations, for a colony of `n` ants — the baseline model.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            crash: CrashPlan::none(n),
            delay: DelayPlan::never(),
        }
    }

    /// Returns `true` if neither plan perturbs anything.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.crash.is_empty() && self.delay.probability() == 0.0
    }
}

/// Outcome of a bounded run (see [`Simulation::run_to_convergence`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The detected convergence, if any.
    pub solved: Option<Solved>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Actions replaced by crash/delay no-ops.
    pub replaced_actions: u64,
    /// Illegal agent actions sandboxed into no-ops.
    pub illegal_actions: u64,
}

/// One synchronous execution: environment + colony + perturbations.
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{ConvergenceRule, Simulation};
/// use hh_model::{ColonyConfig, Environment, QualitySpec};
///
/// let n = 24;
/// let config = ColonyConfig::new(n, QualitySpec::good_prefix(3, 1)).seed(5);
/// let env = Environment::new(&config)?;
/// let mut sim = Simulation::new(env, colony::simple(n, 5))?;
/// let outcome = sim.run_to_convergence(ConvergenceRule::commitment(), 10_000)?;
/// assert!(outcome.solved.is_some());
/// # Ok::<(), hh_sim::SimError>(())
/// ```
pub struct Simulation {
    env: Environment,
    agents: Vec<BoxedAgent>,
    perturbations: Perturbations,
    replaced_actions: u64,
    illegal_actions: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.env.round())
            .field("n", &self.env.n())
            .field("k", &self.env.k())
            .field("perturbations", &self.perturbations)
            .field("replaced_actions", &self.replaced_actions)
            .field("illegal_actions", &self.illegal_actions)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates an unperturbed simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if `agents.len()` differs
    /// from the environment's colony size.
    pub fn new(env: Environment, agents: Vec<BoxedAgent>) -> Result<Self, SimError> {
        Self::with_perturbations(env, agents, None)
    }

    /// Creates a simulation with explicit perturbation plans (`None` for
    /// the unperturbed baseline).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if `agents.len()` differs
    /// from the environment's colony size.
    pub fn with_perturbations(
        env: Environment,
        agents: Vec<BoxedAgent>,
        perturbations: Option<Perturbations>,
    ) -> Result<Self, SimError> {
        if agents.len() != env.n() {
            return Err(SimError::AgentCountMismatch {
                agents: agents.len(),
                n: env.n(),
            });
        }
        let n = env.n();
        Ok(Self {
            env,
            agents,
            perturbations: perturbations.unwrap_or_else(|| Perturbations::none(n)),
            replaced_actions: 0,
            illegal_actions: 0,
        })
    }

    /// The environment (read-only).
    #[must_use]
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The colony (read-only).
    #[must_use]
    pub fn agents(&self) -> &[BoxedAgent] {
        &self.agents
    }

    /// Completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.env.round()
    }

    /// Actions replaced by crash/delay no-ops so far.
    #[must_use]
    pub fn replaced_actions(&self) -> u64 {
        self.replaced_actions
    }

    /// Illegal agent actions sandboxed so far.
    #[must_use]
    pub fn illegal_actions(&self) -> u64 {
        self.illegal_actions
    }

    /// Executes one synchronous round and returns the environment's
    /// report (outcomes + recruitment pairing) for instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates environment errors; these indicate harness bugs, since
    /// agent actions are validated and sandboxed before execution.
    pub fn step(&mut self) -> Result<StepReport, SimError> {
        let round = self.env.round() + 1;
        let n = self.env.n();
        let mut actions = Vec::with_capacity(n);
        let mut own_action_ran = vec![false; n];

        for (idx, ran) in own_action_ran.iter_mut().enumerate() {
            let ant = AntId::new(idx);
            let crashed = self.perturbations.crash.is_crashed(ant, round);
            let delayed = !crashed && self.perturbations.delay.is_delayed(ant, round);
            if crashed || delayed {
                let style = if crashed {
                    self.perturbations.crash.style()
                } else {
                    CrashStyle::InPlace
                };
                actions.push(noop_action(&self.env, ant, style));
                self.replaced_actions += 1;
                continue;
            }
            let action = self.agents[idx].choose(round);
            if self.env.check_action(ant, &action).is_ok() {
                *ran = true;
                actions.push(action);
            } else {
                self.illegal_actions += 1;
                actions.push(noop_action(&self.env, ant, CrashStyle::InPlace));
            }
        }

        let report = self.env.step(&actions)?;
        for (idx, ran) in own_action_ran.iter().enumerate() {
            if *ran {
                self.agents[idx].observe(round, &report.outcomes[idx]);
            }
        }
        Ok(report)
    }

    /// Runs until `rule` detects convergence or `max_rounds` rounds have
    /// executed (counted from the simulation's current round).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_to_convergence(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
    ) -> Result<RunOutcome, SimError> {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        while self.env.round() - start < max_rounds {
            self.step()?;
            if let Some(found) = detector.check(self) {
                solved = Some(found);
                break;
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Like [`run_to_convergence`](Self::run_to_convergence), invoking
    /// `on_round` after every executed round (for metrics recording).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_observed<F>(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
        mut on_round: F,
    ) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Simulation, &StepReport),
    {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        while self.env.round() - start < max_rounds {
            let report = self.step()?;
            on_round(self, &report);
            if let Some(found) = detector.check(self) {
                solved = Some(found);
                break;
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Returns `true` if `ant` has not crashed as of the current round.
    /// Delayed ants are still live; crashes are permanent.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    pub fn is_live(&self, ant: AntId) -> bool {
        !self.perturbations.crash.is_crashed(ant, self.env.round())
    }

    /// Census of honest-agent roles, used by metrics and detectors.
    #[must_use]
    pub fn role_census(&self) -> RoleCensus {
        RoleCensus::of(&self.agents)
    }
}

/// Counts of honest agents per [`AgentRole`](hh_core::AgentRole).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoleCensus {
    /// Agents still searching.
    pub searching: usize,
    /// Active (competing/recruiting) agents.
    pub active: usize,
    /// Passive (waiting) agents.
    pub passive: usize,
    /// Final/settled agents.
    pub final_count: usize,
    /// Everything else (adversaries report `Other`).
    pub other: usize,
}

impl RoleCensus {
    /// Tallies the honest agents of a colony.
    #[must_use]
    pub fn of(agents: &[BoxedAgent]) -> Self {
        let mut census = RoleCensus::default();
        for agent in agents.iter().filter(|a| a.is_honest()) {
            match agent.role() {
                hh_core::AgentRole::Searching => census.searching += 1,
                hh_core::AgentRole::Active => census.active += 1,
                hh_core::AgentRole::Passive => census.passive += 1,
                hh_core::AgentRole::Final => census.final_count += 1,
                _ => census.other += 1,
            }
        }
        census
    }

    /// Total honest agents tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.searching + self.active + self.passive + self.final_count + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::colony;
    use hh_model::{ColonyConfig, NestId, QualitySpec};

    fn env(n: usize, k: usize, seed: u64) -> Environment {
        Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed)).unwrap()
    }

    #[test]
    fn rejects_mismatched_colony() {
        let err = Simulation::new(env(5, 2, 0), colony::simple(3, 0)).unwrap_err();
        assert_eq!(err, SimError::AgentCountMismatch { agents: 3, n: 5 });
    }

    #[test]
    fn steps_advance_rounds() {
        let mut sim = Simulation::new(env(8, 2, 1), colony::simple(8, 1)).unwrap();
        assert_eq!(sim.round(), 0);
        sim.step().unwrap();
        assert_eq!(sim.round(), 1);
        assert_eq!(sim.replaced_actions(), 0);
        assert_eq!(sim.illegal_actions(), 0);
    }

    #[test]
    fn converges_simple_colony() {
        let mut sim = Simulation::new(env(32, 2, 2), colony::simple(32, 2)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("simple colony converges");
        assert!(solved.good);
        assert!(solved.round >= 1);
        assert!(outcome.rounds_run >= solved.round);
    }

    #[test]
    fn converges_optimal_colony_all_final() {
        let mut sim = Simulation::new(env(32, 3, 3), colony::optimal(32)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::all_final(), 2_000)
            .unwrap();
        let solved = outcome.solved.expect("optimal colony finalizes");
        assert!(solved.good);
    }

    #[test]
    fn crashed_ants_are_skipped() {
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 16;
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(n, 0.25, 1, CrashStyle::InPlace, 9),
            delay: DelayPlan::never(),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 4), colony::simple(n, 4), Some(perturbations))
                .unwrap();
        for _ in 0..10 {
            sim.step().unwrap();
        }
        // 4 crashed ants × 10 rounds.
        assert_eq!(sim.replaced_actions(), 40);
    }

    #[test]
    fn delays_replace_probabilistically() {
        let n = 50;
        let perturbations = Perturbations {
            crash: CrashPlan::none(n),
            delay: DelayPlan::new(0.5, 7),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 5), colony::simple(n, 5), Some(perturbations))
                .unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let replaced = sim.replaced_actions();
        assert!(
            (300..700).contains(&replaced),
            "≈50% of 1000 actions should be delayed, got {replaced}"
        );
    }

    #[test]
    fn illegal_agents_are_sandboxed() {
        struct Outlaw;
        impl Agent for Outlaw {
            fn choose(&mut self, _round: u64) -> hh_model::Action {
                // Never legal: nest 99 does not exist.
                hh_model::Action::Go(NestId::candidate(99))
            }
            fn observe(&mut self, _round: u64, _outcome: &hh_model::Outcome) {
                panic!("an outlaw's action never executes, so it never observes");
            }
            fn committed_nest(&self) -> Option<NestId> {
                None
            }
            fn label(&self) -> &'static str {
                "outlaw"
            }
        }
        let mut agents = colony::simple(4, 6);
        agents[3] = Box::new(Outlaw);
        let mut sim = Simulation::new(env(4, 2, 6), agents).unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.illegal_actions(), 5);
        // The honest ants were unaffected.
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn perturbations_none_is_none() {
        assert!(Perturbations::none(5).is_none());
        let p = Perturbations {
            crash: CrashPlan::none(5),
            delay: DelayPlan::new(0.1, 0),
        };
        assert!(!p.is_none());
    }

    #[test]
    fn role_census_counts() {
        let sim = Simulation::new(env(6, 2, 7), colony::simple(6, 7)).unwrap();
        let census = sim.role_census();
        assert_eq!(census.searching, 6);
        assert_eq!(census.total(), 6);
    }

    #[test]
    fn run_observed_sees_every_round() {
        let mut sim = Simulation::new(env(16, 2, 8), colony::simple(16, 8)).unwrap();
        let mut observed = 0u64;
        let outcome = sim
            .run_observed(ConvergenceRule::commitment(), 2_000, |_, _| observed += 1)
            .unwrap();
        assert_eq!(observed, outcome.rounds_run);
    }
}
