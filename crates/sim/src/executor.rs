//! The synchronous executor: drives a colony of agents against an
//! environment, applying fault and asynchrony perturbations.
//!
//! [`Simulation`] owns an [`Environment`] plus a [`Colony`] (one agent
//! per ant) and advances them in lockstep rounds:
//!
//! 1. every live, undelayed agent chooses its action for the round;
//! 2. crashed and delayed ants get a location-preserving no-op instead
//!    (and, being skipped, never observe the round — the paper's
//!    synchrony-fragility experiments rest on exactly this);
//! 3. illegal actions (a Byzantine agent probing, or an agent bug) are
//!    sandboxed: replaced by a no-op and counted, never aborting the run;
//! 4. the environment resolves the round; every agent whose own action
//!    ran receives its outcome.
//!
//! ## Engine invariants (the data-oriented hot path)
//!
//! * **Zero allocation at steady state.** The per-round action buffer,
//!   the chose/ran bitmasks, and the environment's [`StepReport`] live in
//!   a persistent [`RoundScratch`]; the environment's own pairing scratch
//!   is reused the same way ([`Environment::step_into`]). After the first
//!   round, stepping allocates nothing.
//! * **Static dispatch.** Agents are [`AnyAgent`](hh_core::AnyAgent)
//!   variants in one contiguous vector; only the `Custom` escape hatch
//!   pays a vtable call.
//! * **Incremental census.** The colony's [`RoleCensus`] and the
//!   executor's live-honest commitment tally are maintained per stepped
//!   agent ([`Colony::refresh`]), never by rescanning the colony, so the
//!   convergence [`Detector`](crate::Detector) reads O(k) state instead
//!   of touching all n agents every round.
//! * **Deterministic intra-round parallelism.** Agents are independent
//!   within a round, so the per-ant phases — validate/relocate/tally and
//!   the fused outcome/observe/choose/refresh pass — run over disjoint
//!   colony chunks on a persistent worker pool
//!   ([`Simulation::with_round_threads`]), spawned once and reused every
//!   round. Every random draw attributable to an ant comes from that
//!   ant's own stream (see the `hh_model::env` docs on randomness
//!   ownership), each worker writes only its own slots, and per-worker
//!   census/tally/count deltas are merged in chunk order at the barrier
//!   — so every thread count, including the serial `round_threads = 1`
//!   default (the same code run inline), produces **bit-identical**
//!   results. Only the Algorithm 1 pairing stays serial, as the paper's
//!   one colony-level process. Perturbed simulations execute their
//!   rounds serially regardless of the setting (the fault bookkeeping is
//!   not worth parallelizing), which preserves the contract trivially.

use std::sync::Mutex;

use hh_core::colony::AgentSnapshot;
use hh_core::columns::ColumnsMut;
use hh_core::{
    Agent, AgentColumns, AgentColumnsMut, AnyAgent, CensusDelta, Colony, DenseRowsMut,
    RecruitPolicy, UrnColumnsMut,
};
use hh_model::faults::{noop_action, CrashPlan, CrashStyle, DelayPlan};
use hh_model::recruitment::RecruitCall;
use hh_model::{
    Action, AntId, Environment, NestId, Outcome, OutcomeChunk, RelocationChunk, StepReport,
};

use crate::convergence::{ConvergenceRule, Detector, Solved};
use crate::error::SimError;
use crate::pool::{scatter, WorkerPool, MAX_ROUND_THREADS};

pub use hh_core::RoleCensus;

/// The fault/asynchrony plans applied to one execution (Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbations {
    /// Permanent crash-stop schedule.
    pub crash: CrashPlan,
    /// Per-(ant, round) delay plan (partial asynchrony).
    pub delay: DelayPlan,
}

impl Perturbations {
    /// No perturbations, for a colony of `n` ants — the baseline model.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            crash: CrashPlan::none(n),
            delay: DelayPlan::never(),
        }
    }

    /// Returns `true` if neither plan perturbs anything.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.crash.is_empty() && self.delay.probability() == 0.0
    }
}

/// Which round engine drives an unperturbed simulation.
///
/// Both engines implement the identical round semantics; the registry's
/// `soa_equivalence` suite pins them bit-identical (equal seeds produce
/// equal [`RunOutcome`]s and equal round-by-round census tallies) across
/// the whole scenario catalog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The scalar oracle: one match-per-ant pass per phase, always
    /// serial. This is the perturbed path run with empty plans — the
    /// simplest correct rendering of the round semantics, kept as the
    /// reference the SoA engine is distribution-identity-tested against.
    Scalar,
    /// The struct-of-arrays fast path: fused observe/choose/refresh over
    /// the colony's flat snapshot columns, batched per-ant RNG draws,
    /// and optional intra-round chunk parallelism
    /// ([`Simulation::with_round_threads`]).
    #[default]
    Soa,
}

/// Outcome of a bounded run (see [`Simulation::run_to_convergence`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The detected convergence, if any.
    pub solved: Option<Solved>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Actions replaced by crash/delay no-ops.
    pub replaced_actions: u64,
    /// Illegal agent actions sandboxed into no-ops.
    pub illegal_actions: u64,
}

/// Persistent per-round buffers, reused so stepping never allocates at
/// steady state.
#[derive(Debug, Default)]
struct RoundScratch {
    /// One action per ant for the round being assembled.
    actions: Vec<Action>,
    /// The fast path's pre-chosen actions for the *next* round (see
    /// `step_round`).
    next_actions: Vec<Action>,
    /// `chose[a]`: agent `a`'s `choose` ran this round (its state may
    /// have changed, so its snapshot needs a refresh).
    chose: Vec<bool>,
    /// `ran[a]`: agent `a`'s own action executed, so it observes.
    ran: Vec<bool>,
    /// The environment's report, refilled in place each round.
    report: StepReport,
}

/// Commitment/finality tallies over the *live honest* colony, maintained
/// incrementally by the executor and read by the convergence
/// [`Detector`](crate::Detector) — the census-fed replacement for the old
/// per-round colony rescan.
///
/// Crashed ants leave the tally at their crash round (their state
/// machines are frozen); dishonest agents never enter it.
#[derive(Debug, Clone, Default)]
pub(crate) struct LiveTally {
    /// Live honest agents.
    total: usize,
    /// Of those, agents with no committed nest.
    uncommitted: usize,
    /// Of those, agents reporting the final/settled state.
    finals: usize,
    /// Commitments per raw nest id (grown on demand).
    commits: Vec<usize>,
    /// Nests with a nonzero commitment count.
    distinct: usize,
}

impl LiveTally {
    fn add(&mut self, snapshot: &AgentSnapshot) {
        self.total += 1;
        self.finals += usize::from(snapshot.is_final);
        match snapshot.committed {
            None => self.uncommitted += 1,
            Some(nest) => self.commit(nest, true),
        }
    }

    fn remove(&mut self, snapshot: &AgentSnapshot) {
        self.total -= 1;
        self.finals -= usize::from(snapshot.is_final);
        match snapshot.committed {
            None => self.uncommitted -= 1,
            Some(nest) => self.commit(nest, false),
        }
    }

    /// Folds one agent's snapshot transition into the tally. Honesty may
    /// legitimately vary for `Custom` agents, so only states that were
    /// (are) honest leave (enter) the tally.
    #[inline]
    fn apply(&mut self, old: &AgentSnapshot, new: &AgentSnapshot) {
        if old == new {
            return;
        }
        if old.honest {
            self.remove(old);
        }
        if new.honest {
            self.add(new);
        }
    }

    fn commit(&mut self, nest: NestId, add: bool) {
        let raw = nest.raw();
        if raw >= self.commits.len() {
            self.commits.resize(raw + 1, 0);
        }
        if add {
            self.commits[raw] += 1;
            if self.commits[raw] == 1 {
                self.distinct += 1;
            }
        } else {
            self.commits[raw] -= 1;
            if self.commits[raw] == 0 {
                self.distinct -= 1;
            }
        }
    }

    /// Live honest agents currently tallied.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// The nest every live honest agent is committed to, if they all
    /// agree; `None` when the tally is empty, anyone is uncommitted, or
    /// two agents disagree.
    pub(crate) fn consensus(&self) -> Option<NestId> {
        if self.total == 0 || self.uncommitted > 0 || self.distinct != 1 {
            return None;
        }
        self.commits
            .iter()
            .position(|&count| count > 0)
            .map(NestId::from_raw)
    }

    /// `true` if every live honest agent reports the final state.
    pub(crate) fn all_final(&self) -> bool {
        self.finals == self.total
    }

    /// Folds a per-worker [`TallyDelta`] (chunk-order merge at the round
    /// barrier) into the tally. The end state is identical to having
    /// applied every agent transition directly.
    pub(crate) fn apply_delta(&mut self, delta: &TallyDelta) {
        self.total = signed_add(self.total, delta.total);
        self.uncommitted = signed_add(self.uncommitted, delta.uncommitted);
        self.finals = signed_add(self.finals, delta.finals);
        for (raw, &change) in delta.commits.iter().enumerate() {
            if change == 0 {
                continue;
            }
            if raw >= self.commits.len() {
                self.commits.resize(raw + 1, 0);
            }
            let old = self.commits[raw];
            let new = signed_add(old, change);
            self.commits[raw] = new;
            match (old == 0, new == 0) {
                (true, false) => self.distinct += 1,
                (false, true) => self.distinct -= 1,
                _ => {}
            }
        }
    }

    /// The nest satisfying `good` that holds at least `fraction` of the
    /// live honest colony's commitments, if any; the highest count wins,
    /// lowest nest id breaking ties.
    pub(crate) fn quorum(&self, fraction: f64, good: impl Fn(NestId) -> bool) -> Option<NestId> {
        if self.total == 0 {
            return None;
        }
        let needed = ((fraction * self.total as f64).ceil() as usize).max(1);
        let mut best: Option<(usize, NestId)> = None;
        for (raw, &count) in self.commits.iter().enumerate() {
            if count >= needed && best.is_none_or(|(c, _)| count > c) {
                let nest = NestId::from_raw(raw);
                if good(nest) {
                    best = Some((count, nest));
                }
            }
        }
        best.map(|(_, nest)| nest)
    }
}

/// Adds a signed delta to an unsigned counter; panics on underflow
/// (which would indicate a delta produced against foreign state).
fn signed_add(value: usize, delta: isize) -> usize {
    value
        .checked_add_signed(delta)
        .expect("live tally underflow")
}

/// A signed [`LiveTally`] delta, accumulated per worker during the
/// chunked observe/choose/refresh pass and merged in chunk order at the
/// round barrier ([`LiveTally::apply_delta`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct TallyDelta {
    total: isize,
    uncommitted: isize,
    finals: isize,
    /// Signed commitment changes per raw nest id (grown on demand).
    commits: Vec<isize>,
}

impl TallyDelta {
    fn clear(&mut self) {
        self.total = 0;
        self.uncommitted = 0;
        self.finals = 0;
        self.commits.fill(0);
    }

    /// Mirrors [`LiveTally::apply`] for one agent's snapshot transition.
    #[inline]
    fn apply(&mut self, old: &AgentSnapshot, new: &AgentSnapshot) {
        if old == new {
            return;
        }
        if old.honest {
            self.shift(old, -1);
        }
        if new.honest {
            self.shift(new, 1);
        }
    }

    fn shift(&mut self, snapshot: &AgentSnapshot, sign: isize) {
        self.total += sign;
        self.finals += isize::from(snapshot.is_final) * sign;
        match snapshot.committed {
            None => self.uncommitted += sign,
            Some(nest) => {
                let raw = nest.raw();
                if raw >= self.commits.len() {
                    self.commits.resize(raw + 1, 0);
                }
                self.commits[raw] += sign;
            }
        }
    }
}

/// Phase-2 batched-pass buffer (per worker, persistent): the chunk's
/// recruit **draw plane** — the dense per-row pre-drawn coins consumed
/// branchlessly by `UrnColumnsMut::choose_with_draw` (see
/// [`BatchAgents::observe_choose_all`]).
#[derive(Debug, Default)]
struct PlaneScratch {
    /// Whether the backing store should take the plane passes at all —
    /// [`Simulation::with_draw_planes`], threaded down per round.
    enabled: bool,
    /// One recruit draw per chunk row (`false` for rows the scalar path
    /// would not draw for).
    draws: Vec<bool>,
}

/// Per-worker round state: everything a chunk writes besides its
/// disjoint slots, merged serially in chunk order at the barriers so
/// results never depend on the thread count. Buffers persist across
/// rounds — the steady state allocates nothing.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Phase 1: this chunk's population tally (length `k + 1`).
    counts: Vec<usize>,
    /// Phase 1: this chunk's recruit calls, in ant order.
    calls: Vec<RecruitCall>,
    /// Phase 1: illegal actions sandboxed in this chunk.
    illegal: u64,
    /// Phase 2: this chunk's role-census delta.
    census: CensusDelta,
    /// Phase 2: this chunk's live-tally delta.
    tally: TallyDelta,
    /// Phase 2: this chunk's outcome/draw-plane buffers.
    plane: PlaneScratch,
}

/// Which representation of the colony's agent state is currently
/// authoritative — the state machine behind the **lazy scatter-on-read**
/// seam. The batched table path no longer scatters on loop exit; the
/// table stays authoritative until a scalar consumer (a scalar-path
/// round, or [`Simulation::agents`]/[`Simulation::colony`]) actually
/// needs the `Vec<AnyAgent>`, at which point the scatter runs once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableAuthority {
    /// The `Vec<AnyAgent>` is authoritative; any cached table is stale.
    Agents,
    /// Both representations hold the same state bit-exactly.
    Synced,
    /// The gathered table is authoritative; the agent vector is stale.
    Table,
}

/// One synchronous execution: environment + colony + perturbations.
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{ConvergenceRule, Simulation};
/// use hh_model::{ColonyConfig, Environment, QualitySpec};
///
/// let n = 24;
/// let config = ColonyConfig::new(n, QualitySpec::good_prefix(3, 1)).seed(5);
/// let env = Environment::new(&config)?;
/// let mut sim = Simulation::new(env, colony::simple(n, 5))?;
/// let outcome = sim.run_to_convergence(ConvergenceRule::commitment(), 10_000)?;
/// assert!(outcome.solved.is_some());
/// # Ok::<(), hh_sim::SimError>(())
/// ```
pub struct Simulation {
    env: Environment,
    colony: Colony,
    perturbations: Perturbations,
    replaced_actions: u64,
    illegal_actions: u64,
    /// `crashed[a]`: the executor has already seen ant `a` crashed (and
    /// removed it from the live tally).
    crashed: Vec<bool>,
    /// `true` when both perturbation plans are empty — enables the fast
    /// step path with no per-ant fault checks.
    unperturbed: bool,
    /// Which engine steps unperturbed rounds (perturbed rounds always
    /// run the scalar bookkeeping path).
    engine: EngineKind,
    /// Fast path: `scratch.next_actions` holds the upcoming round's
    /// pre-chosen actions.
    prechosen: bool,
    live: LiveTally,
    scratch: RoundScratch,
    /// Intra-round parts (1 = serial). See
    /// [`with_round_threads`](Simulation::with_round_threads).
    round_threads: usize,
    /// Ant-chunk boundaries, length `round_threads + 1`.
    chunk_bounds: Vec<usize>,
    /// One scratch per part, merged in part order at the barriers.
    worker_scratch: Vec<WorkerScratch>,
    /// The persistent pool (`round_threads > 1`, unperturbed only).
    pool: Option<WorkerPool>,
    /// The colony is homogeneous modulo idlers (checked once at
    /// construction): unperturbed SoA convergence runs batch it through
    /// per-algorithm state columns. See
    /// [`uses_agent_columns`](Simulation::uses_agent_columns).
    table_eligible: bool,
    /// The gathered agent-state table, kept across runs so repeated
    /// short convergence calls (the benches' run-one-round pattern)
    /// don't pay a full gather per call.
    table: Option<AgentColumns>,
    /// Which representation (`table` or the agent vector) is currently
    /// authoritative; drives the lazy scatter-on-read seam.
    authority: TableAuthority,
    /// The [`run_to_convergence`](Simulation::run_to_convergence) table
    /// gate, defaulting to [`TABLE_MIN_ROUNDS`](Simulation::TABLE_MIN_ROUNDS)
    /// (or the `HH_TABLE_MIN_ROUNDS` environment variable when set).
    table_min_rounds: u64,
    /// Whether table rounds consume the round-level recruit **draw
    /// plane** instead of drawing inline in the fused per-row pass. Both
    /// are bit-identical (each row's draw is a pure keyed hash of
    /// `(key, round)`); see
    /// [`with_draw_planes`](Simulation::with_draw_planes) for why the
    /// fused pass is still the default.
    draw_planes: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.env.round())
            .field("n", &self.env.n())
            .field("k", &self.env.k())
            .field("perturbations", &self.perturbations)
            .field("replaced_actions", &self.replaced_actions)
            .field("illegal_actions", &self.illegal_actions)
            .field("round_threads", &self.round_threads)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates an unperturbed simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if the colony's size
    /// differs from the environment's.
    pub fn new(env: Environment, agents: impl Into<Colony>) -> Result<Self, SimError> {
        Self::with_perturbations(env, agents, None)
    }

    /// Creates a simulation with explicit perturbation plans (`None` for
    /// the unperturbed baseline).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if the colony's size
    /// differs from the environment's.
    pub fn with_perturbations(
        env: Environment,
        agents: impl Into<Colony>,
        perturbations: Option<Perturbations>,
    ) -> Result<Self, SimError> {
        let mut colony = agents.into();
        colony.sync();
        if colony.len() != env.n() {
            return Err(SimError::AgentCountMismatch {
                agents: colony.len(),
                n: env.n(),
            });
        }
        let n = env.n();
        let mut live = LiveTally::default();
        for snapshot in colony.iter_snapshots() {
            if snapshot.honest {
                live.add(&snapshot);
            }
        }
        let perturbations = perturbations.unwrap_or_else(|| Perturbations::none(n));
        let unperturbed = perturbations.is_none();
        let table_eligible = AgentColumns::eligible(&colony);
        Ok(Self {
            env,
            colony,
            perturbations,
            replaced_actions: 0,
            illegal_actions: 0,
            crashed: vec![false; n],
            unperturbed,
            engine: EngineKind::default(),
            prechosen: false,
            live,
            scratch: RoundScratch::default(),
            round_threads: 1,
            chunk_bounds: vec![0, n],
            worker_scratch: vec![WorkerScratch::default()],
            pool: None,
            table_eligible,
            table: None,
            authority: TableAuthority::Agents,
            table_min_rounds: std::env::var("HH_TABLE_MIN_ROUNDS")
                .ok()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or(Self::TABLE_MIN_ROUNDS),
            draw_planes: std::env::var("HH_DRAW_PLANES")
                .ok()
                .is_some_and(|raw| raw == "1" || raw.eq_ignore_ascii_case("true")),
        })
    }

    /// Overrides the minimum `max_rounds` at which
    /// [`run_to_convergence`](Self::run_to_convergence) batches rounds
    /// through the agent-state table (default:
    /// [`TABLE_MIN_ROUNDS`](Self::TABLE_MIN_ROUNDS), or the
    /// `HH_TABLE_MIN_ROUNDS` environment variable when set at
    /// construction). Both engine paths are bit-identical, so this is
    /// purely a performance/benchmarking knob: `1` forces every eligible
    /// convergence run onto the table path, `u64::MAX` disables it.
    #[must_use]
    pub fn with_table_min_rounds(mut self, min_rounds: u64) -> Self {
        self.table_min_rounds = min_rounds;
        self
    }

    /// Makes table rounds consume the round-level recruit **draw plane**
    /// (`UrnColumnsMut::fill_draw_plane` + `choose_with_draw`) instead of
    /// drawing inline in the fused per-row pass. Defaults to `false`, or
    /// the `HH_DRAW_PLANES` environment variable (`1`/`true`) when set at
    /// construction.
    ///
    /// Both paths are bit-identical by construction — each row's draw
    /// is a pure keyed hash of `(key, round)` with no stream state, so
    /// the plane fill and the fused pass evaluate literally the same
    /// function — making this a pure performance/audit knob. Counter
    /// draws made the fill a dense branch-free sweep and planes now
    /// beat the pure scalar engine, but on this target the hash's
    /// 64-bit multiplies and the `u64 → f64` threshold compare don't
    /// vectorize, so the split passes still trail the fused pass by a
    /// few percent (see `BENCH_BASELINE.md` for the measured three-way).
    /// The fused pass therefore stays the default; the CI thread matrix
    /// keeps the plane path pinned to the oracle.
    #[must_use]
    pub fn with_draw_planes(mut self, enabled: bool) -> Self {
        self.draw_planes = enabled;
        self
    }

    /// Sets the number of intra-round parts and spawns the persistent
    /// worker pool behind them (once; the threads are reused every
    /// round). `threads` is clamped to `1..=16`; 1 restores the serial
    /// engine.
    ///
    /// **Determinism contract:** every thread count produces
    /// bit-identical executions — the serial path is the same chunked
    /// code run inline, all per-ant randomness lives in per-ant streams,
    /// and per-worker deltas merge in chunk order. The registry
    /// conformance suite enforces this across the whole catalog.
    ///
    /// **Perturbed simulations ignore this setting at execution time**:
    /// their rounds always run serially (the per-ant crash/delay
    /// bookkeeping is not worth parallelizing), no pool is spawned, and
    /// the outcomes are bit-identical to the serial run by construction
    /// — the setting is remembered but inert. The same applies to
    /// `Scenario::round_threads` in the registry.
    #[must_use]
    pub fn with_round_threads(mut self, threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_ROUND_THREADS);
        let n = self.env.n();
        self.round_threads = threads;
        self.chunk_bounds = (0..=threads).map(|part| part * n / threads).collect();
        self.worker_scratch
            .resize_with(threads, WorkerScratch::default);
        self.rebuild_pool();
        self
    }

    /// Overrides the ant-chunk boundaries used by the SoA engine's
    /// intra-round phases — a **testing hook** for driving the chunked
    /// code through adversarial splits (width-1 chunks, `n - 1` cuts,
    /// prime strides) that the even `with_round_threads` division never
    /// produces. The determinism contract says every valid split is
    /// bit-identical to serial; `tests/property_runner.rs` enforces it
    /// through this hook.
    ///
    /// `bounds` must be monotonically non-decreasing, start at `0`, end
    /// at `n`, and describe at most `MAX_ROUND_THREADS` (`16`) chunks.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a valid chunk split as described above.
    #[must_use]
    pub fn with_chunk_bounds(mut self, bounds: Vec<usize>) -> Self {
        let n = self.env.n();
        assert!(
            bounds.len() >= 2 && bounds.len() <= MAX_ROUND_THREADS + 1,
            "chunk bounds must describe 1..={MAX_ROUND_THREADS} chunks"
        );
        assert_eq!(bounds[0], 0, "chunk bounds must start at 0");
        assert_eq!(
            *bounds.last().expect("non-empty"),
            n,
            "chunk bounds must end at n"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "chunk bounds must be monotonically non-decreasing"
        );
        let threads = bounds.len() - 1;
        self.round_threads = threads;
        self.chunk_bounds = bounds;
        self.worker_scratch
            .resize_with(threads, WorkerScratch::default);
        self.rebuild_pool();
        self
    }

    /// Selects the engine for unperturbed rounds (default:
    /// [`EngineKind::Soa`]).
    ///
    /// The scalar engine always runs serially, so choosing it releases
    /// any worker pool; switching back to SoA re-applies the configured
    /// `round_threads`. The builders commute: any order of
    /// `with_round_threads` / `with_engine` / `with_chunk_bounds` calls
    /// ends at the same configuration, thread count included (pinned by
    /// `builder_order_never_drops_threads`).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self.rebuild_pool();
        self
    }

    /// Reconciles the worker pool with the current configuration — the
    /// single pool gate shared by every builder, so no call order can
    /// drop the requested thread count. An already-matching pool is kept
    /// (no thread churn when e.g. toggling the engine away and back).
    fn rebuild_pool(&mut self) {
        let wanted = (self.round_threads > 1 && self.unperturbed && self.engine == EngineKind::Soa)
            .then_some(self.round_threads - 1);
        match (wanted, &self.pool) {
            (Some(workers), Some(pool)) if pool.workers() == workers => {}
            (Some(workers), _) => self.pool = Some(WorkerPool::new(workers)),
            (None, _) => self.pool = None,
        }
    }

    /// The engine driving unperturbed rounds.
    #[must_use]
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Default minimum `max_rounds` at which
    /// [`run_to_convergence`](Self::run_to_convergence) batches rounds
    /// through the agent-state table. Gathering the colony into columns
    /// costs a full pass over the agent vector — roughly a tenth of one
    /// round-time at n ≥ 4096 — and since the scatter back became lazy
    /// (paid only when a scalar view is actually read, not per run) the
    /// break-even sits near two rounds; shorter runs stay on the
    /// `AnyAgent` path. Override per simulation with
    /// [`with_table_min_rounds`](Self::with_table_min_rounds) or
    /// process-wide with the `HH_TABLE_MIN_ROUNDS` environment variable
    /// (read at construction); CI forces `1` in the thread-matrix job so
    /// the table path is exercised by every suite.
    pub const TABLE_MIN_ROUNDS: u64 = 2;

    /// `true` if [`run_to_convergence`](Self::run_to_convergence) will
    /// batch rounds through per-algorithm agent-state columns
    /// ([`hh_core::AgentColumns`]) once `max_rounds` reaches the table
    /// gate ([`with_table_min_rounds`](Self::with_table_min_rounds)):
    /// the colony is homogeneous (urn colonies modulo idlers; optimal,
    /// quality, and spreader colonies uniformly), the simulation is
    /// unperturbed, and the SoA engine is selected. Heterogeneous
    /// mixes, `Custom` agents, adversaries, perturbed runs, and the
    /// scalar oracle all take the `AnyAgent` path instead —
    /// bit-identically, by the engine contract.
    #[must_use]
    pub fn uses_agent_columns(&self) -> bool {
        self.table_eligible && self.unperturbed && self.engine == EngineKind::Soa
    }

    /// The configured number of intra-round parts.
    #[must_use]
    pub fn round_threads(&self) -> usize {
        self.round_threads
    }

    /// The environment (read-only).
    #[must_use]
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The colony (read-only view; `&mut self` because reading the
    /// scalar agents is the **lazy scatter** point — if the batched
    /// table currently holds the authoritative state, it is scattered
    /// back into the agent vector here, once, before the borrow is
    /// handed out).
    #[must_use]
    pub fn agents(&mut self) -> &[AnyAgent] {
        self.sync_agents();
        &self.colony
    }

    /// The colony with its cached census (read-only view; `&mut self`
    /// for the same lazy-scatter reason as [`agents`](Self::agents)).
    #[must_use]
    pub fn colony(&mut self) -> &Colony {
        self.sync_agents();
        &self.colony
    }

    /// Every agent's observable state, in ant order — served from the
    /// colony's snapshot columns, which both engines keep current every
    /// round, so this needs **no** scatter and is valid whichever
    /// representation (agent vector or batched table) is authoritative.
    pub fn iter_snapshots(&self) -> impl Iterator<Item = AgentSnapshot> + '_ {
        self.colony.iter_snapshots()
    }

    /// Makes the agent vector authoritative again (scatters the batched
    /// table if it holds newer state) — the single seam behind
    /// [`agents`](Self::agents)/[`colony`](Self::colony) and the
    /// scalar-path rounds.
    fn sync_agents(&mut self) {
        if self.authority == TableAuthority::Table {
            self.scatter_table();
        }
    }

    /// Completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.env.round()
    }

    /// Actions replaced by crash/delay no-ops so far.
    #[must_use]
    pub fn replaced_actions(&self) -> u64 {
        self.replaced_actions
    }

    /// Illegal agent actions sandboxed so far.
    #[must_use]
    pub fn illegal_actions(&self) -> u64 {
        self.illegal_actions
    }

    /// Executes one synchronous round into the persistent scratch.
    ///
    /// With `materialize` set, the report (including the per-ant outcome
    /// vector) is readable as `self.scratch.report` afterwards; without
    /// it, each outcome is handed straight to its agent as it is
    /// computed and `report.outcomes` stays empty — the convergence loop
    /// needs no colony-sized outcome buffer. Both modes run the **same**
    /// delivering round pass; materializing only adds the per-slot copy
    /// into the (persistent) report buffer, so instrumented and
    /// convergence runs are one code path and report identical
    /// [`RunOutcome`]s.
    fn step_round(&mut self, materialize: bool) -> Result<(), SimError> {
        if self.unperturbed && self.engine == EngineKind::Soa {
            self.step_round_fast(materialize)
        } else {
            self.step_round_scalar(materialize)
        }
    }

    /// The unperturbed fast path: no crash/delay plans to consult per
    /// ant, and every agent chooses every round, so the `chose` mask is
    /// a constant `true` and is not materialized.
    ///
    /// The engine is memory-bound at scale — the dominant cost of a
    /// round is streaming the agent array — so the fast path makes
    /// exactly ONE pass over the agents per round: round r's observe is
    /// fused with round r+1's choose (agents are independent, and
    /// between rounds nothing else touches them), and the pre-chosen
    /// actions are stashed in `next_actions` for the next step. Only the
    /// first round after construction runs a dedicated choose pass.
    ///
    /// Both per-ant phases (validate/relocate/tally, then the fused
    /// outcome/observe/choose/refresh pass) run over `round_threads`
    /// disjoint ant chunks — inline when serial, on the persistent pool
    /// otherwise — with per-worker deltas merged in chunk order between
    /// the phases; only the Algorithm 1 pairing runs serially. See the
    /// module docs for why every thread count is bit-identical.
    ///
    /// Legality is still checked at the top of the round the action
    /// executes in (identical sandboxing semantics and counters), and
    /// the per-ant crash/delay semantics that forbid pre-choosing — a
    /// skipped ant must not advance its state machine — cannot occur
    /// here by definition.
    fn step_round_fast(&mut self, materialize: bool) -> Result<(), SimError> {
        // This path mutates the agent vector directly: scatter first if
        // the table holds newer state, then mark any cached table stale.
        self.sync_agents();
        self.authority = TableAuthority::Agents;
        let n = self.env.n();
        let round = self.env.round() + 1;
        let prechosen = std::mem::replace(&mut self.prechosen, true);
        let Self {
            env,
            colony,
            scratch,
            worker_scratch,
            live,
            pool,
            chunk_bounds,
            illegal_actions,
            ..
        } = self;
        if !prechosen {
            scratch.next_actions.clear();
            scratch.next_actions.resize(n, Action::Search);
            let (agents, _) = colony.engine_split();
            prime_choose_pass(
                agents,
                &mut scratch.next_actions,
                pool.as_mut(),
                chunk_bounds,
                round,
            );
        }
        let (agents, snapshots) = colony.engine_split();
        run_batched_round(
            env,
            agents,
            snapshots,
            scratch,
            worker_scratch,
            pool.as_mut(),
            chunk_bounds,
            illegal_actions,
            round,
            materialize,
            false, // the AnyAgent store has no plane override to enable
        );
        finish_round(env, colony, scratch, worker_scratch, live);
        Ok(())
    }

    /// The tentpole batched path: the same round as
    /// [`step_round_fast`](Self::step_round_fast), but the agent pass
    /// streams the gathered [`AgentColumns`] state table — per-algorithm
    /// parallel columns dispatched once per round — instead of the
    /// 88-byte-stride `AnyAgent` vector. Snapshot columns, role census,
    /// and live tally are maintained identically (detectors read the
    /// same state), and the shared `run_batched_round` body guarantees
    /// the phase structure cannot drift between the two paths.
    ///
    /// Only [`run_to_convergence`](Self::run_to_convergence) calls this,
    /// after [`gather_table`](Self::gather_table); the table is
    /// authoritative afterwards and the agent vector stays stale until a
    /// scalar consumer triggers the lazy scatter
    /// ([`sync_agents`](Self::sync_agents)).
    fn step_round_table(&mut self, materialize: bool) -> Result<(), SimError> {
        let n = self.env.n();
        let round = self.env.round() + 1;
        let prechosen = std::mem::replace(&mut self.prechosen, true);
        let draw_planes = self.draw_planes;
        self.authority = TableAuthority::Table;
        let Self {
            env,
            colony,
            scratch,
            worker_scratch,
            live,
            pool,
            chunk_bounds,
            illegal_actions,
            table,
            ..
        } = self;
        let table = table.as_mut().expect("gather_table precedes table rounds");
        // One five-variant dispatch per pass, outside the per-ant loops.
        macro_rules! dispatch_band {
            ($table:expr, |$band:ident| $body:expr) => {
                match $table {
                    AgentColumnsMut::Simple($band) => $body,
                    AgentColumnsMut::Adaptive($band) => $body,
                    AgentColumnsMut::Optimal($band) => $body,
                    AgentColumnsMut::Quality($band) => $body,
                    AgentColumnsMut::Spreader($band) => $body,
                }
            };
        }
        if !prechosen {
            scratch.next_actions.clear();
            scratch.next_actions.resize(n, Action::Search);
            dispatch_band!(table.as_band_mut(), |band| prime_choose_pass(
                band,
                &mut scratch.next_actions,
                pool.as_mut(),
                chunk_bounds,
                round,
            ));
        }
        let (_, snapshots) = colony.engine_split();
        dispatch_band!(table.as_band_mut(), |band| run_batched_round(
            env,
            band,
            snapshots,
            scratch,
            worker_scratch,
            pool.as_mut(),
            chunk_bounds,
            illegal_actions,
            round,
            materialize,
            draw_planes,
        ));
        finish_round(env, colony, scratch, worker_scratch, live);
        Ok(())
    }

    /// Gathers the colony into the agent-state table. Skipped when the
    /// cached table is already current (`Synced` after a scatter, or
    /// still `Table`-authoritative from a previous run that no scalar
    /// consumer touched) — repeated convergence calls pay the column
    /// copy only once, and back-to-back table runs pay **neither**
    /// gather nor scatter.
    fn gather_table(&mut self) {
        if self.authority != TableAuthority::Agents && self.table.is_some() {
            return;
        }
        self.table = Some(
            AgentColumns::gather(&self.colony).expect("eligibility was checked at construction"),
        );
        self.authority = TableAuthority::Synced;
    }

    /// Writes the table's rows — draw keys included — back into the
    /// agent vector, making the scalar representation current again.
    /// The table is kept for the next gather to reuse.
    fn scatter_table(&mut self) {
        let Self { colony, table, .. } = self;
        if let Some(table) = table.as_ref() {
            let (agents, _) = colony.engine_split();
            table.scatter_into(agents);
        }
        self.authority = TableAuthority::Synced;
    }

    /// The scalar path: one match-per-ant pass per phase, always serial
    /// (regardless of `round_threads`), built on the same chunk-view
    /// primitives — one full-range chunk per phase — and the same
    /// delivering outcome pass as the fast path.
    ///
    /// This path plays two roles:
    ///
    /// * **Perturbed rounds** always run here — the per-ant crash/delay
    ///   bookkeeping is not worth parallelizing.
    /// * **[`EngineKind::Scalar`]** routes unperturbed rounds here too
    ///   (the plans are empty, so every fault check falls through). That
    ///   makes this loop the *distribution-identity oracle* for the SoA
    ///   engine: the per-agent call sequence (`choose(r)` then
    ///   `observe(r)`), the per-ant RNG streams, the serial pairing fed
    ///   in ant order, and the sandboxing timing are all identical to
    ///   the fast path's, so equal seeds must produce bit-identical
    ///   runs. `tests/soa_equivalence.rs` enforces exactly that across
    ///   the registry catalog.
    fn step_round_scalar(&mut self, materialize: bool) -> Result<(), SimError> {
        // Mutates the agent vector directly: scatter first if the table
        // holds newer state, then mark any cached table stale.
        self.sync_agents();
        self.authority = TableAuthority::Agents;
        let round = self.env.round() + 1;
        let n = self.env.n();
        // If the previous round ran on the pre-chosen pipeline (the SoA
        // engine fuses `choose(round + 1)` into its agent pass), the
        // agents have *already* made this round's choices. The Agent
        // contract allows `choose(r)` to be called at most once per
        // round — a stateful implementation (a boxed `Custom` agent, or
        // any future draw that advances state) would diverge on a
        // second call, the mid-run `with_engine(Scalar)` switch bug
        // pinned by `mid_run_engine_switch_matches_pure_scalar` (the
        // built-in urn choose became repeat-safe with the keyed-draw
        // migration, but the contract has not). Consume the buffered
        // actions instead. Pre-chosen rounds are always
        // unperturbed (the fast path requires it), so the fault checks
        // below are vacuous in that case.
        let prechosen = std::mem::replace(&mut self.prechosen, false);
        let scratch = &mut self.scratch;
        scratch.actions.clear();
        scratch.ran.clear();
        scratch.ran.resize(n, false);
        scratch.chose.clear();
        scratch.chose.resize(n, false);
        for idx in 0..n {
            let ant = AntId::new(idx);
            let crashed = self.perturbations.crash.is_crashed(ant, round);
            if crashed && !self.crashed[idx] {
                // First round this ant is gone: freeze it out of the
                // live tally at its last refreshed state.
                self.crashed[idx] = true;
                let snapshot = self.colony.snapshot(idx);
                if snapshot.honest {
                    self.live.remove(&snapshot);
                }
            }
            let delayed = !crashed && self.perturbations.delay.is_delayed(ant, round);
            if crashed || delayed {
                let style = if crashed {
                    self.perturbations.crash.style()
                } else {
                    CrashStyle::InPlace
                };
                scratch.actions.push(noop_action(&self.env, ant, style));
                self.replaced_actions += 1;
                continue;
            }
            let action = if prechosen {
                scratch.next_actions[idx]
            } else {
                self.colony.choose(idx, round)
            };
            scratch.chose[idx] = true;
            if self.env.check_action(ant, &action).is_ok() {
                scratch.ran[idx] = true;
                scratch.actions.push(action);
            } else {
                self.illegal_actions += 1;
                scratch
                    .actions
                    .push(noop_action(&self.env, ant, CrashStyle::InPlace));
            }
        }

        // Every pushed action was either checked above or is a
        // location-preserving no-op, legal by construction. Resolve the
        // round over one full-range chunk.
        scratch.report.recruitment.calls.clear();
        {
            let ws = &mut self.worker_scratch[0];
            ws.counts.clear();
            ws.counts.resize(self.env.k() + 1, 0);
            let mut view = self.env.relocation_view();
            for (idx, action) in scratch.actions.iter().enumerate() {
                view.apply(
                    idx,
                    *action,
                    &mut ws.counts,
                    &mut scratch.report.recruitment.calls,
                );
            }
        }
        self.env
            .merge_counts(std::iter::once(self.worker_scratch[0].counts.as_slice()));
        self.env.pair_round(&scratch.report.recruitment.calls);

        // Outcome + observe + refresh, fused per ant. Refresh covers
        // every agent whose `choose` ran — observe or not, choosing
        // alone can advance a state machine — and folds the deltas into
        // the live tally.
        scratch.report.outcomes.clear();
        if materialize {
            scratch.report.outcomes.resize(
                n,
                Outcome::Go {
                    count: 0,
                    quality: None,
                },
            );
        }
        {
            let (mut chunk, ctx) = self.env.outcome_view();
            let mut cursor = 0usize;
            for (idx, &action) in scratch.actions.iter().enumerate() {
                let outcome = chunk.outcome(&ctx, idx, action, &mut cursor);
                if materialize {
                    scratch.report.outcomes[idx] = outcome;
                }
                if !scratch.chose[idx] {
                    continue;
                }
                if scratch.ran[idx] {
                    self.colony.observe(idx, round, &outcome);
                }
                let (old, new) = self.colony.refresh(idx);
                debug_assert!(
                    old == new || !self.crashed[idx],
                    "crashed agents never choose"
                );
                self.live.apply(&old, &new);
            }
        }
        self.env.export_pairs(&mut scratch.report);
        Ok(())
    }

    /// Executes one synchronous round and returns the environment's
    /// report (outcomes + recruitment pairing) for instrumentation.
    ///
    /// This clones the report out of the engine's reusable buffers; hot
    /// loops should prefer [`run_to_convergence`](Self::run_to_convergence)
    /// / [`run_observed`](Self::run_observed), which allocate nothing per
    /// round, or [`step_in_place`](Self::step_in_place).
    ///
    /// # Errors
    ///
    /// Propagates environment errors; these indicate harness bugs, since
    /// agent actions are validated and sandboxed before execution.
    pub fn step(&mut self) -> Result<StepReport, SimError> {
        self.step_round(true)?;
        Ok(self.scratch.report.clone())
    }

    /// Executes one synchronous round and returns the report by
    /// reference — the zero-allocation equivalent of
    /// [`step`](Self::step).
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    pub fn step_in_place(&mut self) -> Result<&StepReport, SimError> {
        self.step_round(true)?;
        Ok(&self.scratch.report)
    }

    /// Runs until `rule` detects convergence or `max_rounds` rounds have
    /// executed (counted from the simulation's current round).
    ///
    /// When [`uses_agent_columns`](Self::uses_agent_columns) holds — an
    /// unperturbed SoA run over a homogeneous colony — and `max_rounds`
    /// is at least the table gate
    /// ([`with_table_min_rounds`](Self::with_table_min_rounds), default
    /// [`TABLE_MIN_ROUNDS`](Self::TABLE_MIN_ROUNDS)), the loop gathers
    /// the agents into per-algorithm state columns and executes every
    /// round on the batched table path. The table stays authoritative
    /// after the loop returns (errors included): the bit-identical
    /// scatter back into the agent vector — draw keys included — is
    /// **lazy**, performed once when a scalar consumer
    /// ([`agents`](Self::agents), [`colony`](Self::colony), or a
    /// scalar-path round) next needs it, so back-to-back convergence
    /// calls pay no per-call round trip. Both paths are bit-identical,
    /// so the cutoff is purely a performance decision.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_to_convergence(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
    ) -> Result<RunOutcome, SimError> {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        if self.uses_agent_columns() && max_rounds >= self.table_min_rounds {
            self.gather_table();
            // No scatter on exit (success or error): the table stays
            // authoritative and the write-back happens lazily at the
            // next scalar read (`sync_agents`). Detectors need no
            // scatter — they read the snapshot columns and live tally,
            // which the table path maintains every round.
            while self.env.round() - start < max_rounds {
                self.step_round_table(false)?;
                if let Some(found) = detector.check(self) {
                    solved = Some(found);
                    break;
                }
            }
        } else {
            while self.env.round() - start < max_rounds {
                self.step_round(false)?;
                if let Some(found) = detector.check(self) {
                    solved = Some(found);
                    break;
                }
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Like [`run_to_convergence`](Self::run_to_convergence), invoking
    /// `on_round` after every executed round (for metrics recording).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_observed<F>(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
        mut on_round: F,
    ) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Simulation, &StepReport),
    {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        while self.env.round() - start < max_rounds {
            self.step_round(true)?;
            let this = &*self;
            on_round(this, &this.scratch.report);
            if let Some(found) = detector.check(self) {
                solved = Some(found);
                break;
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Returns `true` if `ant` has not crashed as of the current round.
    /// Delayed ants are still live; crashes are permanent.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    pub fn is_live(&self, ant: AntId) -> bool {
        !self.perturbations.crash.is_crashed(ant, self.env.round())
    }

    /// Census of honest-agent roles, used by metrics and detectors.
    /// O(1): maintained incrementally by the engine.
    #[must_use]
    pub fn role_census(&self) -> RoleCensus {
        self.colony.census()
    }

    /// The live-honest tally the convergence detector reads.
    pub(crate) fn live_tally(&self) -> &LiveTally {
        &self.live
    }

    /// `true` if ant `idx` is honest and not yet crashed — the detector's
    /// membership predicate, answered from cached state.
    pub(crate) fn is_live_honest(&self, idx: usize) -> bool {
        !self.crashed[idx] && self.colony.snapshot_columns().honest(idx)
    }
}

/// The agent side of a batched unperturbed round: either a band of the
/// `AnyAgent` vector (the fast path) or a band of the gathered
/// per-algorithm state table (the table path). `run_batched_round` is
/// monomorphized per implementor, so the colony-wide dispatch happens
/// once per round and the per-ant loops underneath are match-free.
trait BatchAgents: Send {
    /// Splits into disjoint `[0, mid)` / `[mid, len)` bands, mirroring
    /// `slice::split_at_mut`.
    fn split_band(self, mid: usize) -> (Self, Self)
    where
        Self: Sized;

    /// Ant `local`'s action for `round` (round-1 priming pass only).
    fn choose_one(&mut self, local: usize, round: u64) -> Action;

    /// Ant `local`'s fused observe → snapshot → choose(`round + 1`)
    /// transition; must match `AnyAgent::observe_choose` exactly.
    fn observe_choose_one(
        &mut self,
        local: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot);

    /// The whole band's phase-2 agent pass. Contract: `outcome_of(local)`
    /// MUST be called exactly once for **every** `local` in `0..ran.len()`,
    /// in ascending order (it advances the chunk's recruit-call cursor),
    /// and `sink(local, action, snapshot)` must be called once per row
    /// with the same `(action, snapshot)` that `observe_choose_one`
    /// would return — row `local` observes iff `ran[local]`.
    ///
    /// The default runs the fused per-row loop. Backing stores whose
    /// state machines permit it (the urn columns) override this with
    /// split column passes — drain the cursor and observe row by row,
    /// fill the round's **draw plane** in one dense branch-free sweep
    /// over the key/count/state columns, then assemble actions consuming
    /// the plane — which is bit-identical because observe never draws
    /// and every coin is a pure keyed function of `(key, round)`,
    /// independent of which pass (or which row order) evaluates it.
    fn observe_choose_all(
        &mut self,
        round: u64,
        ran: &[bool],
        outcome_of: &mut impl FnMut(usize) -> Outcome,
        sink: &mut impl FnMut(usize, Action, AgentSnapshot),
        _plane: &mut PlaneScratch,
    ) {
        for local in 0..ran.len() {
            let outcome = outcome_of(local);
            let observed = ran[local].then_some(&outcome);
            let (action, snapshot) = self.observe_choose_one(local, round, observed);
            sink(local, action, snapshot);
        }
    }
}

impl BatchAgents for &mut [AnyAgent] {
    fn split_band(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }

    #[inline]
    fn choose_one(&mut self, local: usize, round: u64) -> Action {
        self[local].choose(round)
    }

    #[inline]
    fn observe_choose_one(
        &mut self,
        local: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        self[local].observe_choose(round, outcome)
    }
}

impl<P: RecruitPolicy + Copy> BatchAgents for UrnColumnsMut<'_, P> {
    fn split_band(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }

    #[inline]
    fn choose_one(&mut self, local: usize, round: u64) -> Action {
        self.choose(local, round)
    }

    #[inline]
    fn observe_choose_one(
        &mut self,
        local: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        self.observe_choose(local, round, outcome)
    }

    /// Split column passes instead of the fused per-row loop.
    /// Bit-identity to the default holds by construction — observe is
    /// coin-free, and the draw plane computes the same pure keyed coin
    /// `hash(key, round)` the fused path would draw inline
    /// (`UrnColumnsMut::fill_draw_plane`), just batched into one dense
    /// vectorizable sweep consumed by `choose_snapshot_with_draw`.
    fn observe_choose_all(
        &mut self,
        round: u64,
        ran: &[bool],
        outcome_of: &mut impl FnMut(usize) -> Outcome,
        sink: &mut impl FnMut(usize, Action, AgentSnapshot),
        plane: &mut PlaneScratch,
    ) {
        if !plane.enabled || !UrnColumnsMut::<P>::plane_round(round + 1) {
            // Plane consumption is opt-in (`Simulation::with_draw_planes`;
            // see its docs for why the fused pass currently wins), and
            // assessment (odd) / pre-recruitment rounds draw no coins at
            // all, so the plane would be structurally all-false either
            // way: take the single fused sweep and skip two passes.
            for local in 0..ran.len() {
                let outcome = outcome_of(local);
                let observed = ran[local].then_some(&outcome);
                let (action, snapshot) = self.observe_choose_one(local, round, observed);
                sink(local, action, snapshot);
            }
            return;
        }
        // Pass A: drain the chunk's recruit-call cursor (every row, in
        // order, per the trait contract) and observe each row in place —
        // observation is coin-free, so no outcome column needs
        // materializing.
        for local in 0..ran.len() {
            let outcome = outcome_of(local);
            if ran[local] {
                self.observe_row(local, &outcome);
            }
        }
        // Pass B: fill the next round's draw plane — one dense
        // branch-free sweep over the key/count/state columns.
        self.fill_draw_plane(round + 1, &mut plane.draws);
        // Pass C: assemble actions consuming the plane — snapshot and
        // choose fused into one row dispatch, no coin evaluation left.
        for local in 0..ran.len() {
            let (action, snapshot) =
                self.choose_snapshot_with_draw(local, round + 1, plane.draws[local]);
            sink(local, action, snapshot);
        }
    }
}

impl<A: Agent + Clone + Send> BatchAgents for DenseRowsMut<'_, A> {
    fn split_band(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }

    #[inline]
    fn choose_one(&mut self, local: usize, round: u64) -> Action {
        self.choose(local, round)
    }

    #[inline]
    fn observe_choose_one(
        &mut self,
        local: usize,
        round: u64,
        outcome: Option<&Outcome>,
    ) -> (Action, AgentSnapshot) {
        self.observe_choose(local, round, outcome)
    }

    // Dense rows keep the default fused `observe_choose_all`: these
    // algorithms mutate state inside `choose` (their keyed coins are
    // order-independent, but the surrounding transition is not), so
    // there is no separate plane pass to split out.
}

/// Round 1 only: the dedicated choose pass that primes the pre-chosen
/// pipeline, chunked over the same bounds as the main pass.
fn prime_choose_pass<A: BatchAgents>(
    full_agents: A,
    next_actions: &mut [Action],
    pool: Option<&mut WorkerPool>,
    bounds: &[usize],
    round: u64,
) {
    let threads = bounds.len() - 1;
    struct ChoosePart<'a, A> {
        agents: A,
        next: &'a mut [Action],
    }
    let slots: [Mutex<Option<ChoosePart<'_, A>>>; MAX_ROUND_THREADS] =
        std::array::from_fn(|_| Mutex::new(None));
    let mut rest_agents = Some(full_agents);
    let mut rest_next = next_actions;
    for (part, slot) in slots.iter().take(threads).enumerate() {
        let len = bounds[part + 1] - bounds[part];
        let (agents, tail) = rest_agents
            .take()
            .expect("agents remainder")
            .split_band(len);
        rest_agents = Some(tail);
        let (next, tail) = std::mem::take(&mut rest_next).split_at_mut(len);
        rest_next = tail;
        *slot.lock().expect("slot") = Some(ChoosePart { agents, next });
    }
    scatter(pool, threads, &slots, |_, part: ChoosePart<'_, A>| {
        let ChoosePart { mut agents, next } = part;
        for (local, next) in next.iter_mut().enumerate() {
            *next = agents.choose_one(local, round);
        }
    });
}

/// The body shared by `step_round_fast` (agent vector) and
/// `step_round_table` (per-algorithm state columns): one unperturbed
/// round — phase 1 (validate/sandbox/relocate/tally), the serial
/// pairing middle, phase 2 (outcome → observe → choose, snapshot
/// refresh) — over any [`BatchAgents`] backing store. The caller folds
/// the per-worker census/tally deltas afterwards ([`finish_round`]).
#[allow(clippy::too_many_arguments)]
fn run_batched_round<A: BatchAgents>(
    env: &mut Environment,
    full_agents: A,
    full_snapshots: ColumnsMut<'_>,
    scratch: &mut RoundScratch,
    worker_scratch: &mut [WorkerScratch],
    mut pool: Option<&mut WorkerPool>,
    bounds: &[usize],
    illegal_actions: &mut u64,
    round: u64,
    materialize: bool,
    draw_planes: bool,
) {
    let n = env.n();
    let k1 = env.k() + 1;
    let threads = bounds.len() - 1;

    std::mem::swap(&mut scratch.actions, &mut scratch.next_actions);
    // Both buffers are written slot-by-slot for every ant (phase 1
    // fills `ran`, phase 2 fills `next_actions`), so at steady state
    // they only need their length established — refilling defaults
    // every round would be two redundant full-colony write passes.
    if scratch.next_actions.len() != n {
        scratch.next_actions.resize(n, Action::Search);
    }
    if scratch.ran.len() != n {
        scratch.ran.resize(n, true);
    }

    // ── Phase 1 (chunked): validate + sandbox, relocate, tally
    // populations, collect recruit calls.
    {
        struct RelocPart<'a> {
            chunk: RelocationChunk<'a>,
            actions: &'a mut [Action],
            ran: &'a mut [bool],
            scratch: &'a mut WorkerScratch,
        }
        let slots: [Mutex<Option<RelocPart>>; MAX_ROUND_THREADS] =
            std::array::from_fn(|_| Mutex::new(None));
        let mut rest_chunk = Some(env.relocation_view());
        let mut rest_actions = scratch.actions.as_mut_slice();
        let mut rest_ran = scratch.ran.as_mut_slice();
        let mut scratch_iter = worker_scratch.iter_mut();
        for (part, slot) in slots.iter().take(threads).enumerate() {
            let len = bounds[part + 1] - bounds[part];
            let chunk = if part + 1 == threads {
                rest_chunk.take().expect("chunk remainder")
            } else {
                let (head, tail) = rest_chunk
                    .take()
                    .expect("chunk remainder")
                    .split_at(bounds[part + 1]);
                rest_chunk = Some(tail);
                head
            };
            let (actions, tail) = std::mem::take(&mut rest_actions).split_at_mut(len);
            rest_actions = tail;
            let (ran, tail) = std::mem::take(&mut rest_ran).split_at_mut(len);
            rest_ran = tail;
            *slot.lock().expect("slot") = Some(RelocPart {
                chunk,
                actions,
                ran,
                scratch: scratch_iter.next().expect("worker scratch"),
            });
        }
        scatter(
            pool.as_deref_mut(),
            threads,
            &slots,
            |_, part: RelocPart<'_>| {
                let RelocPart {
                    mut chunk,
                    actions,
                    ran,
                    scratch,
                } = part;
                scratch.counts.clear();
                scratch.counts.resize(k1, 0);
                scratch.calls.clear();
                scratch.illegal = 0;
                let start = chunk.start();
                // Validate + sandbox first, so the relocation pass below
                // sees only legal actions and can batch its per-ant RNG
                // draws over the chunk's flat stream column.
                for (local, action) in actions.iter_mut().enumerate() {
                    let idx = start + local;
                    let legal = chunk.check_action(idx, action).is_ok();
                    ran[local] = legal;
                    if !legal {
                        scratch.illegal += 1;
                        *action = chunk.noop_in_place(idx);
                    }
                }
                chunk.apply_all(actions, &mut scratch.counts, &mut scratch.calls);
            },
        );
    }

    // ── Serial middle: merge the per-chunk tallies and calls (chunk
    // order reproduces ant order), then run Algorithm 1.
    for ws in worker_scratch.iter() {
        *illegal_actions += ws.illegal;
    }
    env.merge_counts(worker_scratch.iter().map(|ws| ws.counts.as_slice()));
    let calls = &mut scratch.report.recruitment.calls;
    calls.clear();
    for ws in worker_scratch.iter() {
        calls.extend_from_slice(&ws.calls);
    }
    env.pair_round(calls);

    // ── Phase 2 (chunked): the single agent pass — compute the
    // outcome, observe round `round`, choose round `round + 1`,
    // refresh the (cache-hot) snapshot — one `observe_choose_one` per
    // ant — and accumulate census/tally deltas per worker. In the
    // eliding mode each outcome lives only for the instant its agent
    // consumes it; materializing adds a copy into the report's
    // persistent buffer.
    scratch.report.outcomes.clear();
    if materialize {
        scratch.report.outcomes.resize(
            n,
            Outcome::Go {
                count: 0,
                quality: None,
            },
        );
    }
    {
        struct OutcomePart<'a, A> {
            chunk: OutcomeChunk<'a>,
            agents: A,
            snapshots: ColumnsMut<'a>,
            next: &'a mut [Action],
            outcomes: Option<&'a mut [Outcome]>,
            scratch: &'a mut WorkerScratch,
            /// This chunk's first recruiter rank (call cursor start).
            cursor: usize,
        }
        let slots: [Mutex<Option<OutcomePart<'_, A>>>; MAX_ROUND_THREADS] =
            std::array::from_fn(|_| Mutex::new(None));
        let (full_chunk, ctx) = env.outcome_view();
        let mut rest_agents = Some(full_agents);
        let mut rest_snapshots = Some(full_snapshots);
        let mut rest_chunk = Some(full_chunk);
        let mut rest_next = scratch.next_actions.as_mut_slice();
        let mut rest_outcomes = materialize.then_some(scratch.report.outcomes.as_mut_slice());
        let mut scratch_iter = worker_scratch.iter_mut();
        let mut cursor = 0usize;
        for (part, slot) in slots.iter().take(threads).enumerate() {
            let len = bounds[part + 1] - bounds[part];
            let chunk = if part + 1 == threads {
                rest_chunk.take().expect("chunk remainder")
            } else {
                let (head, tail) = rest_chunk
                    .take()
                    .expect("chunk remainder")
                    .split_at(bounds[part + 1]);
                rest_chunk = Some(tail);
                head
            };
            let (agents, tail) = rest_agents
                .take()
                .expect("agents remainder")
                .split_band(len);
            rest_agents = Some(tail);
            let snapshots = if part + 1 == threads {
                rest_snapshots.take().expect("columns remainder")
            } else {
                let (head, tail) = rest_snapshots
                    .take()
                    .expect("columns remainder")
                    .split_at_mut(len);
                rest_snapshots = Some(tail);
                head
            };
            let (next, tail) = std::mem::take(&mut rest_next).split_at_mut(len);
            rest_next = tail;
            let outcomes = rest_outcomes.take().map(|rest| {
                let (head, tail) = rest.split_at_mut(len);
                rest_outcomes = Some(tail);
                head
            });
            let ws = scratch_iter.next().expect("worker scratch");
            let part_cursor = cursor;
            cursor += ws.calls.len();
            *slot.lock().expect("slot") = Some(OutcomePart {
                chunk,
                agents,
                snapshots,
                next,
                outcomes,
                scratch: ws,
                cursor: part_cursor,
            });
        }
        let actions = scratch.actions.as_slice();
        let ran = scratch.ran.as_slice();
        scatter(pool, threads, &slots, |_, part: OutcomePart<'_, A>| {
            let OutcomePart {
                mut chunk,
                mut agents,
                mut snapshots,
                next,
                mut outcomes,
                scratch,
                mut cursor,
            } = part;
            // Disjoint borrows: the outcome closure owns the chunk +
            // cursor, the sink owns the snapshot/census/tally side, and
            // the plane buffers go to the backing store's batched pass.
            let WorkerScratch {
                census,
                tally,
                plane,
                ..
            } = scratch;
            census.clear();
            tally.clear();
            plane.enabled = draw_planes;
            let start = chunk.start();
            let ran = &ran[start..start + next.len()];
            let mut outcome_of = |local: usize| {
                let idx = start + local;
                let outcome = chunk.outcome(&ctx, idx, actions[idx], &mut cursor);
                if let Some(out) = outcomes.as_deref_mut() {
                    out[local] = outcome;
                }
                outcome
            };
            let mut sink = |local: usize, action: Action, new: AgentSnapshot| {
                next[local] = action;
                let old = snapshots.get(local);
                if new != old {
                    census.record(&old, &new);
                    tally.apply(&old, &new);
                    snapshots.set(local, new);
                }
            };
            agents.observe_choose_all(round, ran, &mut outcome_of, &mut sink, plane);
        });
    }
}

/// The round barrier shared by the fast and table paths: fold the
/// per-chunk census/tally deltas in chunk order, then export the
/// recruitment pairs into the report.
fn finish_round(
    env: &mut Environment,
    colony: &mut Colony,
    scratch: &mut RoundScratch,
    worker_scratch: &[WorkerScratch],
    live: &mut LiveTally,
) {
    for ws in worker_scratch.iter() {
        colony.apply_census_delta(&ws.census);
        live.apply_delta(&ws.tally);
    }
    env.export_pairs(&mut scratch.report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::{colony, Agent};
    use hh_model::{ColonyConfig, NestId, QualitySpec};

    fn env(n: usize, k: usize, seed: u64) -> Environment {
        Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed)).unwrap()
    }

    #[test]
    fn rejects_mismatched_colony() {
        let err = Simulation::new(env(5, 2, 0), colony::simple(3, 0)).unwrap_err();
        assert_eq!(err, SimError::AgentCountMismatch { agents: 3, n: 5 });
    }

    #[test]
    fn steps_advance_rounds() {
        let mut sim = Simulation::new(env(8, 2, 1), colony::simple(8, 1)).unwrap();
        assert_eq!(sim.round(), 0);
        sim.step().unwrap();
        assert_eq!(sim.round(), 1);
        assert_eq!(sim.replaced_actions(), 0);
        assert_eq!(sim.illegal_actions(), 0);
    }

    #[test]
    fn step_in_place_matches_step() {
        let mut a = Simulation::new(env(16, 2, 11), colony::simple(16, 11)).unwrap();
        let mut b = Simulation::new(env(16, 2, 11), colony::simple(16, 11)).unwrap();
        for _ in 0..20 {
            let cloned = a.step().unwrap();
            let borrowed = b.step_in_place().unwrap();
            assert_eq!(&cloned, borrowed);
        }
    }

    #[test]
    fn converges_simple_colony() {
        let mut sim = Simulation::new(env(32, 2, 2), colony::simple(32, 2)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("simple colony converges");
        assert!(solved.good);
        assert!(solved.round >= 1);
        assert!(outcome.rounds_run >= solved.round);
    }

    #[test]
    fn converges_optimal_colony_all_final() {
        let mut sim = Simulation::new(env(32, 3, 3), colony::optimal(32)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::all_final(), 2_000)
            .unwrap();
        let solved = outcome.solved.expect("optimal colony finalizes");
        assert!(solved.good);
    }

    #[test]
    fn crashed_ants_are_skipped() {
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 16;
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(n, 0.25, 1, CrashStyle::InPlace, 9),
            delay: DelayPlan::never(),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 4), colony::simple(n, 4), Some(perturbations))
                .unwrap();
        for _ in 0..10 {
            sim.step().unwrap();
        }
        // 4 crashed ants × 10 rounds.
        assert_eq!(sim.replaced_actions(), 40);
    }

    #[test]
    fn delays_replace_probabilistically() {
        let n = 50;
        let perturbations = Perturbations {
            crash: CrashPlan::none(n),
            delay: DelayPlan::new(0.5, 7),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 5), colony::simple(n, 5), Some(perturbations))
                .unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let replaced = sim.replaced_actions();
        assert!(
            (300..700).contains(&replaced),
            "≈50% of 1000 actions should be delayed, got {replaced}"
        );
    }

    #[test]
    fn illegal_agents_are_sandboxed() {
        struct Outlaw;
        impl Agent for Outlaw {
            fn choose(&mut self, _round: u64) -> hh_model::Action {
                // Never legal: nest 99 does not exist.
                hh_model::Action::Go(NestId::candidate(99))
            }
            fn observe(&mut self, _round: u64, _outcome: &hh_model::Outcome) {
                panic!("an outlaw's action never executes, so it never observes");
            }
            fn committed_nest(&self) -> Option<NestId> {
                None
            }
            fn label(&self) -> &'static str {
                "outlaw"
            }
        }
        let mut agents = colony::simple(4, 6);
        agents.replace(3, AnyAgent::custom(Outlaw));
        let mut sim = Simulation::new(env(4, 2, 6), agents).unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.illegal_actions(), 5);
        // The honest ants were unaffected.
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn perturbations_none_is_none() {
        assert!(Perturbations::none(5).is_none());
        let p = Perturbations {
            crash: CrashPlan::none(5),
            delay: DelayPlan::new(0.1, 0),
        };
        assert!(!p.is_none());
    }

    #[test]
    fn role_census_counts() {
        let sim = Simulation::new(env(6, 2, 7), colony::simple(6, 7)).unwrap();
        let census = sim.role_census();
        assert_eq!(census.searching, 6);
        assert_eq!(census.total(), 6);
    }

    #[test]
    fn live_tally_tracks_commitments() {
        let mut sim = Simulation::new(env(12, 2, 8), colony::simple(12, 8)).unwrap();
        assert_eq!(sim.live_tally().total(), 12);
        assert_eq!(sim.live_tally().consensus(), None);
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("converges");
        // At detection, the incremental tally agrees with a fresh scan.
        assert_eq!(sim.live_tally().consensus(), Some(solved.nest));
        assert_eq!(
            hh_core::problem::honest_consensus(sim.agents()),
            Some(solved.nest)
        );
    }

    #[test]
    fn crashed_agents_leave_the_live_tally() {
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 16;
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(n, 0.25, 3, CrashStyle::InPlace, 1),
            delay: DelayPlan::never(),
        };
        let mut sim = Simulation::with_perturbations(
            env(n, 2, 12),
            colony::simple(n, 12),
            Some(perturbations),
        )
        .unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.live_tally().total(), 12, "4 of 16 ants crashed");
        let live_honest = (0..n).filter(|&idx| sim.is_live_honest(idx)).count();
        assert_eq!(live_honest, 12);
    }

    #[test]
    fn round_threads_are_bit_identical_to_serial() {
        // Odd colony size so chunk boundaries are uneven; run the whole
        // convergence loop and compare everything observable.
        let n = 257;
        let run = |threads: usize| {
            let mut sim = Simulation::new(env(n, 3, 21), colony::simple(n, 21))
                .unwrap()
                .with_round_threads(threads);
            let outcome = sim
                .run_to_convergence(ConvergenceRule::commitment(), 20_000)
                .unwrap();
            let counts = sim.env().counts().to_vec();
            let locations = sim.env().locations().to_vec();
            let census = sim.role_census();
            (outcome, counts, locations, census)
        };
        let serial = run(1);
        for threads in [2usize, 3, 5, 8, 16] {
            assert_eq!(serial, run(threads), "{threads} round threads diverged");
        }
    }

    #[test]
    fn round_threads_match_stepwise_reports() {
        let n = 64;
        let mut serial = Simulation::new(env(n, 2, 33), colony::simple(n, 33)).unwrap();
        let mut parallel = Simulation::new(env(n, 2, 33), colony::simple(n, 33))
            .unwrap()
            .with_round_threads(4);
        for _ in 0..50 {
            assert_eq!(serial.step().unwrap(), parallel.step().unwrap());
        }
        assert_eq!(serial.illegal_actions(), parallel.illegal_actions());
    }

    #[test]
    fn round_threads_clamp() {
        let sim = Simulation::new(env(8, 2, 1), colony::simple(8, 1))
            .unwrap()
            .with_round_threads(0);
        assert_eq!(sim.round_threads(), 1);
        let sim = Simulation::new(env(8, 2, 1), colony::simple(8, 1))
            .unwrap()
            .with_round_threads(10_000);
        assert_eq!(sim.round_threads(), 16);
    }

    #[test]
    fn more_threads_than_ants_still_agree() {
        let n = 5;
        let run = |threads: usize| {
            let mut sim = Simulation::new(env(n, 2, 9), colony::simple(n, 9))
                .unwrap()
                .with_round_threads(threads);
            sim.run_to_convergence(ConvergenceRule::commitment(), 5_000)
                .unwrap()
        };
        assert_eq!(run(1), run(16));
    }

    #[test]
    fn run_observed_sees_every_round() {
        let mut sim = Simulation::new(env(16, 2, 8), colony::simple(16, 8)).unwrap();
        let mut observed = 0u64;
        let outcome = sim
            .run_observed(ConvergenceRule::commitment(), 2_000, |_, _| observed += 1)
            .unwrap();
        assert_eq!(observed, outcome.rounds_run);
    }

    #[test]
    fn run_observed_matches_run_to_convergence() {
        // The instrumented and convergence paths are one delivering code
        // path; materializing the report for the observer must not change
        // the execution. Check unperturbed, perturbed, and parallel.
        use hh_model::faults::{CrashPlan, CrashStyle};
        let build = |threads: usize, perturbed: bool| {
            let n = 48;
            let perturbations = perturbed.then(|| Perturbations {
                crash: CrashPlan::fraction(n, 0.2, 4, CrashStyle::InPlace, 3),
                delay: DelayPlan::new(0.05, 3),
            });
            Simulation::with_perturbations(env(n, 3, 27), colony::simple(n, 27), perturbations)
                .unwrap()
                .with_round_threads(threads)
        };
        for (threads, perturbed) in [(1, false), (4, false), (1, true)] {
            let rule = ConvergenceRule::stable_commitment(4);
            let quiet = build(threads, perturbed)
                .run_to_convergence(rule, 10_000)
                .unwrap();
            let mut rounds_with_outcomes = 0u64;
            let observed = build(threads, perturbed)
                .run_observed(rule, 10_000, |sim, report| {
                    assert_eq!(report.outcomes.len(), sim.env().n());
                    rounds_with_outcomes += 1;
                })
                .unwrap();
            assert_eq!(
                quiet, observed,
                "threads={threads} perturbed={perturbed}: instrumented run diverged"
            );
            assert_eq!(rounds_with_outcomes, observed.rounds_run);
        }
    }

    #[test]
    fn builder_order_never_drops_threads() {
        // The pool gate depends on three builder-set fields; every call
        // order must land on the same configuration, worker pool
        // included. Before `rebuild_pool` centralized the gate, a
        // `with_engine(Scalar)` → `with_engine(Soa)` round trip came
        // back with `round_threads` remembered but no pool.
        let pool_workers = |sim: &Simulation| sim.pool.as_ref().map_or(0, |pool| pool.workers());
        let fresh = || Simulation::new(env(32, 2, 40), colony::simple(32, 40)).unwrap();

        let direct = fresh().with_round_threads(8);
        assert_eq!(direct.round_threads(), 8);
        assert_eq!(pool_workers(&direct), 7, "8 threads = main + 7 workers");

        let round_trip = fresh()
            .with_round_threads(8)
            .with_engine(EngineKind::Scalar)
            .with_engine(EngineKind::Soa);
        assert_eq!(round_trip.round_threads(), 8);
        assert_eq!(
            pool_workers(&round_trip),
            7,
            "engine round trip dropped the pool"
        );

        let threads_last = fresh()
            .with_engine(EngineKind::Scalar)
            .with_engine(EngineKind::Soa)
            .with_round_threads(8);
        assert_eq!(pool_workers(&threads_last), 7);

        let bounds_between = fresh()
            .with_round_threads(8)
            .with_engine(EngineKind::Scalar)
            .with_chunk_bounds(vec![0, 3, 32])
            .with_engine(EngineKind::Soa);
        assert_eq!(
            pool_workers(&bounds_between),
            1,
            "2 chunks = main + 1 worker"
        );

        // The scalar engine never holds a pool, whatever the order.
        let scalar = fresh()
            .with_round_threads(8)
            .with_engine(EngineKind::Scalar);
        assert_eq!(pool_workers(&scalar), 0);
        assert_eq!(
            scalar.round_threads(),
            8,
            "the setting itself is remembered"
        );
    }

    #[test]
    fn mid_run_engine_switch_matches_pure_scalar() {
        // The SoA fast path leaves the colony pre-chosen for the next
        // round (fused `choose(round + 1)`). A mid-run switch to the
        // scalar engine must consume those buffered actions instead of
        // calling `choose` again — the Agent contract allows one call
        // per round, and a stateful implementation would diverge on a
        // second one. (The built-in urn choose became repeat-safe with
        // the keyed-draw migration; this test pins the consume-buffer
        // path itself so the contract stays honored for agents that
        // are not.)
        // Switch after an odd number of rounds so the buffered choices
        // are for an even (recruitment) round: that is where urn ants
        // draw their recruit coin in `choose`.
        let n = 64;
        let mut switched = Simulation::new(env(n, 3, 52), colony::simple(n, 52)).unwrap();
        let mut scalar = Simulation::new(env(n, 3, 52), colony::simple(n, 52))
            .unwrap()
            .with_engine(EngineKind::Scalar);
        for _ in 0..9 {
            switched.step().unwrap();
            scalar.step().unwrap();
        }
        switched = switched.with_engine(EngineKind::Scalar);
        for round in 9..30 {
            assert_eq!(
                switched.step().unwrap(),
                scalar.step().unwrap(),
                "diverged at round {round} after the engine switch"
            );
        }
        assert_eq!(switched.role_census(), scalar.role_census());
        // And back: the scalar path leaves no pre-chosen actions, so the
        // fast path re-primes with a dedicated choose pass.
        switched.step().unwrap();
        scalar.step().unwrap();
        switched = switched.with_engine(EngineKind::Soa);
        let mut soa_oracle = Simulation::new(env(n, 3, 52), colony::simple(n, 52)).unwrap();
        for _ in 0..31 {
            soa_oracle.step().unwrap();
        }
        for round in 31..41 {
            assert_eq!(
                switched.step().unwrap(),
                soa_oracle.step().unwrap(),
                "diverged at round {round} after switching back to SoA"
            );
        }
    }

    #[test]
    fn perturbed_round_threads_is_bit_identical_to_serial() {
        // Perturbed simulations ignore `round_threads` at execution
        // time: every round runs on the serial scalar path, so the
        // setting must be observably inert (the documented contract on
        // `with_round_threads` and `Scenario::round_threads`).
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 96;
        let build = |threads: usize| {
            let perturbations = Perturbations {
                crash: CrashPlan::fraction(n, 0.2, 5, CrashStyle::InPlace, 13),
                delay: DelayPlan::new(0.1, 13),
            };
            Simulation::with_perturbations(
                env(n, 3, 61),
                colony::simple(n, 61),
                Some(perturbations),
            )
            .unwrap()
            .with_round_threads(threads)
        };
        let mut serial = build(1);
        let mut threaded = build(8);
        assert!(threaded.pool.is_none(), "perturbed runs never spawn a pool");
        for round in 0..40 {
            assert_eq!(
                serial.step().unwrap(),
                threaded.step().unwrap(),
                "perturbed round {round} diverged under round_threads=8"
            );
        }
        let rule = ConvergenceRule::stable_commitment(4);
        assert_eq!(
            serial.run_to_convergence(rule, 5_000).unwrap(),
            threaded.run_to_convergence(rule, 5_000).unwrap()
        );
    }

    #[test]
    fn agent_columns_engage_exactly_for_uniform_unperturbed_soa() {
        // Uniform SimpleAnt colony, default (SoA) engine: batched.
        let sim = Simulation::new(env(32, 2, 70), colony::simple(32, 70)).unwrap();
        assert!(sim.uses_agent_columns());
        // Scalar oracle: never batched.
        assert!(!sim.with_engine(EngineKind::Scalar).uses_agent_columns());
        // Uniform optimal colony: dense rows, batched.
        let sim = Simulation::new(env(32, 3, 70), colony::optimal(32)).unwrap();
        assert!(sim.uses_agent_columns());
        // Heterogeneous colony (two algorithms): never batched.
        let mut mixed = colony::simple(32, 70);
        mixed.replace(0, hh_core::OptimalAnt::new());
        let sim = Simulation::new(env(32, 2, 70), mixed).unwrap();
        assert!(!sim.uses_agent_columns());
        // Perturbed runs stay on the per-round engine.
        use hh_model::faults::{CrashPlan, CrashStyle};
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(32, 0.1, 2, CrashStyle::InPlace, 70),
            delay: DelayPlan::never(),
        };
        let sim = Simulation::with_perturbations(
            env(32, 2, 70),
            colony::simple(32, 70),
            Some(perturbations),
        )
        .unwrap();
        assert!(!sim.uses_agent_columns());
    }

    #[test]
    fn table_runs_interleave_with_stepping_bit_identically() {
        // Crossing the gather/scatter boundary repeatedly — convergence
        // runs (table path) interleaved with single steps (agent-vector
        // path) — must match an uninterrupted scalar-engine twin: the
        // scatter restores agent state *and* draw keys exactly.
        let n = 128;
        let rule = ConvergenceRule::stable_commitment(2);
        let mut table = Simulation::new(env(n, 3, 83), colony::simple(n, 83)).unwrap();
        let mut oracle = Simulation::new(env(n, 3, 83), colony::simple(n, 83))
            .unwrap()
            .with_engine(EngineKind::Scalar);
        assert!(table.uses_agent_columns());
        for _ in 0..4 {
            let a = table.run_to_convergence(rule, 25).unwrap();
            let b = oracle.run_to_convergence(rule, 25).unwrap();
            assert_eq!(a, b);
            assert_eq!(table.step().unwrap(), oracle.step().unwrap());
        }
        assert_eq!(table.role_census(), oracle.role_census());
        assert_eq!(table.env().counts(), oracle.env().counts());
        assert_eq!(table.env().locations(), oracle.env().locations());
    }
}
