//! The synchronous executor: drives a colony of agents against an
//! environment, applying fault and asynchrony perturbations.
//!
//! [`Simulation`] owns an [`Environment`] plus a [`Colony`] (one agent
//! per ant) and advances them in lockstep rounds:
//!
//! 1. every live, undelayed agent chooses its action for the round;
//! 2. crashed and delayed ants get a location-preserving no-op instead
//!    (and, being skipped, never observe the round — the paper's
//!    synchrony-fragility experiments rest on exactly this);
//! 3. illegal actions (a Byzantine agent probing, or an agent bug) are
//!    sandboxed: replaced by a no-op and counted, never aborting the run;
//! 4. the environment resolves the round; every agent whose own action
//!    ran receives its outcome.
//!
//! ## Engine invariants (the data-oriented hot path)
//!
//! * **Zero allocation at steady state.** The per-round action buffer,
//!   the chose/ran bitmasks, and the environment's [`StepReport`] live in
//!   a persistent [`RoundScratch`]; the environment's own pairing scratch
//!   is reused the same way ([`Environment::step_into`]). After the first
//!   round, stepping allocates nothing.
//! * **Static dispatch.** Agents are [`AnyAgent`](hh_core::AnyAgent)
//!   variants in one contiguous vector; only the `Custom` escape hatch
//!   pays a vtable call.
//! * **Incremental census.** The colony's [`RoleCensus`] and the
//!   executor's live-honest commitment tally are maintained per stepped
//!   agent ([`Colony::refresh`]), never by rescanning the colony, so the
//!   convergence [`Detector`](crate::Detector) reads O(k) state instead
//!   of touching all n agents every round.

use hh_core::colony::AgentSnapshot;
use hh_core::{AnyAgent, Colony};
use hh_model::faults::{noop_action, CrashPlan, CrashStyle, DelayPlan};
use hh_model::{Action, AntId, Environment, NestId, StepReport};

use crate::convergence::{ConvergenceRule, Detector, Solved};
use crate::error::SimError;

pub use hh_core::RoleCensus;

/// The fault/asynchrony plans applied to one execution (Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbations {
    /// Permanent crash-stop schedule.
    pub crash: CrashPlan,
    /// Per-(ant, round) delay plan (partial asynchrony).
    pub delay: DelayPlan,
}

impl Perturbations {
    /// No perturbations, for a colony of `n` ants — the baseline model.
    #[must_use]
    pub fn none(n: usize) -> Self {
        Self {
            crash: CrashPlan::none(n),
            delay: DelayPlan::never(),
        }
    }

    /// Returns `true` if neither plan perturbs anything.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.crash.is_empty() && self.delay.probability() == 0.0
    }
}

/// Outcome of a bounded run (see [`Simulation::run_to_convergence`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The detected convergence, if any.
    pub solved: Option<Solved>,
    /// Rounds actually executed.
    pub rounds_run: u64,
    /// Actions replaced by crash/delay no-ops.
    pub replaced_actions: u64,
    /// Illegal agent actions sandboxed into no-ops.
    pub illegal_actions: u64,
}

/// Persistent per-round buffers, reused so stepping never allocates at
/// steady state.
#[derive(Debug, Default)]
struct RoundScratch {
    /// One action per ant for the round being assembled.
    actions: Vec<Action>,
    /// The fast path's pre-chosen actions for the *next* round (see
    /// `step_round`).
    next_actions: Vec<Action>,
    /// `chose[a]`: agent `a`'s `choose` ran this round (its state may
    /// have changed, so its snapshot needs a refresh).
    chose: Vec<bool>,
    /// `ran[a]`: agent `a`'s own action executed, so it observes.
    ran: Vec<bool>,
    /// The environment's report, refilled in place each round.
    report: StepReport,
}

/// Commitment/finality tallies over the *live honest* colony, maintained
/// incrementally by the executor and read by the convergence
/// [`Detector`](crate::Detector) — the census-fed replacement for the old
/// per-round colony rescan.
///
/// Crashed ants leave the tally at their crash round (their state
/// machines are frozen); dishonest agents never enter it.
#[derive(Debug, Clone, Default)]
pub(crate) struct LiveTally {
    /// Live honest agents.
    total: usize,
    /// Of those, agents with no committed nest.
    uncommitted: usize,
    /// Of those, agents reporting the final/settled state.
    finals: usize,
    /// Commitments per raw nest id (grown on demand).
    commits: Vec<usize>,
    /// Nests with a nonzero commitment count.
    distinct: usize,
}

impl LiveTally {
    fn add(&mut self, snapshot: &AgentSnapshot) {
        self.total += 1;
        self.finals += usize::from(snapshot.is_final);
        match snapshot.committed {
            None => self.uncommitted += 1,
            Some(nest) => self.commit(nest, true),
        }
    }

    fn remove(&mut self, snapshot: &AgentSnapshot) {
        self.total -= 1;
        self.finals -= usize::from(snapshot.is_final);
        match snapshot.committed {
            None => self.uncommitted -= 1,
            Some(nest) => self.commit(nest, false),
        }
    }

    /// Folds one agent's snapshot transition into the tally. Honesty may
    /// legitimately vary for `Custom` agents, so only states that were
    /// (are) honest leave (enter) the tally.
    #[inline]
    fn apply(&mut self, old: &AgentSnapshot, new: &AgentSnapshot) {
        if old == new {
            return;
        }
        if old.honest {
            self.remove(old);
        }
        if new.honest {
            self.add(new);
        }
    }

    fn commit(&mut self, nest: NestId, add: bool) {
        let raw = nest.raw();
        if raw >= self.commits.len() {
            self.commits.resize(raw + 1, 0);
        }
        if add {
            self.commits[raw] += 1;
            if self.commits[raw] == 1 {
                self.distinct += 1;
            }
        } else {
            self.commits[raw] -= 1;
            if self.commits[raw] == 0 {
                self.distinct -= 1;
            }
        }
    }

    /// Live honest agents currently tallied.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// The nest every live honest agent is committed to, if they all
    /// agree; `None` when the tally is empty, anyone is uncommitted, or
    /// two agents disagree.
    pub(crate) fn consensus(&self) -> Option<NestId> {
        if self.total == 0 || self.uncommitted > 0 || self.distinct != 1 {
            return None;
        }
        self.commits
            .iter()
            .position(|&count| count > 0)
            .map(NestId::from_raw)
    }

    /// `true` if every live honest agent reports the final state.
    pub(crate) fn all_final(&self) -> bool {
        self.finals == self.total
    }

    /// The nest satisfying `good` that holds at least `fraction` of the
    /// live honest colony's commitments, if any; the highest count wins,
    /// lowest nest id breaking ties.
    pub(crate) fn quorum(&self, fraction: f64, good: impl Fn(NestId) -> bool) -> Option<NestId> {
        if self.total == 0 {
            return None;
        }
        let needed = ((fraction * self.total as f64).ceil() as usize).max(1);
        let mut best: Option<(usize, NestId)> = None;
        for (raw, &count) in self.commits.iter().enumerate() {
            if count >= needed && best.is_none_or(|(c, _)| count > c) {
                let nest = NestId::from_raw(raw);
                if good(nest) {
                    best = Some((count, nest));
                }
            }
        }
        best.map(|(_, nest)| nest)
    }
}

/// One synchronous execution: environment + colony + perturbations.
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{ConvergenceRule, Simulation};
/// use hh_model::{ColonyConfig, Environment, QualitySpec};
///
/// let n = 24;
/// let config = ColonyConfig::new(n, QualitySpec::good_prefix(3, 1)).seed(5);
/// let env = Environment::new(&config)?;
/// let mut sim = Simulation::new(env, colony::simple(n, 5))?;
/// let outcome = sim.run_to_convergence(ConvergenceRule::commitment(), 10_000)?;
/// assert!(outcome.solved.is_some());
/// # Ok::<(), hh_sim::SimError>(())
/// ```
pub struct Simulation {
    env: Environment,
    colony: Colony,
    perturbations: Perturbations,
    replaced_actions: u64,
    illegal_actions: u64,
    /// `crashed[a]`: the executor has already seen ant `a` crashed (and
    /// removed it from the live tally).
    crashed: Vec<bool>,
    /// `true` when both perturbation plans are empty — enables the fast
    /// step path with no per-ant fault checks.
    unperturbed: bool,
    /// Fast path: `scratch.next_actions` holds the upcoming round's
    /// pre-chosen actions.
    prechosen: bool,
    live: LiveTally,
    scratch: RoundScratch,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("round", &self.env.round())
            .field("n", &self.env.n())
            .field("k", &self.env.k())
            .field("perturbations", &self.perturbations)
            .field("replaced_actions", &self.replaced_actions)
            .field("illegal_actions", &self.illegal_actions)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates an unperturbed simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if the colony's size
    /// differs from the environment's.
    pub fn new(env: Environment, agents: impl Into<Colony>) -> Result<Self, SimError> {
        Self::with_perturbations(env, agents, None)
    }

    /// Creates a simulation with explicit perturbation plans (`None` for
    /// the unperturbed baseline).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::AgentCountMismatch`] if the colony's size
    /// differs from the environment's.
    pub fn with_perturbations(
        env: Environment,
        agents: impl Into<Colony>,
        perturbations: Option<Perturbations>,
    ) -> Result<Self, SimError> {
        let mut colony = agents.into();
        colony.sync();
        if colony.len() != env.n() {
            return Err(SimError::AgentCountMismatch {
                agents: colony.len(),
                n: env.n(),
            });
        }
        let n = env.n();
        let mut live = LiveTally::default();
        for snapshot in colony.snapshots() {
            if snapshot.honest {
                live.add(snapshot);
            }
        }
        let perturbations = perturbations.unwrap_or_else(|| Perturbations::none(n));
        let unperturbed = perturbations.is_none();
        Ok(Self {
            env,
            colony,
            perturbations,
            replaced_actions: 0,
            illegal_actions: 0,
            crashed: vec![false; n],
            unperturbed,
            prechosen: false,
            live,
            scratch: RoundScratch::default(),
        })
    }

    /// The environment (read-only).
    #[must_use]
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The colony (read-only).
    #[must_use]
    pub fn agents(&self) -> &[AnyAgent] {
        &self.colony
    }

    /// The colony with its cached census (read-only).
    #[must_use]
    pub fn colony(&self) -> &Colony {
        &self.colony
    }

    /// Completed rounds.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.env.round()
    }

    /// Actions replaced by crash/delay no-ops so far.
    #[must_use]
    pub fn replaced_actions(&self) -> u64 {
        self.replaced_actions
    }

    /// Illegal agent actions sandboxed so far.
    #[must_use]
    pub fn illegal_actions(&self) -> u64 {
        self.illegal_actions
    }

    /// Executes one synchronous round into the persistent scratch.
    ///
    /// With `materialize` set, the report (including the per-ant outcome
    /// vector) is readable as `self.scratch.report` afterwards; without
    /// it, the fast path hands each outcome straight to its agent and
    /// `report.outcomes` stays empty — the convergence loop needs no
    /// colony-sized outcome buffer.
    fn step_round(&mut self, materialize: bool) -> Result<(), SimError> {
        let round = self.env.round() + 1;
        let n = self.env.n();
        let scratch = &mut self.scratch;
        scratch.actions.clear();
        scratch.ran.clear();
        scratch.ran.resize(n, true);

        if self.unperturbed {
            // Fast path: no crash/delay plans to consult per ant, and
            // every agent chooses every round, so the `chose` mask is a
            // constant `true` and is not materialized.
            //
            // The engine is memory-bound at scale — the dominant cost of
            // a round is streaming the agent array — so the fast path
            // makes exactly ONE pass over the agents per round: round
            // r's observe is fused with round r+1's choose (agents are
            // independent, and between rounds nothing else touches
            // them), and the pre-chosen actions are stashed in
            // `next_actions` for the next step. Only the first round
            // after construction runs a dedicated choose pass.
            //
            // Legality is still checked at the top of the round the
            // action executes in (identical sandboxing semantics and
            // counters), and the per-ant crash/delay semantics that
            // forbid pre-choosing — a skipped ant must not advance its
            // state machine — cannot occur here by definition.
            if !self.prechosen {
                for idx in 0..n {
                    let action = self.colony.choose(idx, round);
                    scratch.next_actions.push(action);
                }
                self.prechosen = true;
            }
            std::mem::swap(&mut scratch.actions, &mut scratch.next_actions);
            scratch.next_actions.clear();

            for (idx, action) in scratch.actions.iter_mut().enumerate() {
                if self.env.check_action(AntId::new(idx), action).is_err() {
                    scratch.ran[idx] = false;
                    self.illegal_actions += 1;
                    *action = noop_action(&self.env, AntId::new(idx), CrashStyle::InPlace);
                }
            }

            // The single agent pass: observe round `round`, choose round
            // `round + 1`, refresh the (cache-hot) snapshot, and fold
            // census deltas into the live tally — one dispatch per ant
            // (`Colony::observe_choose`). In the eliding mode the
            // environment hands each outcome over by reference as it is
            // computed; in the materializing mode the outcome vector is
            // built first (for `step`'s and `run_observed`'s callers) and
            // consumed from the report.
            if materialize {
                self.env
                    .step_into_prevalidated(&scratch.actions, &mut scratch.report);
                for idx in 0..n {
                    let outcome = scratch.ran[idx].then(|| &scratch.report.outcomes[idx]);
                    let (action, (old, new)) = self.colony.observe_choose(idx, round, outcome);
                    scratch.next_actions.push(action);
                    self.live.apply(&old, &new);
                }
            } else {
                let colony = &mut self.colony;
                let live = &mut self.live;
                let ran = &scratch.ran;
                let next_actions = &mut scratch.next_actions;
                self.env
                    .step_deliver(&scratch.actions, &mut scratch.report, |idx, outcome| {
                        let outcome = ran[idx].then_some(outcome);
                        let (action, (old, new)) = colony.observe_choose(idx, round, outcome);
                        next_actions.push(action);
                        live.apply(&old, &new);
                    });
            }
            return Ok(());
        }

        scratch.ran.fill(false);
        scratch.chose.clear();
        scratch.chose.resize(n, false);
        for idx in 0..n {
            let ant = AntId::new(idx);
            let crashed = self.perturbations.crash.is_crashed(ant, round);
            if crashed && !self.crashed[idx] {
                // First round this ant is gone: freeze it out of the
                // live tally at its last refreshed state.
                self.crashed[idx] = true;
                let snapshot = self.colony.snapshots()[idx];
                if snapshot.honest {
                    self.live.remove(&snapshot);
                }
            }
            let delayed = !crashed && self.perturbations.delay.is_delayed(ant, round);
            if crashed || delayed {
                let style = if crashed {
                    self.perturbations.crash.style()
                } else {
                    CrashStyle::InPlace
                };
                scratch.actions.push(noop_action(&self.env, ant, style));
                self.replaced_actions += 1;
                continue;
            }
            let action = self.colony.choose(idx, round);
            scratch.chose[idx] = true;
            if self.env.check_action(ant, &action).is_ok() {
                scratch.ran[idx] = true;
                scratch.actions.push(action);
            } else {
                self.illegal_actions += 1;
                scratch
                    .actions
                    .push(noop_action(&self.env, ant, CrashStyle::InPlace));
            }
        }

        // Every pushed action was either checked above or is a
        // location-preserving no-op, legal by construction.
        self.env
            .step_into_prevalidated(&scratch.actions, &mut scratch.report);

        // One fused pass: observe, then refresh the same (cache-hot)
        // agent. Refresh covers every agent whose `choose` ran — observe
        // or not, choosing alone can advance a state machine — and folds
        // the deltas into the live tally.
        for idx in 0..n {
            if !scratch.chose[idx] {
                continue;
            }
            if scratch.ran[idx] {
                self.colony
                    .observe(idx, round, &scratch.report.outcomes[idx]);
            }
            let (old, new) = self.colony.refresh(idx);
            debug_assert!(
                old == new || !self.crashed[idx],
                "crashed agents never choose"
            );
            self.live.apply(&old, &new);
        }
        Ok(())
    }

    /// Executes one synchronous round and returns the environment's
    /// report (outcomes + recruitment pairing) for instrumentation.
    ///
    /// This clones the report out of the engine's reusable buffers; hot
    /// loops should prefer [`run_to_convergence`](Self::run_to_convergence)
    /// / [`run_observed`](Self::run_observed), which allocate nothing per
    /// round, or [`step_in_place`](Self::step_in_place).
    ///
    /// # Errors
    ///
    /// Propagates environment errors; these indicate harness bugs, since
    /// agent actions are validated and sandboxed before execution.
    pub fn step(&mut self) -> Result<StepReport, SimError> {
        self.step_round(true)?;
        Ok(self.scratch.report.clone())
    }

    /// Executes one synchronous round and returns the report by
    /// reference — the zero-allocation equivalent of
    /// [`step`](Self::step).
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    pub fn step_in_place(&mut self) -> Result<&StepReport, SimError> {
        self.step_round(true)?;
        Ok(&self.scratch.report)
    }

    /// Runs until `rule` detects convergence or `max_rounds` rounds have
    /// executed (counted from the simulation's current round).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_to_convergence(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
    ) -> Result<RunOutcome, SimError> {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        while self.env.round() - start < max_rounds {
            self.step_round(false)?;
            if let Some(found) = detector.check(self) {
                solved = Some(found);
                break;
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Like [`run_to_convergence`](Self::run_to_convergence), invoking
    /// `on_round` after every executed round (for metrics recording).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::step`] errors.
    pub fn run_observed<F>(
        &mut self,
        rule: ConvergenceRule,
        max_rounds: u64,
        mut on_round: F,
    ) -> Result<RunOutcome, SimError>
    where
        F: FnMut(&Simulation, &StepReport),
    {
        let mut detector = Detector::new(rule);
        let start = self.env.round();
        let mut solved = None;
        while self.env.round() - start < max_rounds {
            self.step_round(true)?;
            let this = &*self;
            on_round(this, &this.scratch.report);
            if let Some(found) = detector.check(self) {
                solved = Some(found);
                break;
            }
        }
        Ok(RunOutcome {
            solved,
            rounds_run: self.env.round() - start,
            replaced_actions: self.replaced_actions,
            illegal_actions: self.illegal_actions,
        })
    }

    /// Returns `true` if `ant` has not crashed as of the current round.
    /// Delayed ants are still live; crashes are permanent.
    ///
    /// # Panics
    ///
    /// Panics if `ant` is out of range.
    #[must_use]
    pub fn is_live(&self, ant: AntId) -> bool {
        !self.perturbations.crash.is_crashed(ant, self.env.round())
    }

    /// Census of honest-agent roles, used by metrics and detectors.
    /// O(1): maintained incrementally by the engine.
    #[must_use]
    pub fn role_census(&self) -> RoleCensus {
        self.colony.census()
    }

    /// The live-honest tally the convergence detector reads.
    pub(crate) fn live_tally(&self) -> &LiveTally {
        &self.live
    }

    /// `true` if ant `idx` is honest and not yet crashed — the detector's
    /// membership predicate, answered from cached state.
    pub(crate) fn is_live_honest(&self, idx: usize) -> bool {
        !self.crashed[idx] && self.colony.snapshots()[idx].honest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::{colony, Agent};
    use hh_model::{ColonyConfig, NestId, QualitySpec};

    fn env(n: usize, k: usize, seed: u64) -> Environment {
        Environment::new(&ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed)).unwrap()
    }

    #[test]
    fn rejects_mismatched_colony() {
        let err = Simulation::new(env(5, 2, 0), colony::simple(3, 0)).unwrap_err();
        assert_eq!(err, SimError::AgentCountMismatch { agents: 3, n: 5 });
    }

    #[test]
    fn steps_advance_rounds() {
        let mut sim = Simulation::new(env(8, 2, 1), colony::simple(8, 1)).unwrap();
        assert_eq!(sim.round(), 0);
        sim.step().unwrap();
        assert_eq!(sim.round(), 1);
        assert_eq!(sim.replaced_actions(), 0);
        assert_eq!(sim.illegal_actions(), 0);
    }

    #[test]
    fn step_in_place_matches_step() {
        let mut a = Simulation::new(env(16, 2, 11), colony::simple(16, 11)).unwrap();
        let mut b = Simulation::new(env(16, 2, 11), colony::simple(16, 11)).unwrap();
        for _ in 0..20 {
            let cloned = a.step().unwrap();
            let borrowed = b.step_in_place().unwrap();
            assert_eq!(&cloned, borrowed);
        }
    }

    #[test]
    fn converges_simple_colony() {
        let mut sim = Simulation::new(env(32, 2, 2), colony::simple(32, 2)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("simple colony converges");
        assert!(solved.good);
        assert!(solved.round >= 1);
        assert!(outcome.rounds_run >= solved.round);
    }

    #[test]
    fn converges_optimal_colony_all_final() {
        let mut sim = Simulation::new(env(32, 3, 3), colony::optimal(32)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::all_final(), 2_000)
            .unwrap();
        let solved = outcome.solved.expect("optimal colony finalizes");
        assert!(solved.good);
    }

    #[test]
    fn crashed_ants_are_skipped() {
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 16;
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(n, 0.25, 1, CrashStyle::InPlace, 9),
            delay: DelayPlan::never(),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 4), colony::simple(n, 4), Some(perturbations))
                .unwrap();
        for _ in 0..10 {
            sim.step().unwrap();
        }
        // 4 crashed ants × 10 rounds.
        assert_eq!(sim.replaced_actions(), 40);
    }

    #[test]
    fn delays_replace_probabilistically() {
        let n = 50;
        let perturbations = Perturbations {
            crash: CrashPlan::none(n),
            delay: DelayPlan::new(0.5, 7),
        };
        let mut sim =
            Simulation::with_perturbations(env(n, 2, 5), colony::simple(n, 5), Some(perturbations))
                .unwrap();
        for _ in 0..20 {
            sim.step().unwrap();
        }
        let replaced = sim.replaced_actions();
        assert!(
            (300..700).contains(&replaced),
            "≈50% of 1000 actions should be delayed, got {replaced}"
        );
    }

    #[test]
    fn illegal_agents_are_sandboxed() {
        struct Outlaw;
        impl Agent for Outlaw {
            fn choose(&mut self, _round: u64) -> hh_model::Action {
                // Never legal: nest 99 does not exist.
                hh_model::Action::Go(NestId::candidate(99))
            }
            fn observe(&mut self, _round: u64, _outcome: &hh_model::Outcome) {
                panic!("an outlaw's action never executes, so it never observes");
            }
            fn committed_nest(&self) -> Option<NestId> {
                None
            }
            fn label(&self) -> &'static str {
                "outlaw"
            }
        }
        let mut agents = colony::simple(4, 6);
        agents.replace(3, AnyAgent::custom(Outlaw));
        let mut sim = Simulation::new(env(4, 2, 6), agents).unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.illegal_actions(), 5);
        // The honest ants were unaffected.
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn perturbations_none_is_none() {
        assert!(Perturbations::none(5).is_none());
        let p = Perturbations {
            crash: CrashPlan::none(5),
            delay: DelayPlan::new(0.1, 0),
        };
        assert!(!p.is_none());
    }

    #[test]
    fn role_census_counts() {
        let sim = Simulation::new(env(6, 2, 7), colony::simple(6, 7)).unwrap();
        let census = sim.role_census();
        assert_eq!(census.searching, 6);
        assert_eq!(census.total(), 6);
    }

    #[test]
    fn live_tally_tracks_commitments() {
        let mut sim = Simulation::new(env(12, 2, 8), colony::simple(12, 8)).unwrap();
        assert_eq!(sim.live_tally().total(), 12);
        assert_eq!(sim.live_tally().consensus(), None);
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 5_000)
            .unwrap();
        let solved = outcome.solved.expect("converges");
        // At detection, the incremental tally agrees with a fresh scan.
        assert_eq!(sim.live_tally().consensus(), Some(solved.nest));
        assert_eq!(
            hh_core::problem::honest_consensus(sim.agents()),
            Some(solved.nest)
        );
    }

    #[test]
    fn crashed_agents_leave_the_live_tally() {
        use hh_model::faults::{CrashPlan, CrashStyle};
        let n = 16;
        let perturbations = Perturbations {
            crash: CrashPlan::fraction(n, 0.25, 3, CrashStyle::InPlace, 1),
            delay: DelayPlan::never(),
        };
        let mut sim = Simulation::with_perturbations(
            env(n, 2, 12),
            colony::simple(n, 12),
            Some(perturbations),
        )
        .unwrap();
        for _ in 0..5 {
            sim.step().unwrap();
        }
        assert_eq!(sim.live_tally().total(), 12, "4 of 16 ants crashed");
        let live_honest = (0..n).filter(|&idx| sim.is_live_honest(idx)).count();
        assert_eq!(live_honest, 12);
    }

    #[test]
    fn run_observed_sees_every_round() {
        let mut sim = Simulation::new(env(16, 2, 8), colony::simple(16, 8)).unwrap();
        let mut observed = 0u64;
        let outcome = sim
            .run_observed(ConvergenceRule::commitment(), 2_000, |_, _| observed += 1)
            .unwrap();
        assert_eq!(observed, outcome.rounds_run);
    }
}
