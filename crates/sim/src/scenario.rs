//! Scenario specification: one-stop construction of perturbed
//! simulations.
//!
//! [`ScenarioSpec`] bundles an environment configuration with fault and
//! asynchrony plans and builds ready-to-run [`Simulation`]s. Experiments
//! describe *what* to run with a spec, then stamp out per-trial instances
//! by varying the seed.

use hh_core::Colony;
use hh_model::{ColonyConfig, Environment, NoiseModel, QualitySpec};

use crate::error::SimError;
use crate::executor::{Perturbations, Simulation};

/// A declarative description of one experimental setup.
///
/// # Examples
///
/// ```
/// use hh_core::colony;
/// use hh_sim::{ConvergenceRule, ScenarioSpec};
/// use hh_model::QualitySpec;
///
/// let spec = ScenarioSpec::new(32, QualitySpec::good_prefix(4, 2)).seed(11);
/// let mut sim = spec.build_simulation(colony::optimal(32))?;
/// let outcome = sim.run_to_convergence(ConvergenceRule::all_final(), 2_000)?;
/// assert!(outcome.solved.is_some());
/// # Ok::<(), hh_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    config: ColonyConfig,
    perturbations: Option<Perturbations>,
}

impl ScenarioSpec {
    /// A scenario for `n` ants and the given nest qualities, unperturbed,
    /// exact observations, seed 0.
    #[must_use]
    pub fn new(n: usize, qualities: QualitySpec) -> Self {
        Self {
            config: ColonyConfig::new(n, qualities),
            perturbations: None,
        }
    }

    /// Wraps an existing environment configuration.
    #[must_use]
    pub fn from_config(config: ColonyConfig) -> Self {
        Self {
            config,
            perturbations: None,
        }
    }

    /// Sets the base seed (environment, noise, and perturbation streams
    /// all derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Sets the observation-noise model.
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.config = self.config.noise(noise);
        self
    }

    /// Enables the "assessing go" extension (quality revealed on `go`).
    #[must_use]
    pub fn reveal_quality_on_go(mut self) -> Self {
        self.config = self.config.reveal_quality_on_go();
        self
    }

    /// Installs fault/asynchrony plans.
    #[must_use]
    pub fn perturbations(mut self, perturbations: Perturbations) -> Self {
        self.perturbations = Some(perturbations);
        self
    }

    /// The underlying environment configuration.
    #[must_use]
    pub fn config(&self) -> &ColonyConfig {
        &self.config
    }

    /// Builds the environment alone.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn build_environment(&self) -> Result<Environment, SimError> {
        Ok(Environment::new(&self.config)?)
    }

    /// Builds a simulation over a freshly constructed environment.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures and agent-count
    /// mismatches.
    pub fn build_simulation(&self, agents: impl Into<Colony>) -> Result<Simulation, SimError> {
        let env = self.build_environment()?;
        Simulation::with_perturbations(env, agents, self.perturbations.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ConvergenceRule;
    use hh_core::colony;
    use hh_model::faults::{CrashPlan, CrashStyle, DelayPlan};
    use hh_model::ModelError;

    #[test]
    fn builds_and_runs() {
        let spec = ScenarioSpec::new(16, QualitySpec::all_good(2)).seed(1);
        let mut sim = spec.build_simulation(colony::simple(16, 1)).unwrap();
        let outcome = sim
            .run_to_convergence(ConvergenceRule::commitment(), 3_000)
            .unwrap();
        assert!(outcome.solved.is_some());
    }

    #[test]
    fn invalid_configs_error() {
        let spec = ScenarioSpec::new(0, QualitySpec::all_good(2));
        assert_eq!(
            spec.build_environment().unwrap_err(),
            SimError::Model(ModelError::EmptyColony)
        );
    }

    #[test]
    fn perturbations_are_installed() {
        let n = 16;
        let spec = ScenarioSpec::new(n, QualitySpec::all_good(2))
            .seed(2)
            .perturbations(Perturbations {
                crash: CrashPlan::fraction(n, 0.5, 1, CrashStyle::InPlace, 2),
                delay: DelayPlan::never(),
            });
        let mut sim = spec.build_simulation(colony::simple(n, 2)).unwrap();
        for _ in 0..4 {
            sim.step().unwrap();
        }
        assert_eq!(sim.replaced_actions(), 32, "8 crashed ants × 4 rounds");
    }

    #[test]
    fn spec_is_reusable_across_trials() {
        let spec = ScenarioSpec::new(8, QualitySpec::all_good(1)).seed(3);
        let a = spec.build_simulation(colony::simple(8, 3)).unwrap();
        let b = spec.build_simulation(colony::simple(8, 3)).unwrap();
        assert_eq!(a.round(), b.round());
        assert_eq!(spec.config().n(), 8);
    }
}
