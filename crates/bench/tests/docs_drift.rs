//! Doc-drift guard for `EXPERIMENTS.md`: the experiment-registry index
//! embedded in the checked-in file must equal the one regenerated from
//! `hh_bench::all_experiments()`, and every registered experiment id
//! must be documented. A new or renamed experiment therefore fails CI
//! until the document is regenerated
//! (`cargo run --release -p hh-bench --bin experiments -- --index`).

use hh_bench::{all_experiments, experiments_index_markdown};

const BEGIN: &str = "<!-- BEGIN GENERATED: experiment registry index -->";
const END: &str = "<!-- END GENERATED: experiment registry index -->";

fn experiments_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
    std::fs::read_to_string(path).expect("EXPERIMENTS.md exists at the repository root")
}

#[test]
fn generated_index_matches_the_registry() {
    let doc = experiments_md();
    let begin = doc
        .find(BEGIN)
        .expect("EXPERIMENTS.md contains the BEGIN GENERATED marker");
    let end = doc
        .find(END)
        .expect("EXPERIMENTS.md contains the END GENERATED marker");
    assert!(begin < end, "markers out of order");
    let embedded = doc[begin + BEGIN.len()..end].trim();
    let expected = experiments_index_markdown();
    assert_eq!(
        embedded,
        expected.trim(),
        "EXPERIMENTS.md registry index is stale; regenerate with \
         `cargo run --release -p hh-bench --bin experiments -- --index`"
    );
}

#[test]
fn every_experiment_id_is_documented_in_prose() {
    let doc = experiments_md();
    for experiment in all_experiments() {
        assert!(
            doc.contains(&format!("| {} |", experiment.id)),
            "experiment {} ({}) is missing from EXPERIMENTS.md",
            experiment.id,
            experiment.title
        );
    }
}

#[test]
fn registry_ids_are_unique_and_titled() {
    let registry = all_experiments();
    let mut ids: Vec<_> = registry.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), registry.len(), "duplicate experiment ids");
    assert!(registry.iter().all(|e| !e.title.is_empty()));
}
