//! F5 / F6 / F9 / F16 — Theorem 5.11 and supporting lemmas: the simple
//! algorithm.
//!
//! * **F5**: rounds versus `n` at fixed `k` — logarithmic.
//! * **F6**: rounds versus `k` at fixed `n` — linear (the `O(k log n)`
//!   cost's distinguishing factor against the optimal algorithm).
//! * **F9**: the expected initial relative population gap between two
//!   nests is at least `1/(3(n−1))` (Lemma 5.4) — the seed the Polya
//!   dynamics amplify.
//! * **F16**: nests that fall well below their fair share essentially
//!   never recover to win (Lemmas 5.8/5.9's "small nests die out").

use hh_analysis::{fit_linear, fit_log2, fmt_f64, Summary, Table};
use hh_core::colony;
use hh_model::{Action, ColonyConfig, Environment, NestId, QualitySpec};
use hh_sim::ConvergenceRule;

use super::common::{build_sim, cell_seed, doubling, measure_cell, plain_scenario};
use super::{ExperimentReport, Finding, Mode};

/// Runs experiment F5 (scaling in `n` at fixed `k`).
#[must_use]
pub fn run_f5(mode: Mode) -> ExperimentReport {
    // Quick mode still needs enough trials per cell for the log-fit's
    // R² gate; 6 leaves the k=2 fit hostage to a few slow outliers.
    let trials = mode.trials(16, 24);
    let ns = match mode {
        Mode::Quick => doubling(6, 11),
        Mode::Full => doubling(6, 14),
    };
    let ks = [2usize, 8];

    let mut table = Table::new(["n", "k=2 (rounds)", "k=8 (rounds)"]);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    for (ni, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (ki, &k) in ks.iter().enumerate() {
            let cell = measure_cell(
                trials,
                60_000,
                ConvergenceRule::commitment(),
                5,
                (ni * ks.len() + ki) as u64,
                plain_scenario(n, k, k),
                move |seed| colony::simple(n, seed),
            );
            assert!(cell.success > 0.9, "simple must solve n={n}, k={k}");
            means[ki].push(cell.mean_rounds());
            row.push(fmt_f64(cell.mean_rounds(), 1));
        }
        table.row(row);
    }

    let mut findings = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let fit = fit_log2(&ns, &means[ki]).expect("fit");
        findings.push(Finding::new(
            format!("k={k}: rounds fit a·log2(n)+b (the log n factor of O(k log n))"),
            format!(
                "{:.2}·log2(n) + {:.2}, R² = {:.3}",
                fit.slope, fit.intercept, fit.r_squared
            ),
            fit.slope > 0.0 && fit.r_squared >= 0.8,
        ));
    }
    let growth = hh_analysis::growth_assessment(&means[1]).expect("growth");
    findings.push(Finding::new(
        "k=8: growth sublinear across the doubling sweep",
        format!("mean ratio per doubling {:.2}", growth.mean_ratio),
        growth.looks_sublinear(1.5),
    ));

    let body = format!(
        "all nests good (pure competition); {trials} trials per cell;\n\
         rounds to commitment consensus\n\n{table}"
    );
    ExperimentReport {
        id: "F5",
        title: "Theorem 5.11 — simple algorithm is O(log n) at fixed k",
        body,
        findings,
    }
}

/// Runs experiment F6 (linear scaling in `k`).
#[must_use]
pub fn run_f6(mode: Mode) -> ExperimentReport {
    // The per-doubling-increment finding compares differences of cell
    // means, which is far noisier than the fit it rides alongside: at 6
    // quick trials the last-vs-first margin sat within one seed batch's
    // sampling noise (the counter-draw migration's realization change
    // flipped it without touching the distribution). The sweep is cheap
    // at quick-mode n, so quick runs the full trial count and only the
    // n/k axes shrink.
    let trials = mode.trials(24, 24);
    let n = match mode {
        Mode::Quick => 512,
        Mode::Full => 2_048,
    };
    let ks = match mode {
        Mode::Quick => vec![2usize, 4, 8, 16],
        Mode::Full => vec![2usize, 4, 8, 16, 32],
    };

    let mut table = Table::new(["k", "rounds (mean)", "success"]);
    let mut means = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let cell = measure_cell(
            trials,
            120_000,
            ConvergenceRule::commitment(),
            6,
            ki as u64,
            plain_scenario(n, k, k),
            move |seed| colony::simple(n, seed),
        );
        assert!(cell.success > 0.9, "simple must solve k={k}");
        means.push(cell.mean_rounds());
        table.row([
            k.to_string(),
            fmt_f64(cell.mean_rounds(), 1),
            format!("{}%", fmt_f64(cell.success * 100.0, 0)),
        ]);
    }

    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let fit = fit_linear(&xs, &means).expect("fit");
    // On a doubling sweep, linear-in-k growth doubles the per-step
    // increment each step (a log-k curve would keep it constant); the
    // shared additive O(log n) term cancels out of differences.
    let first_diff = means[1] - means[0];
    let last_diff = means[means.len() - 1] - means[means.len() - 2];
    let findings = vec![
        Finding::new(
            "rounds grow ≈ linearly in k (the k factor of O(k log n))",
            format!(
                "fit {:.2}·k + {:.2}, R² = {:.3}",
                fit.slope, fit.intercept, fit.r_squared
            ),
            fit.slope > 0.0 && fit.r_squared >= 0.8,
        ),
        Finding::new(
            "per-doubling increments grow (super-logarithmic in k, as linear predicts)",
            format!(
                "first doubling added {:.1} rounds, last added {:.1}",
                first_diff, last_diff
            ),
            first_diff > 0.0 && last_diff >= first_diff * 1.3,
        ),
    ];

    let body = format!("n = {n}, all nests good, {trials} trials per cell\n\n{table}");
    ExperimentReport {
        id: "F6",
        title: "Theorem 5.11 — simple algorithm linear in k",
        body,
        findings,
    }
}

/// Monte-Carlo estimate of `E[ε(i, j, 1)]` for two nests after the
/// round-1 search (Lemma 5.4). Empty nests contribute the maximum gap
/// `n − 1`, the natural extension of the paper's definition.
#[must_use]
pub fn initial_gap_mean(n: usize, trials: usize, cell: u64) -> f64 {
    let mut sum = 0.0;
    for trial in 0..trials {
        let seed = cell_seed(9, cell, trial);
        let config = ColonyConfig::new(n, QualitySpec::all_good(2)).seed(seed);
        let mut env = Environment::new(&config).expect("valid config");
        env.step(&vec![Action::Search; n]).expect("search round");
        let a = env.count(NestId::candidate(1));
        let b = env.count(NestId::candidate(2));
        let (hi, lo) = (a.max(b), a.min(b));
        let eps = if lo == 0 {
            (n - 1) as f64
        } else {
            hi as f64 / lo as f64 - 1.0
        };
        sum += eps;
    }
    sum / trials as f64
}

/// Runs experiment F9 (Lemma 5.4).
#[must_use]
pub fn run_f9(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(2_000, 20_000);
    let ns = [16usize, 64, 256, 1_024, 4_096];

    let mut table = Table::new(["n", "E[ε(i,j,1)]", "bound 1/(3(n-1))"]);
    let mut all_above = true;
    for (ni, &n) in ns.iter().enumerate() {
        let measured = initial_gap_mean(n, trials, ni as u64);
        let bound = 1.0 / (3.0 * (n as f64 - 1.0));
        if measured < bound {
            all_above = false;
        }
        table.row([n.to_string(), fmt_f64(measured, 4), format!("{bound:.6}")]);
    }

    let findings = vec![Finding::new(
        "expected initial relative gap ≥ 1/(3(n−1)) (Lemma 5.4)",
        if all_above {
            "holds at every n"
        } else {
            "violated at some n"
        }
        .to_string(),
        all_above,
    )];

    let body = format!(
        "two good nests, {trials} searches-of-round-1 per n;\n\
         ε = c_H/c_L − 1 (empty low nest contributes n−1)\n\n{table}"
    );
    ExperimentReport {
        id: "F9",
        title: "Lemma 5.4 — initial gap E[ε] ≥ 1/(3(n−1))",
        body,
        findings,
    }
}

/// One run's small-nest fate statistics for F16.
#[derive(Debug, Clone, Default)]
pub struct SmallNestFates {
    /// Nests that ever dipped below a quarter of their fair share
    /// (`n/(4k)`) while still alive.
    pub dipped: u64,
    /// Of those, how many ended up winning the consensus.
    pub dipped_and_won: u64,
    /// Extinction times (rounds from dip to zero commitment), summed.
    pub extinction_rounds: Summary,
}

/// Measures F16 over instrumented simple runs.
#[must_use]
pub fn measure_small_nest_fates(n: usize, k: usize, runs: usize, cell: u64) -> SmallNestFates {
    let mut fates = SmallNestFates::default();
    let threshold = (n / (4 * k)).max(1);
    for run in 0..runs {
        let seed = cell_seed(16, cell, run);
        let mut sim = build_sim(n, QualitySpec::all_good(k), seed, colony::simple(n, seed));
        let mut dip_round: Vec<Option<u64>> = vec![None; k];
        let mut extinct: Vec<Option<u64>> = vec![None; k];
        let mut detector = hh_sim::Detector::new(ConvergenceRule::commitment());
        let mut winner = None;
        for _ in 0..120_000 {
            sim.step().expect("legal run");
            let snap = hh_sim::RoundSnapshot::capture(&sim);
            for nest in 0..k {
                let committed = snap.committed[nest];
                if committed > 0 && committed < threshold && dip_round[nest].is_none() {
                    dip_round[nest] = Some(snap.round);
                }
                if committed == 0 && dip_round[nest].is_some() && extinct[nest].is_none() {
                    extinct[nest] = Some(snap.round);
                }
            }
            if let Some(solved) = detector.check(&sim) {
                winner = Some(solved.nest);
                break;
            }
        }
        for nest in 0..k {
            if let Some(dip) = dip_round[nest] {
                fates.dipped += 1;
                if winner == Some(NestId::candidate(nest + 1)) {
                    fates.dipped_and_won += 1;
                }
                if let Some(end) = extinct[nest] {
                    fates.extinction_rounds.push((end - dip) as f64);
                }
            }
        }
    }
    fates
}

/// Runs experiment F16 (Lemmas 5.8/5.9).
#[must_use]
pub fn run_f16(mode: Mode) -> ExperimentReport {
    let runs = mode.trials(8, 40);
    let configs = [(256usize, 4usize), (256, 8), (512, 16)];

    let mut table = Table::new([
        "n",
        "k",
        "dipped nests",
        "dipped & won",
        "mean extinction (rounds)",
    ]);
    let mut total_dipped = 0u64;
    let mut total_won = 0u64;
    for (ci, &(n, k)) in configs.iter().enumerate() {
        let fates = measure_small_nest_fates(n, k, runs, ci as u64);
        total_dipped += fates.dipped;
        total_won += fates.dipped_and_won;
        table.row([
            n.to_string(),
            k.to_string(),
            fates.dipped.to_string(),
            fates.dipped_and_won.to_string(),
            fmt_f64(fates.extinction_rounds.mean(), 1),
        ]);
    }

    let comeback_rate = if total_dipped == 0 {
        0.0
    } else {
        total_won as f64 / total_dipped as f64
    };
    let findings = vec![Finding::new(
        "nests that fall below n/(4k) essentially never win (Lemmas 5.8/5.9)",
        format!(
            "{total_won}/{total_dipped} dipped nests recovered to win ({:.1}%)",
            comeback_rate * 100.0
        ),
        total_dipped > 0 && comeback_rate <= 0.05,
    )];

    let body = format!(
        "instrumented simple runs (all nests good), {runs} runs per row;\n\
         dip threshold n/(4k) committed ants\n\n{table}"
    );
    ExperimentReport {
        id: "F16",
        title: "Lemmas 5.8/5.9 — sub-threshold nests die out",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_gap_is_positive_and_small() {
        let gap = initial_gap_mean(256, 500, 99);
        assert!(gap > 0.0);
        assert!(
            gap < 1.0,
            "typical relative gap at n=256 is well below 1, got {gap}"
        );
    }

    #[test]
    fn f9_quick_passes() {
        let report = run_f9(Mode::Quick);
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
