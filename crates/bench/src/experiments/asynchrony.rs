//! F17 — Section 6's "asynchrony" extension: partial synchrony as
//! per-round delays.
//!
//! The paper conjectures that Algorithm 3 "can be extended to work in a
//! partially-synchronous model, potentially at the cost of some extra
//! running time", while Algorithm 2 "relies heavily on the synchrony in
//! the execution". We model partial synchrony as independent per-(ant,
//! round) delays: a delayed ant misses its whole round (its action is
//! replaced by a location-preserving no-op and it observes nothing).
//!
//! The experiment sweeps the registry's delay fault axis for both
//! algorithms and reports success rate and slowdown.

use hh_analysis::{fmt_f64, Table};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::ConvergenceRule;

use super::common::{cell_seed, measure_scenario};
use super::{ExperimentReport, Finding, Mode};

const N: usize = 128;
const K: usize = 4;
const GOOD: usize = 2;

/// Runs experiment F17.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(8, 32);
    let delay_probs = [0.0, 0.05, 0.10, 0.20, 0.30];
    let rule = ConvergenceRule::stable_commitment(8);

    let delay_cell = |algorithm: Algorithm, probability: f64, cell: u64| {
        let faults = if probability > 0.0 {
            FaultSchedule::Delay { probability }
        } else {
            FaultSchedule::None
        };
        Scenario::custom(
            format!("f17-{}-p{probability}", algorithm.label()),
            N,
            QualityProfile::GoodPrefix { k: K, good: GOOD },
            faults,
            ColonyMix::Uniform(algorithm),
        )
        .rule(rule)
        .max_rounds(40_000)
        .base_seed_value(cell_seed(17, cell, 0))
    };

    let mut table = Table::new(["delay probability", "optimal", "simple", "simple slowdown"]);
    let mut simple_survives = true;
    let mut optimal_fragile = false;
    let mut baseline_rounds = 0.0;
    let mut slowdown_at_20 = 0.0;
    for (di, &prob) in delay_probs.iter().enumerate() {
        let optimal =
            measure_scenario(trials, &delay_cell(Algorithm::Optimal, prob, di as u64 * 2));
        let simple = measure_scenario(
            trials,
            &delay_cell(Algorithm::Simple, prob, di as u64 * 2 + 1),
        );
        if prob == 0.0 {
            baseline_rounds = simple.median_rounds();
        }
        if prob <= 0.2 && simple.success < 0.85 {
            simple_survives = false;
        }
        if prob >= 0.1 && optimal.success < 0.8 {
            optimal_fragile = true;
        }
        let slowdown = if baseline_rounds > 0.0 && simple.success > 0.0 {
            simple.median_rounds() / baseline_rounds
        } else {
            f64::NAN
        };
        if (prob - 0.2).abs() < 1e-9 {
            slowdown_at_20 = slowdown;
        }
        table.row([
            format!("{}%", fmt_f64(prob * 100.0, 0)),
            format!("{}%", fmt_f64(optimal.success * 100.0, 0)),
            format!("{}%", fmt_f64(simple.success * 100.0, 0)),
            format!("{}x", fmt_f64(slowdown, 2)),
        ]);
    }

    let findings = vec![
        Finding::new(
            "the simple algorithm works under partial synchrony (≤ 20% delays)",
            format!("success ≥ 85% through 20% delays: {simple_survives}"),
            simple_survives,
        ),
        Finding::new(
            "asynchrony costs the simple algorithm only extra running time",
            format!("slowdown at 20% delays: {:.2}x", slowdown_at_20),
            (1.0..=4.0).contains(&slowdown_at_20),
        ),
        Finding::new(
            "the optimal algorithm relies on lockstep synchrony and degrades",
            format!("optimal success below 80% at ≥ 10% delays: {optimal_fragile}"),
            optimal_fragile,
        ),
    ];

    let body = format!(
        "n = {N}, k = {K} ({GOOD} good), {trials} trials per cell;\n\
         a delayed ant misses its whole round (no action, no observation)\n\n{table}"
    );
    ExperimentReport {
        id: "F17",
        title: "Section 6 — partial asynchrony (per-round delays)",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(Mode::Quick);
        assert_eq!(report.findings.len(), 3);
        assert!(report.body.contains("delay probability"));
    }
}
