//! F7 — optimal vs simple: who wins, by how much, and where the gap
//! opens.
//!
//! The paper's two algorithms differ asymptotically by a factor of `k`.
//! This experiment runs both on identical instances across a `k` sweep
//! and reports the mean-round ratio. Expected shape: comparable at small
//! `k` (constants can even favour the simple algorithm), with the
//! simple/optimal ratio growing with `k`.

use hh_analysis::{fmt_f64, Table};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::ConvergenceRule;

use super::common::{cell_seed, measure_scenario};
use super::{ExperimentReport, Finding, Mode};

/// Runs experiment F7.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    // At n=512 the optimal/simple gap at k=64 sits right on the 1.2x
    // "wins clearly" threshold; quick mode needs the larger colony for
    // the ratio finding to measure the asymptotic shape at all.
    let trials = mode.trials(12, 24);
    let n = match mode {
        Mode::Quick => 1_024,
        Mode::Full => 2_048,
    };
    let ks = match mode {
        Mode::Quick => vec![2usize, 4, 16, 64],
        Mode::Full => vec![2usize, 4, 8, 16, 32, 64],
    };

    // All-good habitats: both algorithms race on pure competition.
    let race_cell = |algorithm: Algorithm, k: usize, cell: u64| {
        let (rule, budget) = match algorithm {
            Algorithm::Optimal => (ConvergenceRule::all_final(), 60_000),
            _ => (ConvergenceRule::commitment(), 120_000),
        };
        Scenario::custom(
            format!("f7-{}-k{k}", algorithm.label()),
            n,
            QualityProfile::AllGood { k },
            FaultSchedule::None,
            ColonyMix::Uniform(algorithm),
        )
        .rule(rule)
        .max_rounds(budget)
        .base_seed_value(cell_seed(7, cell, 0))
    };

    let mut table = Table::new(["k", "optimal (rounds)", "simple (rounds)", "simple/optimal"]);
    let mut ratios = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let optimal = measure_scenario(trials, &race_cell(Algorithm::Optimal, k, ki as u64 * 2));
        let simple = measure_scenario(trials, &race_cell(Algorithm::Simple, k, ki as u64 * 2 + 1));
        assert!(optimal.success > 0.9 && simple.success > 0.9);
        let ratio = simple.median_rounds() / optimal.median_rounds();
        ratios.push(ratio);
        table.row([
            k.to_string(),
            fmt_f64(optimal.median_rounds(), 1),
            fmt_f64(simple.median_rounds(), 1),
            fmt_f64(ratio, 2),
        ]);
    }

    let findings = vec![
        Finding::new(
            "the simple/optimal round ratio grows with k (the O(k) gap)",
            format!(
                "ratio at k={}: {:.2}; at k={}: {:.2}",
                ks[0],
                ratios[0],
                ks.last().unwrap(),
                ratios.last().unwrap()
            ),
            ratios.last().unwrap() > &ratios[0],
        ),
        Finding::new(
            "the optimal algorithm wins clearly at the largest k",
            format!(
                "ratio {:.2} at k={}",
                ratios.last().unwrap(),
                ks.last().unwrap()
            ),
            *ratios.last().unwrap() > 1.2,
        ),
    ];

    let body = format!(
        "n = {n}, all nests good, {trials} trials per cell;\n\
         optimal measured to all-final, simple to commitment consensus\n\n{table}"
    );
    ExperimentReport {
        id: "F7",
        title: "Optimal vs simple — who wins, and by how much",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_produces_rows() {
        let report = run(Mode::Quick);
        assert!(report.body.contains("simple/optimal"));
        assert_eq!(report.findings.len(), 2);
    }
}
