//! F10 / F11 / F12 — Section 6's robustness claims, measured.
//!
//! The paper argues the simple algorithm tolerates unbiased noisy counts,
//! crash faults, and a small number of malicious ants, while the optimal
//! algorithm's reliance on exact counts and strict synchrony makes it
//! fragile. Each experiment sweeps a perturbation strength for both
//! algorithms and reports success rates; every cell is a registry
//! [`Scenario`] assembled from the fault and colony-mix axes.

use hh_analysis::{fmt_f64, Table};
use hh_core::{colony, SleeperAnt};
use hh_model::faults::CrashStyle;
use hh_model::noise::CountNoise;
use hh_model::{NoiseModel, QualitySpec};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::{ConvergenceRule, ScenarioSpec};

use super::common::{cell_seed, measure_cell, measure_scenario};
use super::{ExperimentReport, Finding, Mode};

const N: usize = 128;
const K: usize = 4;
const GOOD: usize = 2;

fn rule() -> ConvergenceRule {
    // A stability window guards against flickering agreement under
    // perturbations.
    ConvergenceRule::stable_commitment(8)
}

/// The shared habitat of the robustness sweeps.
fn habitat() -> QualityProfile {
    QualityProfile::GoodPrefix { k: K, good: GOOD }
}

/// One registry cell of a robustness sweep: `algorithm` under `faults`,
/// seeded from the experiment's cell-seed scheme.
fn cell(
    name: String,
    experiment: u64,
    cell: u64,
    faults: FaultSchedule,
    mix: ColonyMix,
) -> Scenario {
    Scenario::custom(name, N, habitat(), faults, mix)
        .rule(rule())
        .max_rounds(30_000)
        .base_seed_value(cell_seed(experiment, cell, 0))
}

/// Runs experiment F10 (unbiased count noise).
#[must_use]
pub fn run_f10(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(8, 32);
    let sigmas = [0.0, 0.15, 0.3, 0.6, 1.0];

    let mut table = Table::new(["count noise σ", "optimal", "simple", "simple slowdown"]);
    let mut simple_ok_mid_noise = true;
    let mut baseline_rounds = 0.0;
    let mut optimal_degrades = false;
    for (si, &sigma) in sigmas.iter().enumerate() {
        let noise = NoiseModel {
            count: CountNoise::multiplicative(sigma).expect("valid sigma"),
            quality: Default::default(),
        };
        let optimal = measure_scenario(
            trials,
            &cell(
                format!("f10-optimal-sigma{sigma}"),
                10,
                si as u64 * 2,
                FaultSchedule::None,
                ColonyMix::Uniform(Algorithm::Optimal),
            )
            .noise(noise),
        );
        let simple = measure_scenario(
            trials,
            &cell(
                format!("f10-simple-sigma{sigma}"),
                10,
                si as u64 * 2 + 1,
                FaultSchedule::None,
                ColonyMix::Uniform(Algorithm::Simple),
            )
            .noise(noise),
        );
        if sigma == 0.0 {
            baseline_rounds = simple.mean_rounds();
        }
        if sigma > 0.0 && sigma <= 0.3 && simple.success < 0.85 {
            simple_ok_mid_noise = false;
        }
        if sigma >= 0.3 && optimal.success < 0.8 {
            optimal_degrades = true;
        }
        let slowdown = if baseline_rounds > 0.0 && simple.success > 0.0 {
            simple.mean_rounds() / baseline_rounds
        } else {
            f64::NAN
        };
        table.row([
            fmt_f64(sigma, 2),
            format!("{}%", fmt_f64(optimal.success * 100.0, 0)),
            format!("{}%", fmt_f64(simple.success * 100.0, 0)),
            format!("{}x", fmt_f64(slowdown, 2)),
        ]);
    }

    let findings = vec![
        Finding::new(
            "the simple algorithm tolerates unbiased count noise up to σ = 0.3",
            format!("success ≥ 85% through σ = 0.3: {simple_ok_mid_noise}"),
            simple_ok_mid_noise,
        ),
        Finding::new(
            "the optimal algorithm degrades under the same noise (needs exact counts)",
            format!("optimal success dropped below 80% at σ ≥ 0.3: {optimal_degrades}"),
            optimal_degrades,
        ),
    ];

    let body = format!(
        "n = {N}, k = {K} ({GOOD} good), {trials} trials per cell;\n\
         unit-mean log-normal noise on every count observation\n\n{table}"
    );
    ExperimentReport {
        id: "F10",
        title: "Section 6 — robustness to unbiased count noise",
        body,
        findings,
    }
}

/// Runs experiment F11 (crash faults).
#[must_use]
pub fn run_f11(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(8, 32);
    let fractions = [0.0, 0.05, 0.10, 0.20, 0.30];

    let mut table = Table::new(["crash fraction", "optimal", "simple"]);
    let mut simple_survives = true;
    for (fi, &fraction) in fractions.iter().enumerate() {
        let faults = if fraction > 0.0 {
            FaultSchedule::Crash {
                fraction,
                round: 10,
                style: CrashStyle::InPlace,
            }
        } else {
            FaultSchedule::None
        };
        let optimal = measure_scenario(
            trials,
            &cell(
                format!("f11-optimal-crash{fraction}"),
                11,
                fi as u64 * 2,
                faults,
                ColonyMix::Uniform(Algorithm::Optimal),
            ),
        );
        let simple = measure_scenario(
            trials,
            &cell(
                format!("f11-simple-crash{fraction}"),
                11,
                fi as u64 * 2 + 1,
                faults,
                ColonyMix::Uniform(Algorithm::Simple),
            ),
        );
        if fraction <= 0.2 && simple.success < 0.85 {
            simple_survives = false;
        }
        table.row([
            format!("{}%", fmt_f64(fraction * 100.0, 0)),
            format!("{}%", fmt_f64(optimal.success * 100.0, 0)),
            format!("{}%", fmt_f64(simple.success * 100.0, 0)),
        ]);
    }

    let findings = vec![Finding::new(
        "the live colony keeps solving with up to 20% crash-stop ants",
        format!("simple success ≥ 85% through 20% crashes: {simple_survives}"),
        simple_survives,
    )];

    let body = format!(
        "n = {N}, k = {K} ({GOOD} good), crashes at round 10 (in place);\n\
         success = stable consensus among *live* honest ants; {trials} trials per cell\n\n{table}"
    );
    ExperimentReport {
        id: "F11",
        title: "Section 6 — robustness to crash faults",
        body,
        findings,
    }
}

/// Runs experiment F12 (Byzantine recruiters).
///
/// Success is a stable 90% quorum of the live honest colony on one good
/// nest: with active kidnappers unanimity is unattainable by
/// construction (some ant is always mid-abduction), and real colonies
/// decide by quorum anyway.
#[must_use]
pub fn run_f12(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(8, 32);
    let byz_counts = [0usize, 2, 4, 8, 16];
    let quorum = ConvergenceRule::quorum(0.9, 8);

    let mut table = Table::new([
        "byzantine ants",
        "simple (paper)",
        "simple (reassessing)",
        "sleepers (paper)",
    ]);
    let mut hardened_dominates = true;
    let mut hardened_rescues = true;
    let mut paper_simple_at_max = 1.0;
    for (bi, &byz) in byz_counts.iter().enumerate() {
        let paper = measure_scenario(
            trials,
            &cell(
                format!("f12-paper-byz{byz}"),
                12,
                bi as u64 * 3,
                FaultSchedule::None,
                ColonyMix::Byzantine {
                    algorithm: Algorithm::Simple,
                    adversaries: byz,
                },
            )
            .rule(quorum),
        );
        // The hardened variant re-checks quality on arrival, which needs
        // the assessing-go model extension (the registry enables it for
        // `HardenedSimple` automatically).
        let hardened = measure_scenario(
            trials,
            &cell(
                format!("f12-hardened-byz{byz}"),
                12,
                bi as u64 * 3 + 1,
                FaultSchedule::None,
                ColonyMix::Byzantine {
                    algorithm: Algorithm::HardenedSimple,
                    adversaries: byz,
                },
            )
            .rule(quorum),
        );
        // Sleeper adversaries are per-slot-seeded agents, not a registry
        // mix; this column keeps the bespoke colony path.
        let sleepers = measure_cell(
            trials,
            30_000,
            quorum,
            12,
            bi as u64 * 3 + 2,
            move |_| ScenarioSpec::new(N, QualitySpec::good_prefix(K, GOOD)),
            move |seed| {
                let mut agents = colony::simple(N, seed);
                colony::plant_adversaries(&mut agents, byz, |slot| {
                    SleeperAnt::new(N, seed + slot as u64, 40)
                });
                agents
            },
        );
        if hardened.success + 0.15 < paper.success {
            hardened_dominates = false;
        }
        if paper.success <= 0.5 && hardened.success < 0.6 {
            hardened_rescues = false;
        }
        if byz == *byz_counts.last().unwrap() {
            paper_simple_at_max = paper.success;
        }
        table.row([
            byz.to_string(),
            format!("{}%", fmt_f64(paper.success * 100.0, 0)),
            format!("{}%", fmt_f64(hardened.success * 100.0, 0)),
            format!("{}%", fmt_f64(sleepers.success * 100.0, 0)),
        ]);
    }

    let findings = vec![
        Finding::new(
            "arrival re-assessment strictly improves on the paper-faithful rule",
            format!("hardened ≥ paper-faithful at every adversary count: {hardened_dominates}"),
            hardened_dominates,
        ),
        Finding::new(
            "re-assessment rescues regimes where the paper-faithful rule collapses",
            format!("hardened ≥ 60% wherever paper-faithful ≤ 50%: {hardened_rescues}"),
            hardened_rescues,
        ),
        Finding::new(
            "the paper-faithful algorithm is eventually hijackable (never re-checks quality)",
            format!(
                "paper-faithful success at {} adversaries: {}%",
                byz_counts.last().unwrap(),
                fmt_f64(paper_simple_at_max * 100.0, 0)
            ),
            paper_simple_at_max < 0.9,
        ),
    ];

    let body = format!(
        "n = {N} ants ({GOOD} of {K} nests good), adversaries recruit toward bad nests;\n\
         success = stable 90% quorum of the honest sub-colony; {trials} trials per cell\n\n{table}"
    );
    ExperimentReport {
        id: "F12",
        title: "Section 6 — robustness to Byzantine recruiters",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f11_quick_passes() {
        let report = run_f11(Mode::Quick);
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
