//! Experiment registry and shared report types.

pub mod ablation;
pub mod adaptive_rate;
pub mod asynchrony;
pub mod common;
pub mod head_to_head;
pub mod lower_bound;
pub mod optimal;
pub mod quality;
pub mod recruitment;
pub mod robustness;
pub mod rumor;
pub mod simple;
pub mod throughput;

/// Effort level: `Quick` keeps every experiment CI-sized; `Full` uses the
/// publication-sized sweeps recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Small sweeps, few trials (seconds per experiment).
    Quick,
    /// Full sweeps (minutes per experiment).
    Full,
}

impl Mode {
    /// Scales a trial count.
    #[must_use]
    pub fn trials(self, quick: usize, full: usize) -> usize {
        match self {
            Mode::Quick => quick,
            Mode::Full => full,
        }
    }

    /// Picks one of two sweeps.
    #[must_use]
    pub fn sweep<T: Clone>(self, quick: &[T], full: &[T]) -> Vec<T> {
        match self {
            Mode::Quick => quick.to_vec(),
            Mode::Full => full.to_vec(),
        }
    }
}

/// A machine-checked claim about an experiment's measured shape.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The claim, phrased after the paper ("rounds grow ≈ a·log n").
    pub claim: String,
    /// What was measured, human-readable.
    pub measured: String,
    /// Did the measurement satisfy the claim?
    pub pass: bool,
}

impl Finding {
    /// Builds a finding.
    #[must_use]
    pub fn new(claim: impl Into<String>, measured: impl Into<String>, pass: bool) -> Self {
        Self {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        }
    }
}

/// One experiment's rendered output plus its structured findings.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`"F3"`, `"T2"`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered tables/series, ready to print.
    pub body: String,
    /// Shape checks.
    pub findings: Vec<Finding>,
}

impl ExperimentReport {
    /// `true` if every finding passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.findings.iter().all(|f| f.pass)
    }
}

/// A runnable experiment: id, title, and entry point.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Experiment id (`"F3"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Entry point.
    pub run: fn(Mode) -> ExperimentReport,
}

/// Renders the experiment-registry index exactly as embedded in
/// `EXPERIMENTS.md` between the `BEGIN/END GENERATED` markers — the
/// `hh_lint --docs` rule regenerates this table (statically, from this
/// file's `id:`/`title:` literals) and fails the tier-1 lint gate when
/// the checked-in file is stale, so the table can only be edited here.
/// Keep the row shape `| {id} | {title} |` in sync with
/// `crates/lint/src/docs.rs`.
#[must_use]
pub fn experiments_index_markdown() -> String {
    let mut out = String::from("| id | title |\n|----|-------|\n");
    for experiment in all_experiments() {
        out.push_str(&format!("| {} | {} |\n", experiment.id, experiment.title));
    }
    out
}

/// The full registry, in `EXPERIMENTS.md` order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "F1",
            title: "Theorem 3.2 — Ω(log n) lower bound",
            run: lower_bound::run,
        },
        Experiment {
            id: "F2",
            title: "Lemma 2.1 — recruiter success ≥ 1/16",
            run: recruitment::run,
        },
        Experiment {
            id: "F3",
            title: "Theorem 4.3 — optimal algorithm is O(log n) in n",
            run: optimal::run_f3,
        },
        Experiment {
            id: "F4",
            title: "Theorem 4.3 — optimal algorithm nearly flat in k",
            run: optimal::run_f4,
        },
        Experiment {
            id: "F8",
            title: "Lemma 4.2 — competing nests drop out at ≥ 1/66 per cycle",
            run: optimal::run_f8,
        },
        Experiment {
            id: "F5",
            title: "Theorem 5.11 — simple algorithm is O(log n) at fixed k",
            run: simple::run_f5,
        },
        Experiment {
            id: "F6",
            title: "Theorem 5.11 — simple algorithm linear in k",
            run: simple::run_f6,
        },
        Experiment {
            id: "F9",
            title: "Lemma 5.4 — initial gap E[ε] ≥ 1/(3(n−1))",
            run: simple::run_f9,
        },
        Experiment {
            id: "F16",
            title: "Lemmas 5.8/5.9 — sub-threshold nests die out",
            run: simple::run_f16,
        },
        Experiment {
            id: "F7",
            title: "Optimal vs simple — who wins, and by how much",
            run: head_to_head::run,
        },
        Experiment {
            id: "F10",
            title: "Section 6 — robustness to unbiased count noise",
            run: robustness::run_f10,
        },
        Experiment {
            id: "F11",
            title: "Section 6 — robustness to crash faults",
            run: robustness::run_f11,
        },
        Experiment {
            id: "F12",
            title: "Section 6 — robustness to Byzantine recruiters",
            run: robustness::run_f12,
        },
        Experiment {
            id: "F17",
            title: "Section 6 — partial asynchrony (per-round delays)",
            run: asynchrony::run,
        },
        Experiment {
            id: "F13",
            title: "Section 6 — adaptive recruitment rate vs k",
            run: adaptive_rate::run,
        },
        Experiment {
            id: "F14",
            title: "Section 6 — non-binary quality: speed/accuracy",
            run: quality::run,
        },
        Experiment {
            id: "F15",
            title: "Rumor-spreading substrate (Karp et al.)",
            run: rumor::run,
        },
        Experiment {
            id: "F18",
            title: "Ablation — adaptive-rate design choices",
            run: ablation::run,
        },
        Experiment {
            id: "T2",
            title: "Engineering throughput (ant·rounds/sec)",
            run: throughput::run,
        },
    ]
}
