//! F13 — Section 6's "improved running time": the adaptive recruitment
//! rate versus `k`.
//!
//! Sweeps `k` at fixed `n` for the simple `count/n` rule and the
//! adaptive `k̃(r)` schedule. The claim under test: the adaptive rule
//! removes the linear `k` dependence (its convergence time stays
//! polylogarithmic), at the cost of a fixed polylog prologue that makes
//! it slower at trivially small `k`.

use hh_analysis::{fit_linear, fmt_f64, Table};
use hh_core::colony;
use hh_sim::ConvergenceRule;

use super::common::{measure_cell, plain_scenario};
use super::{ExperimentReport, Finding, Mode};

/// Runs experiment F13.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(6, 24);
    let n = match mode {
        Mode::Quick => 512,
        Mode::Full => 1_024,
    };
    let ks = match mode {
        Mode::Quick => vec![2usize, 4, 8, 16],
        Mode::Full => vec![2usize, 4, 8, 16, 32],
    };

    let mut table = Table::new(["k", "simple (rounds)", "adaptive (rounds)", "speedup"]);
    let mut simple_means = Vec::new();
    let mut adaptive_means = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let simple = measure_cell(
            trials,
            120_000,
            ConvergenceRule::commitment(),
            13,
            ki as u64 * 2,
            plain_scenario(n, k, k),
            move |seed| colony::simple(n, seed),
        );
        let adaptive = measure_cell(
            trials,
            120_000,
            ConvergenceRule::commitment(),
            13,
            ki as u64 * 2 + 1,
            plain_scenario(n, k, k),
            move |seed| colony::adaptive(n, seed),
        );
        assert!(simple.success > 0.9 && adaptive.success > 0.9, "k={k}");
        simple_means.push(simple.mean_rounds());
        adaptive_means.push(adaptive.mean_rounds());
        table.row([
            k.to_string(),
            fmt_f64(simple.mean_rounds(), 1),
            fmt_f64(adaptive.mean_rounds(), 1),
            format!(
                "{}x",
                fmt_f64(simple.mean_rounds() / adaptive.mean_rounds(), 2)
            ),
        ]);
    }

    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let simple_fit = fit_linear(&xs, &simple_means).expect("fit");
    let adaptive_fit = fit_linear(&xs, &adaptive_means).expect("fit");
    let simple_growth = simple_means.last().unwrap() / simple_means[0];
    let adaptive_growth = adaptive_means.last().unwrap() / adaptive_means[0];

    let findings = vec![
        Finding::new(
            "the adaptive rule's k-slope is far below the simple rule's",
            format!(
                "per-k slopes: simple {:.2} rounds/k, adaptive {:.2} rounds/k",
                simple_fit.slope, adaptive_fit.slope
            ),
            adaptive_fit.slope < simple_fit.slope * 0.5,
        ),
        Finding::new(
            "end-to-end growth over the k sweep: adaptive ≈ flat, simple grows",
            format!(
                "rounds grew {:.2}x (simple) vs {:.2}x (adaptive) as k went {}→{}",
                simple_growth,
                adaptive_growth,
                ks[0],
                ks.last().unwrap()
            ),
            adaptive_growth < simple_growth,
        ),
        Finding::new(
            "the adaptive rule wins at the largest k",
            format!(
                "speedup at k={}: {:.2}x",
                ks.last().unwrap(),
                simple_means.last().unwrap() / adaptive_means.last().unwrap()
            ),
            simple_means.last().unwrap() > adaptive_means.last().unwrap(),
        ),
    ];

    let body = format!(
        "n = {n}, all nests good, {trials} trials per cell;\n\
         adaptive schedule: k̃(r) decays √n → 2, θ = 0.4 (see hh-core::adaptive docs)\n\n{table}"
    );
    ExperimentReport {
        id: "F13",
        title: "Section 6 — adaptive recruitment rate vs k",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs() {
        let report = run(Mode::Quick);
        assert_eq!(report.findings.len(), 3);
    }
}
