//! F2 — Lemma 2.1: an active recruiter succeeds with probability ≥ 1/16.
//!
//! Monte-Carlo estimates of `P[(a, ·) ∈ M]` for a fixed active ant across
//! home-nest populations and active fractions, directly on the pairing
//! process ("Algorithm 1"). The paper's 1/16 is a worst-case bound; the
//! measured probabilities are expected well above it.

use hh_analysis::{fmt_f64, Table};
use hh_model::recruitment::{pair_ants, RecruitCall};
use hh_model::{AntId, NestId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::common::cell_seed;
use super::{ExperimentReport, Finding, Mode};

/// Estimates the success probability of ant 0 (always active) among `m`
/// participants of which a fraction `active` recruit actively.
#[must_use]
pub fn success_probability(m: usize, active_fraction: f64, trials: u32, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let calls: Vec<RecruitCall> = (0..m)
        .map(|i| {
            let active = i == 0 || (i as f64) < active_fraction * m as f64;
            RecruitCall::new(AntId::new(i), active, NestId::candidate(1))
        })
        .collect();
    let mut successes = 0u32;
    for _ in 0..trials {
        if pair_ants(&calls, &mut rng).succeeded(0) {
            successes += 1;
        }
    }
    f64::from(successes) / f64::from(trials)
}

/// Runs experiment F2.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = match mode {
        Mode::Quick => 4_000,
        Mode::Full => 40_000,
    };
    let populations = [2usize, 4, 16, 64, 256];
    let fractions = [0.25, 0.5, 1.0];

    let mut table = Table::new(["home population", "25% active", "50% active", "100% active"]);
    let mut minimum = f64::INFINITY;
    for (pi, &m) in populations.iter().enumerate() {
        let mut row = vec![m.to_string()];
        for (fi, &fraction) in fractions.iter().enumerate() {
            let p = success_probability(
                m,
                fraction,
                trials,
                cell_seed(2, (pi * fractions.len() + fi) as u64, 0),
            );
            minimum = minimum.min(p);
            row.push(fmt_f64(p, 3));
        }
        table.row(row);
    }

    let findings = vec![Finding::new(
        "P[active recruiter succeeds] ≥ 1/16 whenever c(0,r) ≥ 2 (Lemma 2.1)",
        format!("minimum over the grid: {:.3} (bound 0.0625)", minimum),
        minimum >= 1.0 / 16.0,
    )];

    let body = format!(
        "direct Monte-Carlo on the pairing process, {trials} draws per cell;\n\
         empirical P[ant 0 recruits successfully]\n\n{table}"
    );
    ExperimentReport {
        id: "F2",
        title: "Lemma 2.1 — recruiter success ≥ 1/16",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_pair_has_high_success() {
        // Two ants, one active: the recruiter succeeds unless its uniform
        // pick collides badly — empirically ≈ 1.
        let p = success_probability(2, 0.0, 2_000, 7);
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn quick_mode_passes() {
        let report = run(Mode::Quick);
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
