//! F15 — the rumor-spreading substrate (Karp et al., FOCS 2000).
//!
//! The lower bound of Section 3 is an adaptation of rumor-spreading lower
//! bounds on complete graphs. This experiment measures the classical
//! PUSH / PULL / PUSH–PULL processes and overlays the analytic
//! `log₂ n + ln n` PUSH completion time, validating the substrate the
//! paper's analogy rests on.

use hh_analysis::{fit_log2, fmt_f64, Summary, Table};
use hh_rumor::{spread, theoretical_push_rounds, Protocol};

use super::common::{cell_seed, doubling};
use super::{ExperimentReport, Finding, Mode};

/// Runs experiment F15.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(10, 50);
    let ns = match mode {
        Mode::Quick => doubling(6, 12),
        Mode::Full => doubling(6, 16),
    };
    let protocols = [Protocol::Push, Protocol::Pull, Protocol::PushPull];

    let mut table = Table::new(["n", "push", "pull", "push-pull", "log2 n + ln n"]);
    let mut push_means = Vec::new();
    let mut push_pull_means = Vec::new();
    for (ni, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (pi, &protocol) in protocols.iter().enumerate() {
            let mut rounds = Summary::new();
            for trial in 0..trials {
                let seed = cell_seed(15, (ni * protocols.len() + pi) as u64, trial);
                rounds.push(spread(n, protocol, seed).rounds as f64);
            }
            if protocol == Protocol::Push {
                push_means.push(rounds.mean());
            }
            if protocol == Protocol::PushPull {
                push_pull_means.push(rounds.mean());
            }
            row.push(fmt_f64(rounds.mean(), 1));
        }
        row.push(fmt_f64(theoretical_push_rounds(n), 1));
        table.row(row);
    }

    let fit = fit_log2(&ns, &push_means).expect("fit");
    let largest = ns.len() - 1;
    let theory = theoretical_push_rounds(ns[largest]);
    let deviation = (push_means[largest] - theory).abs() / theory;
    let findings = vec![
        Finding::new(
            "PUSH completes in ≈ log2 n + ln n rounds (Frieze–Grimmett/Pittel)",
            format!(
                "at n = {}: measured {:.1} vs theory {:.1} ({:.0}% off)",
                ns[largest],
                push_means[largest],
                theory,
                deviation * 100.0
            ),
            deviation < 0.4,
        ),
        Finding::new(
            "PUSH rounds grow logarithmically",
            format!(
                "fit {:.2}·log2(n) + {:.2}, R² = {:.3}",
                fit.slope, fit.intercept, fit.r_squared
            ),
            fit.slope > 0.0 && fit.r_squared >= 0.9,
        ),
        Finding::new(
            "PUSH–PULL beats PUSH at every n (Karp et al.)",
            "push-pull means below push means across the sweep".to_string(),
            push_pull_means
                .iter()
                .zip(&push_means)
                .all(|(pp, p)| pp < p),
        ),
    ];

    let body = format!(
        "complete graph, single informed node, {trials} trials per cell;\n\
         rounds until all nodes informed\n\n{table}"
    );
    ExperimentReport {
        id: "F15",
        title: "Rumor-spreading substrate (Karp et al.)",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_passes() {
        let report = run(Mode::Quick);
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
