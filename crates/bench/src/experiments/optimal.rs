//! F3 / F4 / F8 — Theorem 4.3 and Lemma 4.2: the optimal algorithm.
//!
//! * **F3**: rounds-to-all-final versus `n` at fixed `k` — must fit
//!   `a·log₂ n + b` tightly (Theorem 4.3's `O(log n)`).
//! * **F4**: rounds versus `k` at fixed `n` — near-flat (the `log k` term is
//!   dominated by the `log n` recruitment tail).
//! * **F8**: the per-cycle drop-out probability of a competing nest,
//!   measured from instrumented runs — Lemma 4.2 lower-bounds it by 1/66.

use hh_analysis::{fit_log2, fmt_f64, Summary, Table};
use hh_core::{colony, CyclePhase};
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, RoundSnapshot};

use super::common::{build_sim, cell_seed, doubling, measure_cell, plain_scenario};
use super::{ExperimentReport, Finding, Mode};

/// Runs experiment F3 (scaling in `n`).
#[must_use]
pub fn run_f3(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(12, 32);
    let ns = match mode {
        Mode::Quick => doubling(6, 11),
        Mode::Full => doubling(6, 14),
    };
    let ks = [4usize, 8];

    let mut table = Table::new(["n", "k=4 (median rounds)", "k=8 (median rounds)"]);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    for (ni, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (ki, &k) in ks.iter().enumerate() {
            let cell = measure_cell(
                trials,
                20_000,
                ConvergenceRule::all_final(),
                3,
                (ni * ks.len() + ki) as u64,
                plain_scenario(n, k, k / 2),
                move |_| colony::optimal(n),
            );
            // Sanity gate that the fit inputs are meaningful, not a
            // paper claim: success is whp in n, so the smallest cells
            // (n=64) genuinely fail ~5% of trials, and at quick-mode
            // trial counts a 0.9 cutoff flakes on the seed stream.
            assert!(cell.success > 0.75, "optimal must solve n={n}, k={k}");
            means[ki].push(cell.median_rounds());
            row.push(fmt_f64(cell.median_rounds(), 1));
        }
        table.row(row);
    }

    let mut findings = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let fit = fit_log2(&ns, &means[ki]).expect("fit");
        findings.push(Finding::new(
            format!("k={k}: rounds fit a·log2(n)+b with positive slope and high R²"),
            format!(
                "{:.2}·log2(n) + {:.2}, R² = {:.3}",
                fit.slope, fit.intercept, fit.r_squared
            ),
            fit.slope > 0.0 && fit.r_squared >= 0.8,
        ));
        let growth = hh_analysis::growth_assessment(&means[ki]).expect("growth");
        findings.push(Finding::new(
            format!("k={k}: growth is sublinear across the doubling sweep"),
            format!("mean ratio per doubling {:.2}", growth.mean_ratio),
            growth.looks_sublinear(1.5),
        ));
    }

    let body = format!(
        "rounds until every ant is in the final state (Theorem 4.3's T);\n\
         k/2 good nests, {trials} trials per cell\n\n{table}"
    );
    ExperimentReport {
        id: "F3",
        title: "Theorem 4.3 — optimal algorithm is O(log n) in n",
        body,
        findings,
    }
}

/// Runs experiment F4 (near-flat in `k`).
#[must_use]
pub fn run_f4(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(6, 24);
    let n = match mode {
        Mode::Quick => 1_024,
        Mode::Full => 4_096,
    };
    let ks = match mode {
        Mode::Quick => vec![2usize, 4, 8, 16, 32],
        Mode::Full => vec![2usize, 4, 8, 16, 32, 64],
    };

    let mut table = Table::new(["k", "rounds (mean)", "success"]);
    let mut means = Vec::new();
    for (ki, &k) in ks.iter().enumerate() {
        let cell = measure_cell(
            trials,
            20_000,
            ConvergenceRule::all_final(),
            4,
            ki as u64,
            plain_scenario(n, k, k),
            move |_| colony::optimal(n),
        );
        assert!(cell.success > 0.9, "optimal must solve k={k}");
        means.push(cell.mean_rounds());
        table.row([
            k.to_string(),
            fmt_f64(cell.mean_rounds(), 1),
            format!("{}%", fmt_f64(cell.success * 100.0, 0)),
        ]);
    }

    let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / means.iter().cloned().fold(f64::INFINITY, f64::min);
    let findings = vec![Finding::new(
        "rounds nearly independent of k (only a log k term)",
        format!(
            "max/min over the k sweep: {:.2} (linear growth would give ≈ {})",
            spread,
            ks.last().unwrap() / ks[0]
        ),
        spread <= 3.0,
    )];

    let body = format!("n = {n}, all nests good, {trials} trials per cell\n\n{table}");
    ExperimentReport {
        id: "F4",
        title: "Theorem 4.3 — optimal algorithm nearly flat in k",
        body,
        findings,
    }
}

/// Per-cycle competing-nest drop-out statistics from instrumented runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropOutStats {
    /// (nest, cycle) pairs where the nest was competing alongside others.
    pub observations: u64,
    /// Of those, how many dropped out by the next cycle.
    pub drops: u64,
}

impl DropOutStats {
    /// Empirical per-cycle drop-out probability.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.observations == 0 {
            0.0
        } else {
            self.drops as f64 / self.observations as f64
        }
    }
}

/// Measures Lemma 4.2's event over instrumented optimal runs: for each
/// cycle with ≥ 2 competing nests, how many competitors are gone by the
/// next cycle's end.
#[must_use]
pub fn measure_dropout(n: usize, k: usize, runs: usize, mode_cell: u64) -> DropOutStats {
    let mut stats = DropOutStats {
        observations: 0,
        drops: 0,
    };
    for run in 0..runs {
        let seed = cell_seed(8, mode_cell, run);
        let mut sim = build_sim(n, QualitySpec::all_good(k), seed, colony::optimal(n));
        // Snapshot the active-commitment histogram at every cycle end
        // (phase R4).
        let mut cycle_ends: Vec<Vec<usize>> = Vec::new();
        let mut detector_done = false;
        for _ in 0..20_000 {
            if detector_done {
                break;
            }
            sim.step().expect("legal run");
            let round = sim.round();
            if CyclePhase::of_round(round) == Some(CyclePhase::R4) {
                let snap = RoundSnapshot::capture(&sim);
                detector_done = snap.roles.final_count == n;
                cycle_ends.push(snap.active_committed);
            }
        }
        for pair in cycle_ends.windows(2) {
            let competing: Vec<usize> = pair[0]
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| i)
                .collect();
            if competing.len() < 2 {
                continue;
            }
            for &nest in &competing {
                stats.observations += 1;
                if pair[1][nest] == 0 {
                    stats.drops += 1;
                }
            }
        }
    }
    stats
}

/// Runs experiment F8 (Lemma 4.2).
#[must_use]
pub fn run_f8(mode: Mode) -> ExperimentReport {
    let runs = mode.trials(8, 40);
    let configs = [(128usize, 4usize), (256, 8), (512, 16)];

    let mut table = Table::new(["n", "k", "observations", "drop rate", "bound 1/66"]);
    let mut rates = Summary::new();
    let mut all_above = true;
    for (ci, &(n, k)) in configs.iter().enumerate() {
        let stats = measure_dropout(n, k, runs, ci as u64);
        let rate = stats.rate();
        rates.push(rate);
        if stats.observations > 0 && rate < 1.0 / 66.0 {
            all_above = false;
        }
        table.row([
            n.to_string(),
            k.to_string(),
            stats.observations.to_string(),
            fmt_f64(rate, 3),
            fmt_f64(1.0 / 66.0, 3),
        ]);
    }

    let findings = vec![Finding::new(
        "each competing nest drops out with probability ≥ 1/66 per cycle (Lemma 4.2)",
        format!("mean empirical drop rate {:.3}", rates.mean()),
        all_above && rates.mean() >= 1.0 / 66.0,
    )];

    let body = format!(
        "instrumented optimal runs (all nests good), {runs} runs per row;\n\
         a drop = a nest with active ants at one cycle end and none at the next\n\n{table}"
    );
    ExperimentReport {
        id: "F8",
        title: "Lemma 4.2 — competing nests drop out at ≥ 1/66 per cycle",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_stats_rate() {
        let stats = DropOutStats {
            observations: 10,
            drops: 3,
        };
        assert!((stats.rate() - 0.3).abs() < 1e-12);
        assert_eq!(
            DropOutStats {
                observations: 0,
                drops: 0
            }
            .rate(),
            0.0
        );
    }

    #[test]
    fn f8_quick_passes() {
        let report = run_f8(Mode::Quick);
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
