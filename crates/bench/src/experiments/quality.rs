//! F14 — Section 6's non-binary nest qualities: the speed/accuracy
//! trade-off.
//!
//! Two nests with a quality gap; the quality-weighted agent recruits with
//! probability `(count/n)·qᵞ`. Sweeping the selectivity exponent `γ` and
//! the gap measures how reliably and how quickly the colony picks the
//! better nest — the tunable collective decision-making of Pratt &
//! Sumpter (2006) that the paper cites as motivation.

use hh_analysis::{fmt_f64, Summary, Table};
use hh_core::colony;
use hh_model::{Quality, QualitySpec};
use hh_sim::{run_trials, ConvergenceRule, ScenarioSpec};

use super::common::cell_seed;
use super::{ExperimentReport, Finding, Mode};

/// Aggregated outcome of one (γ, gap) cell.
#[derive(Debug, Clone)]
pub struct NestWins {
    /// Trials that reached consensus.
    pub solved: usize,
    /// Of those, how many picked the better nest.
    pub best_wins: usize,
    /// Rounds to consensus over the solved trials.
    pub rounds: Summary,
}

impl NestWins {
    /// Fraction of solved trials in which the better nest won.
    #[must_use]
    pub fn best_win_rate(&self) -> f64 {
        if self.solved == 0 {
            0.0
        } else {
            self.best_wins as f64 / self.solved as f64
        }
    }
}

/// Measures one (γ, gap) cell: probability the better nest wins and mean
/// rounds.
#[must_use]
pub fn measure_quality_cell(
    n: usize,
    top: f64,
    gap: f64,
    gamma: f64,
    trials: usize,
    cell: u64,
) -> NestWins {
    let spec = QualitySpec::Explicit(vec![
        Quality::new(top).expect("valid quality"),
        Quality::new(top - gap).expect("valid quality"),
    ]);
    let outcomes = run_trials(trials, 60_000, ConvergenceRule::commitment_any(), |trial| {
        let seed = cell_seed(14, cell, trial);
        ScenarioSpec::new(n, spec.clone())
            .seed(seed)
            .reveal_quality_on_go()
            .build_simulation(colony::quality(n, seed, gamma))
    })
    .expect("valid configuration");

    let mut wins = 0usize;
    let mut solved = 0usize;
    let mut rounds = Summary::new();
    for outcome in &outcomes {
        if let Some(s) = &outcome.solved {
            solved += 1;
            rounds.push(s.round as f64);
            if s.nest == hh_model::NestId::candidate(1) {
                wins += 1;
            }
        }
    }
    NestWins {
        solved,
        best_wins: wins,
        rounds,
    }
}

/// Runs experiment F14.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(12, 48);
    let n = 128;
    let gammas = [0.0, 1.0, 2.0, 4.0];
    let gaps = [0.1, 0.3, 0.6];

    let mut body = format!(
        "two nests, better quality 0.9; n = {n}, {trials} trials per cell;\n\
         cells show P[better nest wins] and (mean rounds)\n\n"
    );
    let mut table = Table::new(["gamma", "gap 0.1", "gap 0.3", "gap 0.6"]);
    let mut accuracy: Vec<Vec<f64>> = Vec::new();
    let mut speed: Vec<Vec<f64>> = Vec::new();
    for (gi, &gamma) in gammas.iter().enumerate() {
        let mut row = vec![fmt_f64(gamma, 1)];
        let mut acc_row = Vec::new();
        let mut spd_row = Vec::new();
        for (pi, &gap) in gaps.iter().enumerate() {
            let cell =
                measure_quality_cell(n, 0.9, gap, gamma, trials, (gi * gaps.len() + pi) as u64);
            let p_best = cell.best_win_rate();
            acc_row.push(p_best);
            spd_row.push(cell.rounds.mean());
            row.push(format!(
                "{}% ({})",
                fmt_f64(p_best * 100.0, 0),
                fmt_f64(cell.rounds.mean(), 0)
            ));
        }
        accuracy.push(acc_row);
        speed.push(spd_row);
        table.row(row);
    }
    body.push_str(&table.to_string());

    // Shape checks on the widest gap column and the accuracy/γ relation.
    let last_gap = gaps.len() - 1;
    let findings = vec![
        Finding::new(
            "accuracy increases with γ (selectivity buys correctness)",
            format!(
                "P[best] at gap 0.6: γ=0 → {:.0}%, γ=4 → {:.0}%",
                accuracy[0][last_gap] * 100.0,
                accuracy[gammas.len() - 1][last_gap] * 100.0
            ),
            accuracy[gammas.len() - 1][last_gap] >= accuracy[0][last_gap],
        ),
        Finding::new(
            "high γ with a clear gap is near-perfectly accurate",
            format!(
                "P[best] = {:.0}% at γ=4, gap 0.6",
                accuracy[gammas.len() - 1][last_gap] * 100.0
            ),
            accuracy[gammas.len() - 1][last_gap] >= 0.9,
        ),
        Finding::new(
            "γ = 0 ignores quality (≈ coin-flip winner at any gap)",
            format!(
                "P[best] = {:.0}% at γ=0, gap 0.6",
                accuracy[0][last_gap] * 100.0
            ),
            (0.2..=0.8).contains(&accuracy[0][last_gap]),
        ),
    ];

    ExperimentReport {
        id: "F14",
        title: "Section 6 — non-binary quality: speed/accuracy",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_gamma_prefers_better_nest() {
        let cell = measure_quality_cell(64, 0.9, 0.5, 4.0, 8, 999);
        assert!(cell.solved > 0);
        assert!(cell.best_win_rate() >= 0.5);
    }
}
