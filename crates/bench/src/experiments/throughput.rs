//! T2 — engineering throughput of the executor.
//!
//! Not a paper claim: wall-clock sanity numbers (rounds/sec and
//! ant·rounds/sec) for the synchronous executor across colony sizes,
//! recorded so performance regressions are visible next to the science.

use std::time::Instant;

use hh_analysis::{fmt_f64, Table};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};

use super::common::cell_seed;
use super::{ExperimentReport, Finding, Mode};

/// Measured executor throughput at one colony size.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Simulated rounds per wall-clock second.
    pub rounds_per_sec: f64,
    /// Ant-rounds (agent steps) per wall-clock second.
    pub ant_rounds_per_sec: f64,
}

/// Measures steady-state executor throughput for the simple colony.
#[must_use]
// Wall-clock reads are banned workspace-wide (clippy.toml mirrors the
// hh_lint `wall-clock` rule); measuring throughput is the one job that
// genuinely needs them, and hh-bench is outside the engine contract.
#[allow(clippy::disallowed_methods)]
pub fn measure_throughput(n: usize, rounds: u64, cell: u64) -> Throughput {
    let scenario = Scenario::custom(
        format!("t2-n{n}"),
        n,
        QualityProfile::AllGood { k: 4 },
        FaultSchedule::None,
        ColonyMix::Uniform(Algorithm::Simple),
    )
    .base_seed_value(cell_seed(22, cell, 0));
    let mut sim = scenario
        .build(scenario.trial_seed(0))
        .expect("valid experiment configuration");
    // Warm-up: past the search round.
    for _ in 0..4 {
        sim.step_in_place().expect("legal run");
    }
    let start = Instant::now();
    // The engine's hot path: the convergence loop (detector included).
    // Simple agents never report the final state, so the all-final rule
    // cannot fire and the loop executes exactly `rounds` rounds.
    let out = sim
        .run_to_convergence(hh_sim::ConvergenceRule::all_final(), rounds)
        .expect("legal run");
    assert_eq!(out.rounds_run, rounds, "rule must not fire");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    Throughput {
        rounds_per_sec: rounds as f64 / elapsed,
        ant_rounds_per_sec: (rounds as f64 * n as f64) / elapsed,
    }
}

/// Runs experiment T2.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let rounds = match mode {
        Mode::Quick => 2_000,
        Mode::Full => 20_000,
    };
    let ns = [256usize, 1_024, 4_096, 16_384];

    let mut table = Table::new(["n", "rounds/sec", "ant·rounds/sec"]);
    let mut slowest_ant_rate = f64::INFINITY;
    for (ni, &n) in ns.iter().enumerate() {
        let t = measure_throughput(n, rounds, ni as u64);
        slowest_ant_rate = slowest_ant_rate.min(t.ant_rounds_per_sec);
        table.row([
            n.to_string(),
            fmt_f64(t.rounds_per_sec, 0),
            fmt_f64(t.ant_rounds_per_sec, 0),
        ]);
    }

    let findings = vec![Finding::new(
        "the executor sustains at least one million agent steps per second",
        format!(
            "slowest configuration: {:.0} ant·rounds/sec",
            slowest_ant_rate
        ),
        slowest_ant_rate >= 1e6,
    )];

    let body = format!("simple colony, all nests good, {rounds} timed rounds per row\n\n{table}");
    ExperimentReport {
        id: "T2",
        title: "Engineering throughput (ant·rounds/sec)",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive() {
        let t = measure_throughput(64, 50, 9);
        assert!(t.rounds_per_sec > 0.0);
        assert!(t.ant_rounds_per_sec > t.rounds_per_sec);
    }
}
