//! F18 — ablation of the adaptive-rate design (DESIGN.md clarification
//! 10).
//!
//! The paper's Section 6 sketch fixes no schedule for the adaptive
//! recruitment rate; `hh-core::adaptive` documents two instantiations
//! that fail and one that works. This ablation runs all three against
//! the paper's plain rule on the same instances, turning the design
//! discussion into a measurement:
//!
//! * **chosen** — `p = max(c/n, min(1, θ·(c/n)·k̃(r)))` with `k̃` decaying
//!   `√n → 2` (the shipped [`AdaptivePolicy`](hh_core::AdaptivePolicy));
//! * **concave** — smooth saturation `p = θ·c/(c + n/k̃(r))` with a
//!   *growing* estimate: concavity in `c` boosts the smaller nest's
//!   relative rate, weakening the rich-get-richer drift;
//! * **hard-cap-growing** — `p = min(θ, (c/n)·k̃(r))` with a growing
//!   estimate: once every survivor pins at the common cap θ, their rates
//!   equalize and the decision degenerates into an (extremely slow)
//!   unbiased random walk.

use hh_analysis::{fmt_f64, Table};
use hh_core::{colony, RecruitPolicy, UrnAnt, UrnOptions};
use hh_sim::ConvergenceRule;

use super::common::{measure_cell, plain_scenario};
use super::{ExperimentReport, Finding, Mode};

/// The first rejected design: concave saturation with a growing
/// estimate (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ConcavePolicy {
    /// Saturation rate.
    pub theta: f64,
}

impl ConcavePolicy {
    fn k_estimate(round: u64, n: usize) -> f64 {
        let log2n = (n.max(2) as f64).log2().max(1.0);
        2f64.powf((1.0 + round as f64 / (2.0 * log2n)).min(64.0))
            .min(n as f64)
    }
}

impl RecruitPolicy for ConcavePolicy {
    fn recruit_probability(&self, count: usize, n: usize, round: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let pivot = (n as f64 / Self::k_estimate(round, n)).max(1.0);
        self.theta * count as f64 / (count as f64 + pivot)
    }

    fn label(&self) -> &'static str {
        "ablation-concave"
    }
}

/// The second rejected design: hard cap with a growing estimate.
#[derive(Debug, Clone, Copy)]
pub struct HardCapGrowingPolicy {
    /// The common cap every large nest pins at.
    pub theta: f64,
}

impl RecruitPolicy for HardCapGrowingPolicy {
    fn recruit_probability(&self, count: usize, n: usize, round: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let k_tilde = ConcavePolicy::k_estimate(round, n);
        (count as f64 / n as f64 * k_tilde).min(self.theta)
    }

    fn label(&self) -> &'static str {
        "ablation-hard-cap"
    }
}

/// Runs experiment F18.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    let trials = mode.trials(6, 16);
    let n = 512;
    let k = match mode {
        Mode::Quick => 8,
        Mode::Full => 8,
    };
    let max_rounds = 40_000;

    let mut table = Table::new(["rule", "median rounds", "success", "vs simple"]);
    let mut medians = Vec::new();

    let simple = measure_cell(
        trials,
        max_rounds,
        ConvergenceRule::commitment(),
        18,
        0,
        plain_scenario(n, k, k),
        move |seed| colony::simple(n, seed),
    );
    let baseline = simple.median_rounds();
    table.row([
        "simple (paper)".to_string(),
        fmt_f64(baseline, 1),
        format!("{}%", fmt_f64(simple.success * 100.0, 0)),
        "1.00x".to_string(),
    ]);

    type ColonyFactory = Box<dyn Fn(u64) -> hh_core::Colony + Sync>;
    let variants: Vec<(&str, ColonyFactory)> = vec![
        (
            "chosen (decaying k̃ + floor)",
            Box::new(move |seed| colony::adaptive(n, seed)),
        ),
        (
            "concave saturation",
            Box::new(move |seed| {
                colony::from_factory(n, seed, |_, ant_seed| {
                    // Bespoke policy: runs through the Custom escape hatch.
                    hh_core::AnyAgent::custom(UrnAnt::with_policy(
                        n,
                        ant_seed,
                        ConcavePolicy { theta: 0.5 },
                        UrnOptions::paper(),
                    ))
                })
            }),
        ),
        (
            "hard cap, growing k̃",
            Box::new(move |seed| {
                colony::from_factory(n, seed, |_, ant_seed| {
                    hh_core::AnyAgent::custom(UrnAnt::with_policy(
                        n,
                        ant_seed,
                        HardCapGrowingPolicy { theta: 0.5 },
                        UrnOptions::paper(),
                    ))
                })
            }),
        ),
    ];

    for (vi, (name, build)) in variants.iter().enumerate() {
        let cell = measure_cell(
            trials,
            max_rounds,
            ConvergenceRule::commitment(),
            18,
            vi as u64 + 1,
            plain_scenario(n, k, k),
            build,
        );
        let median = if cell.success > 0.0 {
            cell.median_rounds()
        } else {
            max_rounds as f64
        };
        medians.push((name.to_string(), median, cell.success));
        table.row([
            (*name).to_string(),
            if cell.success > 0.0 {
                fmt_f64(cell.median_rounds(), 1)
            } else {
                format!(">{max_rounds}")
            },
            format!("{}%", fmt_f64(cell.success * 100.0, 0)),
            format!("{}x", fmt_f64(baseline / median, 2)),
        ]);
    }

    let chosen = &medians[0];
    let concave = &medians[1];
    let hard_cap = &medians[2];
    let findings = vec![
        Finding::new(
            "the chosen adaptive rule beats the paper's simple rule at k = 8",
            format!("{:.1} vs {:.1} median rounds", chosen.1, baseline),
            chosen.1 < baseline && chosen.2 > 0.9,
        ),
        Finding::new(
            "concave saturation is strictly worse than the chosen rule",
            format!("{:.1} vs {:.1} median rounds", concave.1, chosen.1),
            concave.1 > chosen.1,
        ),
        Finding::new(
            "a growing hard-capped schedule is strictly worse than the chosen rule",
            format!("{:.1} vs {:.1} median rounds", hard_cap.1, chosen.1),
            hard_cap.1 > chosen.1,
        ),
    ];

    let body = format!(
        "n = {n}, k = {k} (all good), {trials} trials per rule, round budget {max_rounds};\n\
         the two rejected rules are the documented design failures of hh-core::adaptive\n\n{table}"
    );
    ExperimentReport {
        id: "F18",
        title: "Ablation — adaptive-rate design choices",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::AdaptivePolicy;

    #[test]
    fn rejected_policies_are_well_formed() {
        let concave = ConcavePolicy { theta: 0.5 };
        let cap = HardCapGrowingPolicy { theta: 0.5 };
        for count in [0usize, 1, 100, 512] {
            for round in [0u64, 100, 100_000] {
                let a = concave.recruit_probability(count, 512, round);
                let b = cap.recruit_probability(count, 512, round);
                assert!((0.0..=1.0).contains(&a));
                assert!((0.0..=1.0).contains(&b));
            }
        }
        assert_eq!(concave.recruit_probability(0, 512, 5), 0.0);
        assert_eq!(cap.recruit_probability(0, 512, 5), 0.0);
    }

    #[test]
    fn chosen_policy_is_the_shipped_one() {
        // Guard: the ablation's "chosen" row must be the standard policy.
        let standard = AdaptivePolicy::standard();
        assert_eq!(standard.theta, 0.4);
        assert_eq!(standard.tau, 1.0);
    }
}
