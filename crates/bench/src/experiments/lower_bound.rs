//! F1 — Theorem 3.2: every algorithm needs Ω(log n) rounds.
//!
//! Measures the best-case information-spreading processes
//! ([`SpreaderAnt`](hh_core::SpreaderAnt)) in the lower-bound setting (a
//! single good nest among `k = 2`): rounds until every ant knows the
//! winning nest, versus `n`. The paper's bound says *no* strategy can beat
//! `(log₄ n)/2 − O(1)`; the measured curves must sit above the bound line
//! and grow logarithmically.

use hh_analysis::{fit_log2, fmt_f64, Table};
use hh_core::{colony, SpreadStrategy};
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};

use super::common::{doubling, measure_cell};
use super::{ExperimentReport, Finding, Mode};

/// The analytic floor from the proof of Theorem 3.2 (constants dropped):
/// `(log₄ n)/2 = log₂(n)/4`.
#[must_use]
pub fn theorem_3_2_floor(n: usize) -> f64 {
    (n.max(1) as f64).log2() / 4.0
}

/// Runs experiment F1.
#[must_use]
pub fn run(mode: Mode) -> ExperimentReport {
    // Quick mode still needs a tight estimator: the log-fit R² gate
    // below is applied to per-cell means, whose per-doubling signal is
    // under a round — small-trial means are noisy enough to flip it on
    // an unlucky seed stream. Spreading runs are cheap (the whole F1
    // quick sweep is ~0.1 s), so quick matches full here.
    let trials = 24;
    let ns = match mode {
        Mode::Quick => doubling(6, 11),
        Mode::Full => doubling(6, 14),
    };
    let strategies = [
        SpreadStrategy::WaitAtHome,
        SpreadStrategy::SearchForever,
        SpreadStrategy::Hybrid {
            search_probability: 0.3,
        },
    ];

    let mut table = Table::new([
        "n",
        "wait (rounds)",
        "search (rounds)",
        "hybrid (rounds)",
        "bound (log2 n)/4",
    ]);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    let mut all_above_bound = true;

    for (ni, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (si, &strategy) in strategies.iter().enumerate() {
            let cell = measure_cell(
                trials,
                50_000,
                ConvergenceRule::commitment(),
                1,
                (ni * strategies.len() + si) as u64,
                move |_| ScenarioSpec::new(n, QualitySpec::single_good(2, 1)),
                move |seed| colony::spreaders(n, seed, strategy),
            );
            assert!(cell.success > 0.99, "spreaders must always finish");
            let mean = cell.mean_rounds();
            if mean < theorem_3_2_floor(n) {
                all_above_bound = false;
            }
            means[si].push(mean);
            row.push(fmt_f64(mean, 1));
        }
        row.push(fmt_f64(theorem_3_2_floor(n), 1));
        table.row(row);
    }

    let mut findings = Vec::new();
    findings.push(Finding::new(
        "no strategy beats the Theorem 3.2 floor (log2 n)/4",
        if all_above_bound {
            "all means above the bound line"
        } else {
            "a mean dipped below the bound"
        }
        .to_string(),
        all_above_bound,
    ));

    // The fastest strategy must itself grow like log n: strong positive
    // log-fit, and sublinear growth across the doubling sweep.
    let wait_fit = fit_log2(&ns, &means[0]).expect("fit");
    findings.push(Finding::new(
        "best-case spreading grows ≈ a·log2 n (Θ(log n), matching the bound)",
        format!(
            "wait-at-home fit: {:.2}·log2(n) + {:.2}, R² = {:.3}",
            wait_fit.slope, wait_fit.intercept, wait_fit.r_squared
        ),
        wait_fit.slope > 0.0 && wait_fit.r_squared >= 0.8,
    ));

    let growth = hh_analysis::growth_assessment(&means[0]).expect("growth");
    findings.push(Finding::new(
        "doubling n adds ≈ constant rounds (log growth, not linear)",
        format!(
            "mean step per doubling {:.2} rounds; mean ratio {:.2}",
            growth.mean_difference, growth.mean_ratio
        ),
        growth.looks_sublinear(1.5),
    ));

    let body = format!(
        "single good nest among k = 2; {trials} trials per cell;\n\
         rounds until every ant is informed of the winner\n\n{table}"
    );
    ExperimentReport {
        id: "F1",
        title: "Theorem 3.2 — Ω(log n) lower bound",
        body,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_logarithmic() {
        assert!(theorem_3_2_floor(16) < theorem_3_2_floor(1024));
        assert!((theorem_3_2_floor(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quick_mode_runs_and_passes() {
        let report = run(Mode::Quick);
        assert_eq!(report.id, "F1");
        assert!(!report.findings.is_empty());
        assert!(report.all_passed(), "findings: {:#?}", report.findings);
    }
}
