//! Shared measurement helpers for the experiment modules.

use hh_analysis::{Quantiles, Summary};
use hh_core::Colony;
use hh_model::QualitySpec;
use hh_sim::registry::Scenario;
use hh_sim::{run_trials, solved_rounds, success_rate, ConvergenceRule, ScenarioSpec, Simulation};

/// Base seed for all experiments; every (experiment, cell, trial) derives
/// from it so the whole harness is reproducible.
pub const BASE_SEED: u64 = 0x20150514; // the paper's arXiv date

/// Derives the per-trial seed for a sweep cell.
#[must_use]
pub fn cell_seed(experiment: u64, cell: u64, trial: usize) -> u64 {
    hh_model::seeding::derive_seed(
        BASE_SEED ^ experiment.wrapping_mul(0x9E37_79B9),
        hh_model::seeding::StreamKind::Auxiliary,
        cell.wrapping_mul(1_000_003) + trial as u64,
    )
}

/// Aggregated result of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Convergence rounds over the solved trials.
    pub rounds: Summary,
    /// Raw per-trial convergence rounds (solved trials only).
    pub rounds_list: Vec<f64>,
    /// Fraction of trials that solved.
    pub success: f64,
}

impl CellResult {
    /// Mean rounds of the solved trials (`NaN`-free: 0 when none solved).
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.mean()
        }
    }

    /// Median rounds of the solved trials — robust to the occasional
    /// slow outlier execution; 0 when none solved.
    #[must_use]
    pub fn median_rounds(&self) -> f64 {
        Quantiles::new(self.rounds_list.clone())
            .map(|q| q.median())
            .unwrap_or(0.0)
    }
}

/// Measures one sweep cell: `trials` runs of a colony built by
/// `colony(seed)` on the scenario built by `scenario(seed)`.
///
/// # Panics
///
/// Panics on harness errors (invalid configuration), which indicate bugs
/// in the experiment definition rather than interesting outcomes.
pub fn measure_cell(
    trials: usize,
    max_rounds: u64,
    rule: ConvergenceRule,
    experiment: u64,
    cell: u64,
    scenario: impl Fn(u64) -> ScenarioSpec + Sync,
    colony: impl Fn(u64) -> Colony + Sync,
) -> CellResult {
    let outcomes = run_trials(trials, max_rounds, rule, |trial| {
        let seed = cell_seed(experiment, cell, trial);
        scenario(seed).seed(seed).build_simulation(colony(seed))
    })
    .expect("experiment cell must be a valid configuration");
    let rounds_list = solved_rounds(&outcomes);
    CellResult {
        rounds: rounds_list.iter().copied().collect(),
        rounds_list,
        success: success_rate(&outcomes),
    }
}

/// Convenience: an unperturbed scenario with a good-prefix quality spec.
pub fn plain_scenario(n: usize, k: usize, good: usize) -> impl Fn(u64) -> ScenarioSpec + Sync {
    move |_seed| ScenarioSpec::new(n, QualitySpec::good_prefix(k, good))
}

/// Measures one sweep cell described as a registry [`Scenario`]: runs
/// `trials` trials under the scenario's own convergence rule and round
/// budget, with trial seeds derived from its base seed (experiments pin
/// the base seed to [`cell_seed`] for sweep-stable reproducibility).
///
/// # Panics
///
/// Panics on harness errors (invalid configuration), which indicate bugs
/// in the scenario definition rather than interesting outcomes.
#[must_use]
pub fn measure_scenario(trials: usize, scenario: &Scenario) -> CellResult {
    let outcomes = scenario
        .run_trials(trials)
        .expect("registry scenario must be a valid configuration");
    let rounds_list = solved_rounds(&outcomes);
    CellResult {
        rounds: rounds_list.iter().copied().collect(),
        rounds_list,
        success: success_rate(&outcomes),
    }
}

/// Builds a simulation directly (for instrumented single runs).
///
/// # Panics
///
/// Panics on invalid configurations (experiment-definition bugs).
#[must_use]
pub fn build_sim(n: usize, spec: QualitySpec, seed: u64, agents: Colony) -> Simulation {
    ScenarioSpec::new(n, spec)
        .seed(seed)
        .build_simulation(agents)
        .expect("valid experiment configuration")
}

/// Formats a `doubling sweep` of n values: 2^lo ..= 2^hi.
#[must_use]
pub fn doubling(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|e| 1usize << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_cells_and_trials() {
        let a = cell_seed(1, 0, 0);
        let b = cell_seed(1, 0, 1);
        let c = cell_seed(1, 1, 0);
        let d = cell_seed(2, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn doubling_sweep() {
        assert_eq!(doubling(3, 6), vec![8, 16, 32, 64]);
    }

    #[test]
    fn measure_cell_runs() {
        let result = measure_cell(
            3,
            3_000,
            ConvergenceRule::commitment(),
            99,
            0,
            plain_scenario(16, 2, 1),
            |seed| hh_core::colony::simple(16, seed),
        );
        assert!(result.success > 0.0);
        assert!(result.mean_rounds() >= 1.0);
    }
}
