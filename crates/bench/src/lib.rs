//! # hh-bench — the experiment harness of the house-hunting reproduction
//!
//! One module per experiment family, each regenerating the figures/tables
//! listed in the repository's `EXPERIMENTS.md` (experiment ids F1–F18,
//! T1–T2; that file is generated from [`all_experiments()`], the source
//! of truth). Since the paper is a theory paper, its "evaluation" is its
//! theorems; every experiment here turns one theorem/lemma (or Section 6
//! claim) into a measured series plus machine-checked [`Finding`]s about
//! the predicted *shape*. Workload cells are pulled from the
//! `hh_sim::registry` scenario axes wherever an experiment is
//! scenario-shaped.
//!
//! Run everything with the bundled binary:
//!
//! ```text
//! cargo run --release -p hh-bench --bin experiments            # full
//! cargo run --release -p hh-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p hh-bench --bin experiments -- F3 F5   # selected
//! ```
//!
//! The `benches/` directory holds the criterion wall-clock benchmarks for
//! the same workloads (one target per experiment family).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;

pub use experiments::{
    all_experiments, experiments_index_markdown, Experiment, ExperimentReport, Finding, Mode,
};
