//! The experiment runner: regenerates every figure/table of
//! `EXPERIMENTS.md`.
//!
//! ```text
//! experiments [--quick] [IDS...]
//! ```
//!
//! With no ids, runs the full registry in order and prints a T1 summary
//! table of all findings at the end. Exit code is 0 if every finding
//! passed, 1 otherwise.

use std::time::Instant;

use hh_analysis::Table;
use hh_bench::{all_experiments, experiments_index_markdown, ExperimentReport, Mode};

// The harness times each experiment for the progress report — a
// legitimate wall-clock read outside the engine's determinism contract
// (clippy.toml mirrors the hh_lint `wall-clock` rule).
#[allow(clippy::disallowed_methods)]
fn main() {
    let mut mode = Mode::Full;
    let mut selected: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => mode = Mode::Quick,
            "--full" => mode = Mode::Full,
            "--index" => {
                // The EXPERIMENTS.md registry index, for regeneration.
                print!("{}", experiments_index_markdown());
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--index] [IDS...]   (e.g. experiments --quick F3 F5)"
                );
                return;
            }
            id => selected.push(id.to_ascii_uppercase()),
        }
    }

    let registry = all_experiments();
    let to_run: Vec<_> = registry
        .iter()
        .filter(|e| selected.is_empty() || selected.iter().any(|s| s == e.id))
        .collect();
    if to_run.is_empty() {
        eprintln!("no experiments match {selected:?}; known ids:");
        for e in &registry {
            eprintln!("  {}  {}", e.id, e.title);
        }
        std::process::exit(2);
    }

    println!(
        "house-hunting experiment harness ({} mode, {} experiments)\n",
        if mode == Mode::Quick { "quick" } else { "full" },
        to_run.len()
    );

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for experiment in to_run {
        let start = Instant::now();
        println!("=== {}: {} ===", experiment.id, experiment.title);
        let report = (experiment.run)(mode);
        println!("{}", report.body);
        for finding in &report.findings {
            println!(
                "  [{}] {} — {}",
                if finding.pass { "PASS" } else { "FAIL" },
                finding.claim,
                finding.measured
            );
        }
        println!("  ({:.1}s)\n", start.elapsed().as_secs_f64());
        reports.push(report);
    }

    // T1: the summary table.
    println!("=== T1: summary — paper claims vs measurements ===");
    let mut table = Table::new(["id", "status", "claim", "measured"]);
    let mut failures = 0;
    for report in &reports {
        for finding in &report.findings {
            if !finding.pass {
                failures += 1;
            }
            table.row([
                report.id.to_string(),
                if finding.pass { "PASS" } else { "FAIL" }.to_string(),
                finding.claim.clone(),
                finding.measured.clone(),
            ]);
        }
    }
    println!("{table}");
    if failures > 0 {
        println!("{failures} finding(s) FAILED");
        std::process::exit(1);
    }
    println!("all findings passed");
}
