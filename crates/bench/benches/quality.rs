//! Criterion bench for experiment F14: quality-weighted colonies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_model::Quality;
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use std::hint::black_box;

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/converge_any");
    group.sample_size(10);
    for gamma in [0.0f64, 2.0] {
        let scenario = Scenario::custom(
            format!("bench-quality-gamma{gamma}"),
            128,
            QualityProfile::Explicit(vec![
                Quality::new(0.9).expect("valid"),
                Quality::new(0.5).expect("valid"),
            ]),
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Quality { gamma }),
        )
        .max_rounds(60_000);
        group.bench_with_input(
            BenchmarkId::new("gamma", format!("{gamma}")),
            &scenario,
            |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(s.run(seed).expect("runs"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
