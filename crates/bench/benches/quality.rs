//! Criterion bench for experiment F14: quality-weighted colonies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::colony;
use hh_model::{Quality, QualitySpec};
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/converge_any");
    group.sample_size(10);
    for gamma in [0.0f64, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("gamma", format!("{gamma}")),
            &gamma,
            |b, &gamma| {
                let spec = QualitySpec::Explicit(vec![
                    Quality::new(0.9).expect("valid"),
                    Quality::new(0.5).expect("valid"),
                ]);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = ScenarioSpec::new(128, spec.clone())
                        .seed(seed)
                        .reveal_quality_on_go()
                        .build_simulation(colony::quality(128, seed, gamma))
                        .expect("valid");
                    black_box(
                        sim.run_to_convergence(ConvergenceRule::commitment_any(), 60_000)
                            .expect("runs"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
