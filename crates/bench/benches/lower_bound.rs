//! Criterion bench for experiment F1: best-case information spreading.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::{colony, SpreadStrategy};
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_spreading(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound/spread_to_all_informed");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("wait_at_home", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = ScenarioSpec::new(n, QualitySpec::single_good(2, 1))
                    .seed(seed)
                    .build_simulation(colony::spreaders(n, seed, SpreadStrategy::WaitAtHome))
                    .expect("valid");
                black_box(
                    sim.run_to_convergence(ConvergenceRule::commitment(), 50_000)
                        .expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spreading);
criterion_main!(benches);
