//! Criterion bench for experiment F2: the pairing process itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hh_model::recruitment::{pair_ants, RecruitCall};
use hh_model::{AntId, NestId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("recruitment/pair_ants");
    for m in [64usize, 1024, 16_384] {
        let calls: Vec<RecruitCall> = (0..m)
            .map(|i| RecruitCall::new(AntId::new(i), i % 2 == 0, NestId::candidate(1 + i % 4)))
            .collect();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &calls, |b, calls| {
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| black_box(pair_ants(calls, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairing);
criterion_main!(benches);
