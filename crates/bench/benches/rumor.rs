//! Criterion bench for experiment F15: rumor spreading.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_rumor::{spread, Protocol};
use std::hint::black_box;

fn bench_rumor(c: &mut Criterion) {
    let mut group = c.benchmark_group("rumor/spread_complete_graph");
    for n in [1024usize, 16_384] {
        for protocol in [Protocol::Push, Protocol::PushPull] {
            group.bench_with_input(
                BenchmarkId::new(protocol.label(), n),
                &(n, protocol),
                |b, &(n, protocol)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(spread(n, protocol, seed))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rumor);
criterion_main!(benches);
