//! Criterion bench for experiment F7: both algorithms on one instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::colony;
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_head_to_head(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_to_head/n1024_k8");
    group.sample_size(10);
    let n = 1024;
    group.bench_function(BenchmarkId::new("optimal", n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = ScenarioSpec::new(n, QualitySpec::all_good(8))
                .seed(seed)
                .build_simulation(colony::optimal(n))
                .expect("valid");
            black_box(
                sim.run_to_convergence(ConvergenceRule::all_final(), 60_000)
                    .expect("runs"),
            )
        });
    });
    group.bench_function(BenchmarkId::new("simple", n), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = ScenarioSpec::new(n, QualitySpec::all_good(8))
                .seed(seed)
                .build_simulation(colony::simple(n, seed))
                .expect("valid");
            black_box(
                sim.run_to_convergence(ConvergenceRule::commitment(), 120_000)
                    .expect("runs"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_head_to_head);
criterion_main!(benches);
