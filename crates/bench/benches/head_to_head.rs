//! Criterion bench for experiment F7: both algorithms on one instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::ConvergenceRule;
use std::hint::black_box;

fn bench_head_to_head(c: &mut Criterion) {
    let mut group = c.benchmark_group("head_to_head/n1024_k8");
    group.sample_size(10);
    let n = 1024;
    for algorithm in [Algorithm::Optimal, Algorithm::Simple] {
        let (rule, budget) = match algorithm {
            Algorithm::Optimal => (ConvergenceRule::all_final(), 60_000),
            _ => (ConvergenceRule::commitment(), 120_000),
        };
        let scenario = Scenario::custom(
            format!("bench-h2h-{}", algorithm.label()),
            n,
            QualityProfile::AllGood { k: 8 },
            FaultSchedule::None,
            ColonyMix::Uniform(algorithm.clone()),
        )
        .rule(rule)
        .max_rounds(budget);
        group.bench_function(BenchmarkId::new(algorithm.label(), n), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(scenario.run(seed).expect("runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_head_to_head);
criterion_main!(benches);
