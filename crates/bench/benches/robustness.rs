//! Criterion bench for experiments F10–F12: perturbed executions.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_model::noise::CountNoise;
use hh_model::NoiseModel;
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::ConvergenceRule;
use std::hint::black_box;

fn bench_noisy_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness/simple_with_count_noise");
    group.sample_size(10);
    for sigma in [0.0f64, 0.3] {
        let scenario = Scenario::custom(
            format!("bench-noise-sigma{sigma}"),
            128,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Simple),
        )
        .noise(NoiseModel {
            count: CountNoise::multiplicative(sigma).expect("valid"),
            quality: Default::default(),
        })
        .rule(ConvergenceRule::stable_commitment(8))
        .max_rounds(30_000);
        group.bench_function(format!("sigma_{sigma}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(scenario.run(seed).expect("runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noisy_convergence);
criterion_main!(benches);
