//! Criterion bench for experiments F10–F12: perturbed executions.

use criterion::{criterion_group, criterion_main, Criterion};
use hh_core::colony;
use hh_model::noise::CountNoise;
use hh_model::{NoiseModel, QualitySpec};
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_noisy_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness/simple_with_count_noise");
    group.sample_size(10);
    for sigma in [0.0f64, 0.3] {
        group.bench_function(format!("sigma_{sigma}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = ScenarioSpec::new(128, QualitySpec::good_prefix(4, 2))
                    .seed(seed)
                    .noise(NoiseModel {
                        count: CountNoise::multiplicative(sigma).expect("valid"),
                        quality: Default::default(),
                    })
                    .build_simulation(colony::simple(128, seed))
                    .expect("valid");
                black_box(
                    sim.run_to_convergence(ConvergenceRule::stable_commitment(8), 30_000)
                        .expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_noisy_convergence);
criterion_main!(benches);
