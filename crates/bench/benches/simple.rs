//! Criterion bench for experiments F5/F6/F9/F16: the simple algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use std::hint::black_box;

fn bench_simple_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple/converge_commitment");
    group.sample_size(10);
    for (n, k) in [(256usize, 2usize), (1024, 2), (1024, 8)] {
        let scenario = Scenario::custom(
            format!("bench-simple-n{n}-k{k}"),
            n,
            QualityProfile::AllGood { k },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Simple),
        )
        .max_rounds(120_000);
        group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &scenario, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(s.run(seed).expect("runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simple_convergence);
criterion_main!(benches);
