//! Criterion bench for experiments F5/F6/F9/F16: the simple algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::colony;
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_simple_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("simple/converge_commitment");
    group.sample_size(10);
    for (n, k) in [(256usize, 2usize), (1024, 2), (1024, 8)] {
        group.bench_with_input(
            BenchmarkId::new(format!("k{k}"), n),
            &(n, k),
            |b, &(n, k)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut sim = ScenarioSpec::new(n, QualitySpec::all_good(k))
                        .seed(seed)
                        .build_simulation(colony::simple(n, seed))
                        .expect("valid");
                    black_box(
                        sim.run_to_convergence(ConvergenceRule::commitment(), 120_000)
                            .expect("runs"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simple_convergence);
criterion_main!(benches);
