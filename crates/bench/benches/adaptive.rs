//! Criterion bench for experiment F13: the adaptive-rate variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use std::hint::black_box;

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive/converge_commitment");
    group.sample_size(10);
    for k in [4usize, 16] {
        for algorithm in [Algorithm::Adaptive, Algorithm::Simple] {
            let scenario = Scenario::custom(
                format!("bench-{}-k{k}", algorithm.label()),
                512,
                QualityProfile::AllGood { k },
                FaultSchedule::None,
                ColonyMix::Uniform(algorithm.clone()),
            )
            .max_rounds(120_000);
            group.bench_with_input(BenchmarkId::new(algorithm.label(), k), &scenario, |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(s.run(seed).expect("runs"))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
