//! Criterion bench for experiment F13: the adaptive-rate variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::colony;
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive/converge_commitment");
    group.sample_size(10);
    for k in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("adaptive", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = ScenarioSpec::new(512, QualitySpec::all_good(k))
                    .seed(seed)
                    .build_simulation(colony::adaptive(512, seed))
                    .expect("valid");
                black_box(
                    sim.run_to_convergence(ConvergenceRule::commitment(), 120_000)
                        .expect("runs"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("simple", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = ScenarioSpec::new(512, QualitySpec::all_good(k))
                    .seed(seed)
                    .build_simulation(colony::simple(512, seed))
                    .expect("valid");
                black_box(
                    sim.run_to_convergence(ConvergenceRule::commitment(), 120_000)
                        .expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
