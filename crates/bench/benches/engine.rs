//! Criterion bench for the execution engine: rounds/sec at the
//! registry's three canonical scales.
//!
//! * `engine/steady_state_round` — the like-for-like successor of
//!   `throughput/steady_state_round` (same registry axes) through
//!   [`Simulation::step_in_place`], the materializing single-step path.
//! * `engine/detected_round` — the *true* hot path: the convergence loop
//!   (`run_to_convergence`), which elides the colony-sized outcome
//!   buffer and feeds the detector from the incremental census.
//! * `engine/quorum_round` — the detected loop under the `Quorum` rule
//!   on an idle-fraction colony: the robustness/idleness workloads whose
//!   detector previously rescanned all n agents into a hash map every
//!   round.
//! * `engine/trial` — whole trials (colony build + run to convergence)
//!   from the named catalog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hh_core::{AgentColumns, AgentColumnsMut};
use hh_sim::registry::{self, Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::{ConvergenceRule, EngineKind};
use std::hint::black_box;

fn steady_state_scenario(n: usize) -> Scenario {
    Scenario::custom(
        format!("bench-engine-n{n}"),
        n,
        QualityProfile::AllGood { k: 4 },
        FaultSchedule::None,
        ColonyMix::Uniform(Algorithm::Simple),
    )
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steady_state_round");
    for n in [256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= 4096 { 2000 } else { 5000 });
        let scenario = steady_state_scenario(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            // Real trials run rounds 1..convergence and stop (the runner's
            // detector halts the execution), so the representative round
            // mix is the *pre-consensus* competition regime. An open-ended
            // step loop would drift into a post-consensus state no
            // workload ever executes; reset well before symmetry breaks.
            // The rebuild lands in 1 of 200 samples and is part of real
            // trial cost anyway.
            let mut sim = s.build(1).expect("valid");
            let mut seed = 1u64;
            b.iter(|| {
                if sim.round() >= 200 {
                    seed = seed.wrapping_add(1);
                    sim = s.build(seed).expect("valid");
                }
                black_box(sim.step_in_place().expect("runs").outcomes.len())
            });
        });
    }
    group.finish();
}

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/trial");
    for name in ["all-good-race-256", "optimal-1024", "mega-colony-4096"] {
        let scenario = registry::lookup(name).expect("catalog entry");
        group.bench_with_input(BenchmarkId::from_parameter(name), &scenario, |b, s| {
            let mut seed = s.base_seed();
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let outcome = s.run(seed).expect("runs");
                black_box(outcome.rounds_run)
            });
        });
    }
    group.finish();
}

fn bench_detector_overhead(c: &mut Criterion) {
    // The detector reads the incrementally maintained tally, so running
    // with convergence checking should cost barely more per round than
    // raw stepping. Measured at the largest scale to keep the contrast
    // honest.
    let mut group = c.benchmark_group("engine/detected_round");
    let n = 4096usize;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(2000);
    let scenario = steady_state_scenario(n);
    group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
        // Same pre-consensus regime discipline as `steady_state_round`.
        let mut sim = s.build(1).expect("valid");
        let mut seed = 1u64;
        b.iter(|| {
            if sim.round() >= 200 {
                seed = seed.wrapping_add(1);
                sim = s.build(seed).expect("valid");
            }
            // One round under an unfireable rule (simple agents never
            // report the final state): the detector runs every round and
            // never stops the execution.
            black_box(
                sim.run_to_convergence(ConvergenceRule::all_final(), 1)
                    .expect("runs")
                    .rounds_run,
            )
        });
    });
    group.finish();
}

fn bench_quorum_rounds(c: &mut Criterion) {
    // The Afek–Gordon–Sulamy idle-fraction mix at the catalog's largest
    // scale, detected by its natural quorum rule — the workload family
    // the ROADMAP grows toward. The quorum window is set beyond the
    // budget so the detector runs every round and never stops the run.
    let mut group = c.benchmark_group("engine/quorum_round");
    let n = 4096usize;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(2000);
    let scenario = Scenario::custom(
        format!("bench-engine-idle-n{n}"),
        n,
        QualityProfile::GoodPrefix { k: 4, good: 2 },
        FaultSchedule::None,
        ColonyMix::IdleFraction {
            algorithm: Algorithm::Simple,
            idle: 0.3,
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
        let mut sim = s.build(1).expect("valid");
        let mut seed = 1u64;
        b.iter(|| {
            if sim.round() >= 200 {
                seed = seed.wrapping_add(1);
                sim = s.build(seed).expect("valid");
            }
            black_box(
                sim.run_to_convergence(ConvergenceRule::quorum(0.7, 1_000_000), 1)
                    .expect("runs")
                    .rounds_run,
            )
        });
    });
    group.finish();
}

fn bench_round_threads(c: &mut Criterion) {
    // The intra-round worker pool across its thread axis: the
    // detector-inclusive convergence loop (the true hot path) at the
    // catalog's large scales. Every cell of a given n executes the
    // bit-identical stochastic process — the contract the conformance
    // suite enforces — so the rows differ in wall clock only.
    let mut group = c.benchmark_group("engine/threads");
    for n in [4096usize, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= 16384 { 500 } else { 2000 });
        for threads in [1usize, 2, 4, 8] {
            let scenario = steady_state_scenario(n).round_threads(threads);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}/t{threads}")),
                &scenario,
                |b, s| {
                    // Same pre-consensus regime discipline as
                    // `steady_state_round`.
                    let mut sim = s.build(1).expect("valid");
                    let mut seed = 1u64;
                    b.iter(|| {
                        if sim.round() >= 200 {
                            seed = seed.wrapping_add(1);
                            sim = s.build(seed).expect("valid");
                        }
                        black_box(
                            sim.run_to_convergence(ConvergenceRule::all_final(), 1)
                                .expect("runs")
                                .rounds_run,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_draw_plane(c: &mut Criterion) {
    // The round-level draw plane against the fused per-row path it
    // replaced: both variants complete one choose pass over the same
    // steady-state urn band (RNG-only mutation, so the band can be
    // re-driven forever), differing only in how the recruit coins are
    // drawn — a dense plane fill consumed branchlessly, vs. an inline
    // draw inside each row's `choose`.
    let mut group = c.benchmark_group("engine/draw_plane");
    let n = 4096usize;
    group.throughput(Throughput::Elements(n as u64));
    // Reach the committed steady-state regime first: an all-search band
    // draws no coins and would bench an empty plane.
    let mut sim = steady_state_scenario(n).build(1).expect("valid");
    sim.run_to_convergence(ConvergenceRule::all_final(), 100)
        .expect("runs");
    group.bench_function(BenchmarkId::from_parameter("plane_fill"), |b| {
        let mut columns = AgentColumns::gather(sim.agents()).expect("uniform simple colony");
        let AgentColumnsMut::Simple(mut band) = columns.as_band_mut() else {
            unreachable!("simple colony gathers to the urn band");
        };
        let mut draws = Vec::with_capacity(n);
        let mut round = 200u64;
        b.iter(|| {
            round += 2;
            band.fill_draw_plane(round, &mut draws);
            let mut actions = 0usize;
            for (index, &draw) in draws.iter().enumerate() {
                black_box(band.choose_with_draw(index, round, draw));
                actions += 1;
            }
            black_box(actions)
        });
    });
    group.bench_function(BenchmarkId::from_parameter("fused_choose"), |b| {
        let mut columns = AgentColumns::gather(sim.agents()).expect("uniform simple colony");
        let AgentColumnsMut::Simple(mut band) = columns.as_band_mut() else {
            unreachable!("simple colony gathers to the urn band");
        };
        let mut round = 200u64;
        b.iter(|| {
            round += 2;
            let mut actions = 0usize;
            for index in 0..n {
                black_box(band.choose(index, round));
                actions += 1;
            }
            black_box(actions)
        });
    });
    group.finish();
}

fn bench_columns_vs_scalar(c: &mut Criterion) {
    // The batched agent-state table — fused per-row pass (the default)
    // and the opt-in round-level draw planes — against the scalar
    // oracle, at the two large scales. All three rows execute the
    // bit-identical stochastic process. `with_table_min_rounds(1)`
    // forces the table path even for the single-round convergence calls
    // the pre-consensus reset discipline uses; the scalar rows take the
    // match-per-ant oracle regardless.
    let mut group = c.benchmark_group("engine/columns_vs_scalar");
    for n in [4096usize, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= 16384 { 500 } else { 2000 });
        for (label, engine, planes) in [
            ("batched", EngineKind::Soa, false),
            ("planes", EngineKind::Soa, true),
            ("scalar", EngineKind::Scalar, false),
        ] {
            let scenario = steady_state_scenario(n).engine(engine);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}/{label}")),
                &scenario,
                |b, s| {
                    // Same pre-consensus regime discipline as
                    // `steady_state_round`.
                    let fresh = |seed: u64| {
                        s.build(seed)
                            .expect("valid")
                            .with_table_min_rounds(1)
                            .with_draw_planes(planes)
                    };
                    let mut sim = fresh(1);
                    let mut seed = 1u64;
                    b.iter(|| {
                        if sim.round() >= 200 {
                            seed = seed.wrapping_add(1);
                            sim = fresh(seed);
                        }
                        black_box(
                            sim.run_to_convergence(ConvergenceRule::all_final(), 1)
                                .expect("runs")
                                .rounds_run,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rounds,
    bench_trials,
    bench_detector_overhead,
    bench_quorum_rounds,
    bench_round_threads,
    bench_draw_plane,
    bench_columns_vs_scalar
);
criterion_main!(benches);
