//! Criterion bench for experiments F3/F4/F8: the optimal algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_core::colony;
use hh_model::QualitySpec;
use hh_sim::{ConvergenceRule, ScenarioSpec};
use std::hint::black_box;

fn bench_optimal_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal/converge_all_final");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("k4", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = ScenarioSpec::new(n, QualitySpec::good_prefix(4, 2))
                    .seed(seed)
                    .build_simulation(colony::optimal(n))
                    .expect("valid");
                black_box(
                    sim.run_to_convergence(ConvergenceRule::all_final(), 20_000)
                        .expect("runs"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_convergence);
criterion_main!(benches);
