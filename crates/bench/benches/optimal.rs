//! Criterion bench for experiments F3/F4/F8: the optimal algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use hh_sim::ConvergenceRule;
use std::hint::black_box;

fn bench_optimal_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal/converge_all_final");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let scenario = Scenario::custom(
            format!("bench-optimal-n{n}"),
            n,
            QualityProfile::GoodPrefix { k: 4, good: 2 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Optimal),
        )
        .rule(ConvergenceRule::all_final())
        .max_rounds(20_000);
        group.bench_with_input(BenchmarkId::new("k4", n), &scenario, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(s.run(seed).expect("runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_convergence);
criterion_main!(benches);
