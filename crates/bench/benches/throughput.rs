//! Criterion bench for T2: raw executor round throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use std::hint::black_box;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/steady_state_round");
    for n in [256usize, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        let scenario = Scenario::custom(
            format!("bench-throughput-n{n}"),
            n,
            QualityProfile::AllGood { k: 4 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Simple),
        );
        group.sample_size(2000);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            // Same pre-consensus regime discipline as the engine bench:
            // real trials stop at convergence, so reset before symmetry
            // breaks. Superseded by `engine/steady_state_round` (which
            // measures the zero-copy step path); this target keeps the
            // historical name measuring the borrowing single-step API.
            let mut sim = s.build(1).expect("valid");
            let mut seed = 1u64;
            b.iter(|| {
                if sim.round() >= 200 {
                    seed = seed.wrapping_add(1);
                    sim = s.build(seed).expect("valid");
                }
                black_box(sim.step_in_place().expect("runs").outcomes.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
