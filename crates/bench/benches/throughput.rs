//! Criterion bench for T2: raw executor round throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hh_sim::registry::{Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario};
use std::hint::black_box;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/steady_state_round");
    for n in [256usize, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        let scenario = Scenario::custom(
            format!("bench-throughput-n{n}"),
            n,
            QualityProfile::AllGood { k: 4 },
            FaultSchedule::None,
            ColonyMix::Uniform(Algorithm::Simple),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &scenario, |b, s| {
            let mut sim = s.build(1).expect("valid");
            for _ in 0..4 {
                sim.step().expect("runs");
            }
            b.iter(|| black_box(sim.step().expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds);
criterion_main!(benches);
