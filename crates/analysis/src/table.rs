//! Fixed-width ASCII tables for experiment output.
//!
//! The experiment harness reports every figure and table as plain text so
//! results render identically in a terminal, a log file, or
//! `EXPERIMENTS.md`. [`Table`] right-aligns numeric-looking cells and
//! left-aligns the rest.
//!
//! # Examples
//!
//! ```
//! use hh_analysis::Table;
//!
//! let mut table = Table::new(["n", "rounds", "algorithm"]);
//! table.row(["64", "21.5", "optimal"]);
//! table.row(["128", "24.1", "optimal"]);
//! let text = table.to_string();
//! assert!(text.contains("rounds"));
//! assert!(text.lines().count() >= 4); // header, rule, two rows
//! ```

use std::fmt;

/// A simple fixed-width text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (cell, width) in row.iter().zip(widths.iter_mut()) {
                *width = (*width).max(cell.chars().count());
            }
        }
        widths
    }
}

fn is_numeric(cell: &str) -> bool {
    !cell.is_empty()
        && cell
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | '%' | '∞'))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, &width) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                let pad = width.saturating_sub(cell.chars().count());
                if is_numeric(cell) {
                    write!(f, "{}{}", " ".repeat(pad), cell)?;
                } else {
                    write!(f, "{}{}", cell, " ".repeat(pad))?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `precision` decimals, trimming `-0`.
#[must_use]
pub fn fmt_f64(value: f64, precision: usize) -> String {
    let s = format!("{value:.precision$}");
    if s.starts_with("-0") && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rule_rows() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["1", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("----"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(!text.contains('3'), "extra cells dropped");
    }

    #[test]
    fn numeric_cells_right_align() {
        let mut t = Table::new(["name", "value"]);
        t.row(["long-name-here", "7"]);
        t.row(["x", "123"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // "7" should be right-aligned under "value": ends at same column
        // as "123".
        let col7 = lines[2].rfind('7').unwrap();
        let col123 = lines[3].rfind('3').unwrap();
        assert_eq!(col7, col123);
    }

    #[test]
    fn column_width_tracks_longest_cell() {
        let mut t = Table::new(["h"]);
        t.row(["wwwwwwwww"]);
        let text = t.to_string();
        assert!(text.lines().nth(1).unwrap().len() >= 9);
    }

    #[test]
    fn empty_table_still_renders() {
        let t = Table::new(["x", "y"]);
        assert!(t.is_empty());
        let text = t.to_string();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(-0.0001, 2), "0.00");
        assert_eq!(fmt_f64(-1.5, 1), "-1.5");
        assert_eq!(fmt_f64(3.0, 0), "3");
    }

    #[test]
    fn numeric_detector() {
        assert!(is_numeric("123"));
        assert!(is_numeric("-1.5e3"));
        assert!(is_numeric("99%"));
        assert!(!is_numeric("abc"));
        assert!(!is_numeric(""));
    }
}
