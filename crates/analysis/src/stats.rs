//! Streaming summary statistics and quantiles.
//!
//! [`Summary`] accumulates moments with Welford's online algorithm —
//! numerically stable, one pass, O(1) memory — and is the workhorse for
//! aggregating trial results in the experiment harness. [`Quantiles`]
//! holds a sorted sample for order statistics.

use crate::error::AnalysisError;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use hh_analysis::Summary;
///
/// let summary: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
///     .into_iter()
///     .collect();
/// assert_eq!(summary.count(), 8);
/// assert!((summary.mean() - 5.0).abs() < 1e-12);
/// assert!((summary.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observations were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation; `+∞` for an empty accumulator.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` for an empty accumulator.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (`n − 1` denominator); 0 with fewer than
    /// two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Square root of the sample variance.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Square root of the population variance.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean; 0 when empty.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval for
    /// the mean.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.mean += delta * (other.count as f64) / total_f;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut summary = Summary::new();
        for value in iter {
            summary.push(value);
        }
        summary
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.push(value);
        }
    }
}

/// Order statistics over a finite sample.
///
/// # Examples
///
/// ```
/// use hh_analysis::Quantiles;
///
/// let q = Quantiles::new(vec![5.0, 1.0, 3.0, 2.0, 4.0])?;
/// assert_eq!(q.median(), 3.0);
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(1.0), 5.0);
/// # Ok::<(), hh_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds order statistics from a sample (sorted internally).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::TooFewPoints`] for an empty sample.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, AnalysisError> {
        if sample.is_empty() {
            return Err(AnalysisError::TooFewPoints {
                got: 0,
                required: 1,
            });
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile data"));
        Ok(Self { sorted: sample })
    }

    /// The `q`-quantile by linear interpolation, `q ∈ [0, 1]` (clamped).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let position = q * (self.sorted.len() - 1) as f64;
        let lower = position.floor() as usize;
        let upper = position.ceil() as usize;
        if lower == upper {
            self.sorted[lower]
        } else {
            let weight = position - lower as f64;
            self.sorted[lower] * (1.0 - weight) + self.sorted[upper] * weight
        }
    }

    /// The median (0.5-quantile).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample.
    #[must_use]
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Summary = all.iter().copied().collect();
        let mut left: Summary = all[..37].iter().copied().collect();
        let right: Summary = all[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut empty = Summary::new();
        empty.merge(&s);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let narrow: Summary = (0..10_000).map(|i| f64::from(i % 10)).collect();
        let wide: Summary = (0..100).map(|i| f64::from(i % 10)).collect();
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }

    #[test]
    fn quantiles_reject_empty() {
        assert_eq!(
            Quantiles::new(vec![]),
            Err(AnalysisError::TooFewPoints {
                got: 0,
                required: 1
            })
        );
    }

    #[test]
    fn quantiles_interpolate() {
        let q = Quantiles::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(q.median(), 25.0);
        assert_eq!(q.quantile(0.25), 17.5);
        assert_eq!(q.quantile(0.75), 32.5);
        assert_eq!(q.iqr(), 15.0);
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let q = Quantiles::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(q.quantile(-3.0), 1.0);
        assert_eq!(q.quantile(42.0), 3.0);
    }

    #[test]
    fn extend_appends() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }
}
