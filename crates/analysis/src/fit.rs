//! Least-squares fitting on transformed axes.
//!
//! The reproduction's asymptotic claims are all of the form "T grows like
//! `f(n)`": Algorithm 2's rounds grow like `log n` (Theorem 4.3),
//! Algorithm 3's like `k log n` (Theorem 5.11), the lower bound like
//! `log n` (Theorem 3.2). We validate the *shape* by fitting
//! `y = a·x + b` after transforming the x-axis (`x = log₂ n`, `x = k`,
//! `x = k log₂ n`, …) and checking that the fit is tight (high `R²`) with
//! a clearly positive slope.
//!
//! [`growth_assessment`] offers a complementary, fit-free check: for a
//! doubling sweep `n, 2n, 4n, …`, logarithmic growth means roughly
//! *constant differences* between consecutive times, while linear growth
//! means roughly constant *ratios* of 2.

use crate::error::AnalysisError;

/// An ordinary-least-squares line fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope `a`.
    pub slope: f64,
    /// Fitted intercept `b`.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicts `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a·x + b` by ordinary least squares.
///
/// # Errors
///
/// * [`AnalysisError::LengthMismatch`] if the slices differ in length;
/// * [`AnalysisError::TooFewPoints`] with fewer than two points;
/// * [`AnalysisError::DegenerateX`] if all `x` are identical.
///
/// # Examples
///
/// ```
/// use hh_analysis::fit_linear;
///
/// let fit = fit_linear(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// # Ok::<(), hh_analysis::AnalysisError>(())
/// ```
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Result<LinearFit, AnalysisError> {
    if xs.len() != ys.len() {
        return Err(AnalysisError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(AnalysisError::TooFewPoints {
            got: xs.len(),
            required: 2,
        });
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(AnalysisError::DegenerateX);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R² = 1 − SS_res / SS_tot; define a constant-y set as perfectly fit.
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y = a·log₂(n) + b` over a sweep of sizes `ns`.
///
/// # Errors
///
/// Same conditions as [`fit_linear`]; additionally requires all sizes to
/// be at least 1 (zeros map to `log₂ 1 = 0` and are accepted; the
/// practical sweeps all start at `n ≥ 2`).
pub fn fit_log2(ns: &[usize], ys: &[f64]) -> Result<LinearFit, AnalysisError> {
    let xs: Vec<f64> = ns.iter().map(|&n| (n.max(1) as f64).log2()).collect();
    fit_linear(&xs, ys)
}

/// How a doubling sweep grew, fit-free (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthAssessment {
    /// Differences `y[i+1] − y[i]` between consecutive sweep points.
    pub differences: Vec<f64>,
    /// Ratios `y[i+1] / y[i]` (entries where `y[i] = 0` are skipped).
    pub ratios: Vec<f64>,
    /// Mean of `differences`.
    pub mean_difference: f64,
    /// Mean of `ratios`; 1.0 if no ratio was computable.
    pub mean_ratio: f64,
}

impl GrowthAssessment {
    /// A loose classifier: `true` when the sweep looks logarithmic —
    /// ratios shrink toward 1 (below `threshold`, e.g. 1.5 for a
    /// doubling sweep where linear growth would give 2.0).
    #[must_use]
    pub fn looks_sublinear(&self, threshold: f64) -> bool {
        // Judge by the tail: early doubling points are dominated by
        // constants.
        let tail = &self.ratios[self.ratios.len().saturating_sub(3)..];
        !tail.is_empty() && tail.iter().sum::<f64>() / tail.len() as f64 <= threshold
    }
}

/// Computes consecutive differences and ratios of a sweep.
///
/// # Errors
///
/// Returns [`AnalysisError::TooFewPoints`] with fewer than two points.
pub fn growth_assessment(ys: &[f64]) -> Result<GrowthAssessment, AnalysisError> {
    if ys.len() < 2 {
        return Err(AnalysisError::TooFewPoints {
            got: ys.len(),
            required: 2,
        });
    }
    let differences: Vec<f64> = ys.windows(2).map(|w| w[1] - w[0]).collect();
    let ratios: Vec<f64> = ys
        .windows(2)
        .filter(|w| w[0] != 0.0)
        .map(|w| w[1] / w[0])
        .collect();
    let mean_difference = differences.iter().sum::<f64>() / differences.len() as f64;
    let mean_ratio = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    Ok(GrowthAssessment {
        differences,
        ratios,
        mean_difference,
        mean_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let fit = fit_linear(&[0.0, 1.0, 2.0, 3.0], &[1.0, 3.0, 5.0, 7.0]).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_r2() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 5.0 + (x * 7.7).sin()).collect();
        let fit = fit_linear(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            fit_linear(&[1.0], &[1.0, 2.0]),
            Err(AnalysisError::LengthMismatch { xs: 1, ys: 2 })
        );
        assert_eq!(
            fit_linear(&[1.0], &[1.0]),
            Err(AnalysisError::TooFewPoints {
                got: 1,
                required: 2
            })
        );
        assert_eq!(
            fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(AnalysisError::DegenerateX)
        );
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let fit = fit_linear(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log2_fit_recovers_log_growth() {
        // y = 7·log2(n) + 3 exactly.
        let ns = [64usize, 128, 256, 512, 1024];
        let ys: Vec<f64> = ns.iter().map(|&n| 7.0 * (n as f64).log2() + 3.0).collect();
        let fit = fit_log2(&ns, &ys).unwrap();
        assert!((fit.slope - 7.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn growth_assessment_distinguishes_shapes() {
        // Logarithmic data on a doubling sweep: constant differences.
        let log_data: Vec<f64> = (6..14).map(|e| 10.0 * f64::from(e)).collect();
        let log_growth = growth_assessment(&log_data).unwrap();
        assert!(log_growth.looks_sublinear(1.5), "{log_growth:?}");

        // Linear data on a doubling sweep: ratios ≈ 2.
        let lin_data: Vec<f64> = (6..14).map(|e| 2f64.powi(e)).collect();
        let lin_growth = growth_assessment(&lin_data).unwrap();
        assert!(!lin_growth.looks_sublinear(1.5), "{lin_growth:?}");
        assert!((lin_growth.mean_ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn growth_assessment_needs_two_points() {
        assert_eq!(
            growth_assessment(&[1.0]),
            Err(AnalysisError::TooFewPoints {
                got: 1,
                required: 2
            })
        );
    }

    #[test]
    fn growth_assessment_skips_zero_bases() {
        let g = growth_assessment(&[0.0, 2.0, 4.0]).unwrap();
        assert_eq!(g.ratios, vec![2.0]);
        assert_eq!(g.differences, vec![2.0, 2.0]);
    }
}
