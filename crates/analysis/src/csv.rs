//! Minimal CSV output for experiment series.
//!
//! Experiment data is also emitted as CSV so results can be re-plotted
//! externally. Only writing is supported and only the small fragment the
//! harness needs: comma separation, quoting of cells containing commas,
//! quotes, or newlines.

use std::io::{self, Write};

/// Escapes one CSV cell per RFC 4180: wraps in quotes when it contains a
/// comma, quote, or newline, doubling embedded quotes.
#[must_use]
pub fn escape_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Writes a header row plus data rows to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use hh_analysis::write_csv;
///
/// let mut out = Vec::new();
/// write_csv(
///     &mut out,
///     &["n", "rounds"],
///     [vec!["64".to_string(), "20.5".to_string()]],
/// )?;
/// assert_eq!(String::from_utf8(out).unwrap(), "n,rounds\n64,20.5\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_csv<W, R>(writer: &mut W, headers: &[&str], rows: R) -> io::Result<()>
where
    W: Write,
    R: IntoIterator<Item = Vec<String>>,
{
    let header_line: Vec<String> = headers.iter().map(|h| escape_cell(h)).collect();
    writeln!(writer, "{}", header_line.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| escape_cell(c)).collect();
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_pass_through() {
        assert_eq!(escape_cell("abc"), "abc");
        assert_eq!(escape_cell("1.5"), "1.5");
    }

    #[test]
    fn special_cells_are_quoted() {
        assert_eq!(escape_cell("a,b"), "\"a,b\"");
        assert_eq!(escape_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_cell("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn writes_rows() {
        let mut out = Vec::new();
        write_csv(
            &mut out,
            &["x", "label"],
            vec![
                vec!["1".to_string(), "plain".to_string()],
                vec!["2".to_string(), "with,comma".to_string()],
            ],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "x,label\n1,plain\n2,\"with,comma\"\n");
    }

    #[test]
    fn empty_rows_iterator_writes_header_only() {
        let mut out = Vec::new();
        write_csv(&mut out, &["only"], Vec::<Vec<String>>::new()).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "only\n");
    }
}
