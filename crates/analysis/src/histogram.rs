//! Text histograms and series sparklines for terminal figures.
//!
//! Experiment "figures" are printed, not plotted: a [`Histogram`] renders
//! a bucketed bar chart and [`sparkline`] compresses a series into one
//! line of block characters — enough to eyeball the shape of a
//! convergence curve in CI logs.

use std::fmt;

/// A fixed-bucket histogram over `f64` samples.
///
/// # Examples
///
/// ```
/// use hh_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for v in [1.0, 1.5, 2.0, 7.0] {
///     h.add(v);
/// }
/// assert_eq!(h.total(), 4);
/// let text = h.to_string();
/// assert!(text.contains('█'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample; out-of-range samples land in under/overflow.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total samples, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const BAR_WIDTH: usize = 40;
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &count) in self.buckets.iter().enumerate() {
            let lo = self.lo + width * i as f64;
            let hi = lo + width;
            let bar_len = ((count as f64 / max as f64) * BAR_WIDTH as f64).round() as usize;
            writeln!(
                f,
                "[{lo:>10.2}, {hi:>10.2})  {count:>8}  {}",
                "█".repeat(bar_len)
            )?;
        }
        if self.underflow > 0 {
            writeln!(f, "  underflow: {}", self.underflow)?;
        }
        if self.overflow > 0 {
            writeln!(f, "  overflow:  {}", self.overflow)?;
        }
        Ok(())
    }
}

/// Renders a numeric series as a single-line sparkline using the eight
/// block glyphs `▁▂▃▄▅▆▇█`. Empty input yields an empty string.
///
/// # Examples
///
/// ```
/// use hh_analysis::sparkline;
///
/// let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(line.chars().count(), 4);
/// assert!(line.starts_with('▁'));
/// assert!(line.ends_with('█'));
/// ```
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_normal() {
        return GLYPHS[0].to_string().repeat(series.len());
    }
    series
        .iter()
        .map(|&v| {
            let idx = ((v - lo) / (hi - lo) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(f64::from(i) + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn out_of_range_samples_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(5.0);
        h.add(1.0); // upper bound is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        let text = h.to_string();
        assert!(text.contains("underflow"));
        assert!(text.contains("overflow"));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(1.0, 0.0, 3);
    }

    #[test]
    fn display_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..40 {
            h.add(0.5);
        }
        h.add(1.5);
        let text = h.to_string();
        let lines: Vec<&str> = text.lines().collect();
        let bars0 = lines[0].matches('█').count();
        let bars1 = lines[1].matches('█').count();
        assert_eq!(bars0, 40);
        assert!(bars1 <= 1);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]).chars().count(), 3);
        let line = sparkline(&[0.0, 7.0]);
        assert_eq!(line, "▁█");
    }

    #[test]
    fn sparkline_handles_constant_series() {
        let line = sparkline(&[3.0; 5]);
        assert_eq!(line.chars().count(), 5);
    }
}
