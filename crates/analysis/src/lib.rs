//! # hh-analysis — statistics and reporting for the house-hunting
//! reproduction
//!
//! Dependency-free analysis utilities used by the experiment harness
//! (`hh-bench`) to turn raw trial data into the paper's figures and
//! tables:
//!
//! * [`Summary`] / [`Quantiles`] — streaming moments and order statistics
//!   for aggregating trials;
//! * [`fit_linear`] / [`fit_log2`] / [`growth_assessment`] — asymptotic
//!   shape validation (`T = a·log n + b` fits with `R²`, doubling-sweep
//!   difference/ratio analysis);
//! * [`Table`], [`Histogram`], [`sparkline`], [`write_csv`] — plain-text
//!   figure rendering and CSV export.
//!
//! # Examples
//!
//! ```
//! use hh_analysis::{fit_log2, Summary};
//!
//! // Convergence times that grow logarithmically...
//! let ns = [64usize, 128, 256, 512];
//! let times: Vec<f64> = ns.iter().map(|&n| 4.0 * (n as f64).log2() + 9.0).collect();
//! // ...fit a·log2(n) + b almost perfectly.
//! let fit = fit_log2(&ns, &times)?;
//! assert!(fit.r_squared > 0.99);
//! assert!((fit.slope - 4.0).abs() < 1e-9);
//!
//! let spread: Summary = times.iter().copied().collect();
//! assert!(spread.mean() > 0.0);
//! # Ok::<(), hh_analysis::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csv;
mod error;
mod fit;
mod histogram;
mod stats;
mod table;

pub use csv::{escape_cell, write_csv};
pub use error::AnalysisError;
pub use fit::{fit_linear, fit_log2, growth_assessment, GrowthAssessment, LinearFit};
pub use histogram::{sparkline, Histogram};
pub use stats::{Quantiles, Summary};
pub use table::{fmt_f64, Table};
