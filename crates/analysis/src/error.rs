//! Error type for analysis routines.

use std::error::Error;
use std::fmt;

/// Errors raised by statistics and fitting routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// Paired-data routine received slices of different lengths.
    LengthMismatch {
        /// Length of the x slice.
        xs: usize,
        /// Length of the y slice.
        ys: usize,
    },
    /// Not enough data points for the requested computation.
    TooFewPoints {
        /// Points provided.
        got: usize,
        /// Minimum required.
        required: usize,
    },
    /// The x values were all identical, so no slope is defined.
    DegenerateX,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::LengthMismatch { xs, ys } => {
                write!(
                    f,
                    "paired data lengths differ: {xs} x values vs {ys} y values"
                )
            }
            AnalysisError::TooFewPoints { got, required } => {
                write!(f, "need at least {required} points, got {got}")
            }
            AnalysisError::DegenerateX => {
                write!(f, "all x values are identical; slope is undefined")
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        for err in [
            AnalysisError::LengthMismatch { xs: 1, ys: 2 },
            AnalysisError::TooFewPoints {
                got: 1,
                required: 2,
            },
            AnalysisError::DegenerateX,
        ] {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
