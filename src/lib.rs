//! # house-hunting — *Distributed House-Hunting in Ant Colonies* in Rust
//!
//! A complete reproduction of Ghaffari, Musco, Radeva and Lynch,
//! *Distributed House-Hunting in Ant Colonies* (PODC 2015,
//! arXiv:1505.03799): the synchronous ant-colony model, the Ω(log n)
//! lower-bound processes, the optimal `O(log n)` and simple `O(k log n)`
//! consensus algorithms, every Section 6 extension (adaptive recruitment
//! rate, non-binary quality, noisy sensing, crash/Byzantine faults,
//! partial asynchrony), and the measurement harness that regenerates the
//! paper's results as experiments.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`model`] | the formal environment of Section 2 (`search`/`go`/`recruit`, pairing, noise, faults) |
//! | [`core`]  | the algorithms as agent state machines (Sections 3–6) |
//! | [`sim`]   | the synchronous executor, convergence detection, parallel trial runner |
//! | [`rumor`] | the rumor-spreading substrate the lower bound is compared against |
//! | [`analysis`] | statistics, asymptotic fitting, text figures |
//!
//! ## Quickstart
//!
//! ```
//! use house_hunting::prelude::*;
//!
//! // A colony of 64 ants; 4 candidate nests, 2 of them good.
//! let spec = ScenarioSpec::new(64, QualitySpec::good_prefix(4, 2)).seed(7);
//! let mut sim = spec.build_simulation(colony::simple(64, 7))?;
//! let outcome = sim.run_to_convergence(ConvergenceRule::commitment(), 10_000)?;
//! let solved = outcome.solved.expect("the colony converges");
//! assert!(solved.good);
//! println!("consensus on {} after {} rounds", solved.nest, solved.round);
//! # Ok::<(), house_hunting::sim::SimError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness that regenerates every figure/table of
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use hh_analysis as analysis;
pub use hh_core as core;
pub use hh_model as model;
pub use hh_rumor as rumor;
pub use hh_sim as sim;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use hh_core::colony;
    pub use hh_core::problem;
    pub use hh_core::{
        AdaptiveAnt, AdaptivePolicy, Agent, AgentRole, AnyAgent, BoxedAgent, Colony, CyclePhase,
        OptimalAnt, QualityAnt, RoleCensus, SimpleAnt, SpreadStrategy, SpreaderAnt, UrnOptions,
    };
    pub use hh_model::{
        Action, AntId, ColonyConfig, Environment, ModelError, NestId, NoiseModel, Outcome, Quality,
        QualitySpec,
    };
    pub use hh_sim::registry::{
        self, Algorithm, ColonyMix, FaultSchedule, QualityProfile, Scenario, Tag,
    };
    pub use hh_sim::{
        ConvergenceRule, EngineKind, Perturbations, RoundSnapshot, RunOutcome, ScenarioSpec,
        SeriesRecorder, SimError, Simulation, Solved, TrialOutcome,
    };
}
