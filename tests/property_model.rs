//! Property-based tests on the model substrate: the recruitment pairing
//! process, the environment's invariants under arbitrary legal action
//! sequences, seed derivation, and the bit set.

use std::collections::BTreeSet;

use house_hunting::model::recruitment::{pair_ants, RecruitCall};
use house_hunting::model::seeding::{derive_seed, StreamKind};
use house_hunting::model::util::BitSet;
use house_hunting::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Algorithm 1 invariants for arbitrary participant vectors:
    /// the matching is a partial injection (each ant recruited at most
    /// once, recruiters are active, nobody both recruits another ant and
    /// is recruited by a different ant), and every participant's return
    /// value is either its own input or its recruiter's input.
    #[test]
    fn pairing_invariants(
        actives in proptest::collection::vec(any::<bool>(), 1..80),
        nests in proptest::collection::vec(1usize..5, 1..80),
        seed in any::<u64>(),
    ) {
        let m = actives.len().min(nests.len());
        let calls: Vec<RecruitCall> = (0..m)
            .map(|i| RecruitCall::new(AntId::new(i), actives[i], NestId::candidate(nests[i])))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairing = pair_ants(&calls, &mut rng);

        prop_assert_eq!(pairing.len(), m);
        let mut recruited_seen = BTreeSet::new();
        for &(recruiter, recruited) in pairing.pairs() {
            prop_assert!(calls[recruiter.index()].active, "recruiters are in S");
            prop_assert!(recruited_seen.insert(recruited), "double recruitment");
        }
        for idx in 0..m {
            let assigned = pairing.assigned_nest(idx);
            match pairing.recruited_by(idx) {
                Some(recruiter) => {
                    prop_assert_eq!(assigned, calls[recruiter].nest);
                    if recruiter != idx {
                        prop_assert!(
                            !pairing.succeeded(idx),
                            "an ant recruited by another cannot also recruit"
                        );
                    }
                }
                None => prop_assert_eq!(assigned, calls[idx].nest),
            }
            if !calls[idx].active {
                prop_assert!(!pairing.succeeded(idx), "passive ants never recruit");
            }
        }
    }

    /// The environment conserves ants, keeps locations consistent with
    /// actions, and only grows knowledge sets, under arbitrary legal
    /// action schedules.
    #[test]
    fn environment_invariants(
        n in 1usize..40,
        k in 1usize..6,
        seed in any::<u64>(),
        choices in proptest::collection::vec(0u8..4, 0..30),
    ) {
        let config = ColonyConfig::new(n, QualitySpec::all_good(k)).seed(seed);
        let mut env = Environment::new(&config).unwrap();
        env.step(&vec![Action::Search; n]).unwrap();
        let mut known_sizes = vec![1usize; n];

        for (r, &choice) in choices.iter().enumerate() {
            let actions: Vec<Action> = (0..n)
                .map(|i| {
                    let ant = AntId::new(i);
                    let here = env.location_of(ant);
                    let anchor = env.first_known(ant).unwrap();
                    match (choice as usize + i + r) % 4 {
                        0 => Action::Search,
                        1 if !here.is_home() => Action::Go(here),
                        1 => Action::Go(anchor),
                        2 => Action::recruit_active(anchor),
                        _ => Action::recruit_passive(anchor),
                    }
                })
                .collect();
            let report = env.step(&actions).unwrap();

            prop_assert_eq!(env.counts().iter().sum::<usize>(), n);
            for i in 0..n {
                let ant = AntId::new(i);
                match actions[i] {
                    Action::Search => {
                        prop_assert!(!env.location_of(ant).is_home());
                    }
                    Action::Go(nest) => prop_assert_eq!(env.location_of(ant), nest),
                    Action::Recruit { .. } => {
                        prop_assert!(env.location_of(ant).is_home());
                    }
                }
                // Knowledge is monotone.
                let size = env.known_nests(ant).count();
                prop_assert!(size >= known_sizes[i], "knowledge shrank");
                known_sizes[i] = size;
                // Outcome counts match the true state (no noise); true
                // counts are bounded by n, so the u32 narrowing is exact.
                match (actions[i], &report.outcomes[i]) {
                    (Action::Go(nest), Outcome::Go { count, .. }) => {
                        prop_assert_eq!(*count as usize, env.count(nest));
                    }
                    (Action::Recruit { .. }, Outcome::Recruit { home_count, .. }) => {
                        prop_assert_eq!(*home_count as usize, env.count(NestId::HOME));
                    }
                    (Action::Search, Outcome::Search { nest, count, .. }) => {
                        prop_assert_eq!(*count as usize, env.count(*nest));
                    }
                    (action, outcome) => {
                        prop_assert!(false, "mismatched {action:?} / {outcome:?}");
                    }
                }
            }
        }
    }

    /// Seed derivation never collides across streams/indices in sampled
    /// windows (a collision would silently correlate two random streams).
    #[test]
    fn seed_streams_do_not_collide(base in any::<u64>()) {
        let mut seen = BTreeSet::new();
        for kind in [StreamKind::Environment, StreamKind::Noise, StreamKind::Agent, StreamKind::Crash, StreamKind::Delay] {
            for index in 0..64 {
                prop_assert!(seen.insert(derive_seed(base, kind, index)));
            }
        }
    }

    /// BitSet agrees with a reference BTreeSet model under arbitrary
    /// insert/remove interleavings.
    #[test]
    fn bitset_matches_btreeset_model(
        capacity in 1usize..200,
        ops in proptest::collection::vec((any::<bool>(), 0usize..220), 0..100),
    ) {
        let mut set = BitSet::new(capacity);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (insert, value) in ops {
            if insert {
                if value < capacity {
                    prop_assert_eq!(set.insert(value), model.insert(value));
                }
            } else {
                prop_assert_eq!(set.remove(value), model.remove(&value));
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), expected);
    }

    /// Delay plans are pure functions of (ant, round) and respect the
    /// probability edge cases.
    #[test]
    fn delay_plans_are_pure(prob in 0.0f64..1.0, seed in any::<u64>(), ant in 0usize..100, round in 0u64..10_000) {
        use house_hunting::model::faults::DelayPlan;
        let plan = DelayPlan::new(prob, seed);
        let first = plan.is_delayed(AntId::new(ant), round);
        for _ in 0..3 {
            prop_assert_eq!(plan.is_delayed(AntId::new(ant), round), first);
        }
    }
}
